//! Security-path integration: secure aggregation inside training, dropout
//! recovery under aggregation weights, and the defense pipeline sanitizing
//! a poisoned federation.

use gfl_core::engine::{form_groups_per_edge, GroupFelConfig, Trainer};
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_defense::{filter_updates, scale_attack, sign_flip_attack, DefenseConfig};
use gfl_nn::sgd::LrSchedule;
use gfl_secagg::SecAggSession;
use gfl_sim::{Task, Topology};
use gfl_tensor::ops;

#[test]
fn secure_aggregation_training_tracks_plain_training() {
    let data = SyntheticSpec::tiny().generate(600, 31);
    let (train, test) = data.split_holdout(5);
    let partition = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, 31));
    let topology = Topology::even_split(2, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 2,
            max_cov: 1.0,
        },
        &topology,
        &partition.label_matrix,
        31,
    );
    let mut config = GroupFelConfig {
        global_rounds: 6,
        group_rounds: 2,
        local_rounds: 1,
        sampled_groups: 2,
        batch_size: 16,
        lr: LrSchedule::Constant(0.15),
        weighting: AggregationWeighting::Standard,
        eval_every: 2,
        seed: 31,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };
    let plain = Trainer::new(
        config.clone(),
        gfl_nn::zoo::tiny(4, 3),
        train.clone(),
        partition.clone(),
        test.clone(),
    )
    .run(&groups, &FedAvg, SamplingStrategy::Random);
    config.secure_aggregation = true;
    let secure = Trainer::new(config, gfl_nn::zoo::tiny(4, 3), train, partition, test).run(
        &groups,
        &FedAvg,
        SamplingStrategy::Random,
    );
    for (p, s) in plain.records().iter().zip(secure.records()) {
        assert!(
            (p.accuracy - s.accuracy).abs() < 0.05,
            "round {}: plain {} vs secure {}",
            p.round,
            p.accuracy,
            s.accuracy
        );
    }
}

#[test]
fn secagg_sum_of_weighted_model_params_is_exact() {
    // The engine masks *weighted* parameter vectors; verify that weighted
    // aggregation through masks equals the plain weighted sum for a real
    // model-sized payload.
    let model = gfl_nn::zoo::speech_model();
    let dim = model.param_len();
    let mut rng = gfl_tensor::init::rng(5);
    let params: Vec<Vec<f32>> = (0..4).map(|_| model.init_params(&mut rng)).collect();
    let weights = [0.4f32, 0.3, 0.2, 0.1];

    let session = SecAggSession::new(vec![0, 1, 2, 3], dim, 17);
    let mut masked = Vec::new();
    for (i, p) in params.iter().enumerate() {
        let mut scaled = p.clone();
        ops::scale(weights[i], &mut scaled);
        masked.push(session.mask(i as u32, &scaled).0);
    }
    let (sum, _) = session.unmask_sum(&[0, 1, 2, 3], &masked);

    let views: Vec<&[f32]> = params.iter().map(|p| p.as_slice()).collect();
    let mut want = vec![0.0; dim];
    ops::weighted_sum_into(&views, &weights, &mut want);
    let mut diff = sum.clone();
    ops::sub_assign(&want, &mut diff);
    let rel = ops::norm(&diff) / ops::norm(&want).max(1e-9);
    assert!(rel < 1e-3, "relative error {rel}");
}

#[test]
fn defense_protects_aggregate_from_model_replacement() {
    // Simulate one group round where two of ten clients submit boosted
    // poisoned deltas; run the defense, then aggregate survivors.
    let dim = 512;
    let mut rng = gfl_tensor::init::rng(7);
    let mut honest_dir = vec![0.0f32; dim];
    gfl_tensor::init::fill_normal(&mut rng, 1.0, &mut honest_dir);

    let mut updates: Vec<Vec<f32>> = (0..10)
        .map(|i| {
            let mut u = honest_dir.clone();
            let mut noise = vec![0.0f32; dim];
            gfl_tensor::init::fill_normal(&mut rng, 0.1, &mut noise);
            ops::add_assign(&noise, &mut u);
            if i >= 8 {
                sign_flip_attack(&mut u);
                scale_attack(&mut u, 20.0);
            }
            u
        })
        .collect();

    let report = filter_updates(&mut updates, &DefenseConfig::default());
    assert_eq!(report.rejected, vec![8, 9]);

    let mut aggregate = vec![0.0f32; dim];
    for &i in &report.accepted {
        ops::add_assign(&updates[i], &mut aggregate);
    }
    ops::scale(1.0 / report.accepted.len() as f32, &mut aggregate);
    // The aggregate should point the same way as the honest direction.
    let cos = ops::cosine_similarity(&aggregate, &honest_dir);
    assert!(cos > 0.95, "defended aggregate cosine {cos}");
}

#[test]
fn dropout_during_secure_round_preserves_survivor_aggregate() {
    let dim = 64;
    let members: Vec<u32> = (0..6).collect();
    let session = SecAggSession::new(members.clone(), dim, 23);
    let mut rng = gfl_tensor::init::rng(11);
    let updates: Vec<Vec<f32>> = (0..6)
        .map(|_| {
            let mut u = vec![0.0f32; dim];
            gfl_tensor::init::fill_normal(&mut rng, 1.0, &mut u);
            u
        })
        .collect();
    let masked: Vec<Vec<f32>> = members
        .iter()
        .map(|&m| session.mask(m, &updates[m as usize]).0)
        .collect();
    // Three different dropout patterns all recover exactly.
    for dropped in [vec![0u32], vec![2, 4], vec![5, 0, 3]] {
        let survivors: Vec<u32> = members
            .iter()
            .copied()
            .filter(|m| !dropped.contains(m))
            .collect();
        let masked_surv: Vec<Vec<f32>> = survivors
            .iter()
            .map(|&m| masked[m as usize].clone())
            .collect();
        let (sum, _) = session.unmask_sum(&survivors, &masked_surv);
        let mut want = vec![0.0f32; dim];
        for &m in &survivors {
            ops::add_assign(&updates[m as usize], &mut want);
        }
        let mut diff = sum;
        ops::sub_assign(&want, &mut diff);
        assert!(
            ops::norm(&diff) < 1e-2,
            "dropout pattern {dropped:?}: error {}",
            ops::norm(&diff)
        );
    }
}

#[test]
fn client_dropout_training_stays_stable_and_uses_recovery_path() {
    let data = SyntheticSpec::tiny().generate(600, 41);
    let (train, test) = data.split_holdout(5);
    let partition = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, 41));
    let topology = Topology::even_split(2, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 3,
            max_cov: 1.0,
        },
        &topology,
        &partition.label_matrix,
        41,
    );
    let base = GroupFelConfig {
        global_rounds: 8,
        group_rounds: 2,
        local_rounds: 1,
        sampled_groups: 3,
        batch_size: 16,
        lr: LrSchedule::Constant(0.15),
        weighting: AggregationWeighting::Standard,
        eval_every: 2,
        seed: 41,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };
    // 30% churn, both with plain and with secure aggregation (the latter
    // exercises SecAgg's orphaned-mask recovery inside training).
    for secure in [false, true] {
        let mut cfg = base.clone();
        cfg.dropout_prob = 0.3;
        cfg.secure_aggregation = secure;
        let trainer = Trainer::new(
            cfg,
            gfl_nn::zoo::tiny(4, 3),
            train.clone(),
            partition.clone(),
            test.clone(),
        );
        let h = trainer.run(&groups, &FedAvg, SamplingStrategy::Random);
        let last = h.records().last().unwrap();
        assert!(
            last.accuracy.is_finite() && last.accuracy > 0.3,
            "secure={secure}: dropout training degenerated ({})",
            last.accuracy
        );
    }
}

#[test]
fn full_dropout_round_leaves_group_model_unchanged() {
    // With dropout probability 1.0 nobody ever reports; the global model
    // must stay exactly at initialization (aggregating unchanged copies).
    let data = SyntheticSpec::tiny().generate(300, 43);
    let (train, test) = data.split_holdout(5);
    let partition = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, 43));
    let topology = Topology::even_split(2, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 3,
            max_cov: 1.0,
        },
        &topology,
        &partition.label_matrix,
        43,
    );
    let cfg = GroupFelConfig {
        global_rounds: 3,
        group_rounds: 2,
        local_rounds: 1,
        sampled_groups: 2,
        batch_size: 16,
        lr: LrSchedule::Constant(0.2),
        weighting: AggregationWeighting::Standard,
        eval_every: 1,
        seed: 43,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 1.0,
    };
    let trainer = Trainer::new(cfg, gfl_nn::zoo::tiny(4, 3), train, partition, test);
    let h = trainer.run(&groups, &FedAvg, SamplingStrategy::Random);
    let accs: Vec<f32> = h.records().iter().map(|r| r.accuracy).collect();
    assert!(
        accs.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6),
        "model must not move when every client drops: {accs:?}"
    );
}
