//! Eq. 5 cost accounting across the trainer/ledger/cost-model boundary:
//! what the engine charges must equal a hand computation from the paper's
//! formula, for every strategy's op mix.

use gfl_baselines::{FedProx, Scaffold};
use gfl_core::engine::{form_groups_per_edge, GroupFelConfig, Trainer};
use gfl_core::grouping::RandomGrouping;
use gfl_core::local::{FedAvg, LocalUpdate};
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_nn::sgd::LrSchedule;
use gfl_sim::{CostModel, Task, Topology};

fn world(seed: u64) -> (Trainer, Vec<Vec<usize>>) {
    let data = SyntheticSpec::tiny().generate(500, seed);
    let (train, test) = data.split_holdout(5);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 12,
            alpha: 0.5,
            min_size: 10,
            max_size: 40,
            seed,
        },
    );
    let topology = Topology::even_split(2, partition.sizes());
    let groups = form_groups_per_edge(
        &RandomGrouping { group_size: 4 },
        &topology,
        &partition.label_matrix,
        seed,
    );
    let config = GroupFelConfig {
        global_rounds: 4,
        group_rounds: 3,
        local_rounds: 2,
        sampled_groups: 2,
        batch_size: 16,
        lr: LrSchedule::Constant(0.1),
        weighting: AggregationWeighting::Standard,
        eval_every: 1,
        seed,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };
    (
        Trainer::new(config, gfl_nn::zoo::tiny(4, 3), train, partition, test),
        groups,
    )
}

/// Recomputes Eq. 5 by hand for a single group's participation in one
/// global round, using a strategy's op mix and training factor.
fn eq5_for_group(trainer: &Trainer, group: &[usize], strategy: &dyn LocalUpdate) -> f64 {
    let cfg = trainer.config();
    let mut model = CostModel::for_task(cfg.task);
    model.training.a *= strategy.training_cost_factor();
    model.training.b *= strategy.training_cost_factor();
    let g = group.len();
    let per_client_ops: f64 = strategy
        .group_ops()
        .iter()
        .map(|&k| model.group_op(k, g))
        .sum();
    let inner: f64 = group
        .iter()
        .map(|&c| {
            let n_i = trainer.partition().indices[c].len();
            per_client_ops + cfg.local_rounds as f64 * model.training(n_i)
        })
        .sum();
    cfg.group_rounds as f64 * inner
}

#[test]
fn ledger_matches_hand_computed_eq5_for_fedavg() {
    let (trainer, groups) = world(1);
    let mut ledger = trainer.ledger_for(&FedAvg);
    let group = &groups[0];
    let sizes: Vec<usize> = group
        .iter()
        .map(|&c| trainer.partition().indices[c].len())
        .collect();
    ledger.charge_group(
        &sizes,
        trainer.config().group_rounds,
        trainer.config().local_rounds,
    );
    let want = eq5_for_group(&trainer, group, &FedAvg);
    assert!(
        (ledger.total() - want).abs() < 1e-9,
        "{} vs {want}",
        ledger.total()
    );
}

#[test]
fn strategy_cost_ordering_fedavg_fedprox_scaffold() {
    let (trainer, groups) = world(2);
    let group = &groups[0];
    let avg = eq5_for_group(&trainer, group, &FedAvg);
    let prox = eq5_for_group(&trainer, group, &FedProx { mu: 0.1 });
    let scaffold_strategy = Scaffold::new(trainer.model().param_len(), 12);
    let scaffold = eq5_for_group(&trainer, group, &scaffold_strategy);
    assert!(
        avg < prox && prox < scaffold,
        "per-round cost must order FedAvg {avg} < FedProx {prox} < SCAFFOLD {scaffold}"
    );
}

#[test]
fn run_total_cost_equals_sum_of_round_increments() {
    let (trainer, groups) = world(3);
    let h = trainer.run(&groups, &FedAvg, SamplingStrategy::Random);
    // eval_every=1 so every round is recorded; increments must all be
    // positive and the final total equals the last record.
    let records = h.records();
    assert_eq!(records.len(), trainer.config().global_rounds);
    let mut prev = 0.0;
    for r in records {
        assert!(r.cost > prev);
        prev = r.cost;
    }
}

#[test]
fn speech_task_is_cheaper_per_round_than_vision() {
    let (trainer, groups) = world(4);
    let run_cost = |task: Task| {
        let mut cfg = trainer.config().clone();
        cfg.task = task;
        let t = Trainer::new(
            cfg,
            trainer.model().clone(),
            trainer.train_data().clone(),
            trainer.partition().clone(),
            trainer.test_data().clone(),
        );
        let h = t.run(&groups, &FedAvg, SamplingStrategy::Random);
        h.records().last().unwrap().cost
    };
    assert!(run_cost(Task::Speech) < run_cost(Task::Vision));
}
