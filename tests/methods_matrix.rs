//! Every local-update strategy × grouping algorithm completes and learns on
//! a common tiny federation — the compatibility matrix backing Fig. 9–12.

use gfl_baselines::{FedClarConfig, FedClarRunner, FedProx, Scaffold};
use gfl_core::engine::{form_groups_per_edge, GroupFelConfig, Trainer};
use gfl_core::grouping::{
    CdgGrouping, CovGrouping, GroupingAlgorithm, KldGrouping, RandomGrouping,
};
use gfl_core::local::{FedAvg, LocalUpdate};
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_nn::sgd::LrSchedule;
use gfl_sim::{Task, Topology};

struct World {
    trainer: Trainer,
    topology: Topology,
}

fn world(seed: u64) -> World {
    let data = SyntheticSpec::tiny().generate(700, seed);
    let (train, test) = data.split_holdout(5);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 14,
            alpha: 0.4,
            min_size: 10,
            max_size: 60,
            seed,
        },
    );
    let topology = Topology::even_split(2, partition.sizes());
    let config = GroupFelConfig {
        global_rounds: 6,
        group_rounds: 2,
        local_rounds: 1,
        sampled_groups: 3,
        batch_size: 16,
        lr: LrSchedule::Constant(0.15),
        weighting: AggregationWeighting::Standard,
        eval_every: 1,
        seed,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };
    World {
        trainer: Trainer::new(config, gfl_nn::zoo::tiny(4, 3), train, partition, test),
        topology,
    }
}

fn groupings() -> Vec<Box<dyn GroupingAlgorithm>> {
    vec![
        Box::new(RandomGrouping { group_size: 4 }),
        Box::new(CovGrouping {
            min_group_size: 3,
            max_cov: 0.6,
        }),
        Box::new(CdgGrouping {
            group_size: 4,
            kmeans_iters: 5,
        }),
        Box::new(KldGrouping { group_size: 4 }),
    ]
}

#[test]
fn fedavg_and_fedprox_complete_on_all_groupings() {
    let w = world(1);
    for grouping in groupings() {
        let groups = form_groups_per_edge(
            grouping.as_ref(),
            &w.topology,
            &w.trainer.partition().label_matrix,
            1,
        );
        for (name, strategy) in [
            ("FedAvg", &FedAvg as &dyn LocalUpdate),
            ("FedProx", &FedProx { mu: 0.1 } as &dyn LocalUpdate),
        ] {
            let h = match name {
                "FedAvg" => w.trainer.run(&groups, &FedAvg, SamplingStrategy::Random),
                _ => w
                    .trainer
                    .run(&groups, &FedProx { mu: 0.1 }, SamplingStrategy::Random),
            };
            let _ = strategy; // names drive dispatch above
            assert!(
                h.records().last().unwrap().accuracy.is_finite(),
                "{name} on {} diverged",
                grouping.name()
            );
            assert!(h.records().len() >= 6);
        }
    }
}

#[test]
fn scaffold_completes_and_uses_costlier_ops() {
    let w = world(2);
    let groups = form_groups_per_edge(
        &RandomGrouping { group_size: 4 },
        &w.topology,
        &w.trainer.partition().label_matrix,
        2,
    );
    let strategy = Scaffold::new(
        w.trainer.model().param_len(),
        w.trainer.partition().num_clients(),
    );
    let h_scaffold = w.trainer.run(&groups, &strategy, SamplingStrategy::Random);
    let h_fedavg = w.trainer.run(&groups, &FedAvg, SamplingStrategy::Random);
    assert!(h_scaffold.records().last().unwrap().accuracy.is_finite());
    // SCAFFOLD must be charged more per round (scaffold secagg + factor).
    let c_scaffold = h_scaffold.records().last().unwrap().cost;
    let c_fedavg = h_fedavg.records().last().unwrap().cost;
    assert!(
        c_scaffold > c_fedavg,
        "SCAFFOLD cost {c_scaffold} must exceed FedAvg cost {c_fedavg}"
    );
}

#[test]
fn fedclar_runs_both_phases_and_stays_finite() {
    let w = world(3);
    let groups = form_groups_per_edge(
        &RandomGrouping { group_size: 4 },
        &w.topology,
        &w.trainer.partition().label_matrix,
        3,
    );
    let h = FedClarRunner::run(
        &w.trainer,
        &groups,
        &FedClarConfig {
            cluster_at_round: 2,
            num_clusters: 3,
            kmeans_iters: 5,
        },
    );
    assert_eq!(h.records().len(), 6);
    assert!(h.records().iter().all(|r| r.accuracy.is_finite()));
}

#[test]
fn group_fel_configuration_beats_plain_fedavg_on_skewed_data() {
    // The paper's headline, at integration-test scale: CoVG+ESRCoV versus
    // RG+uniform on strongly non-IID data, same budget.
    let data = SyntheticSpec::tiny().generate(1000, 9);
    let (train, test) = data.split_holdout(5);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 20,
            alpha: 0.15,
            min_size: 15,
            max_size: 60,
            seed: 9,
        },
    );
    let topology = Topology::even_split(2, partition.sizes());
    let config = GroupFelConfig {
        global_rounds: 15,
        group_rounds: 3,
        local_rounds: 2,
        sampled_groups: 3,
        batch_size: 16,
        lr: LrSchedule::Constant(0.1),
        weighting: AggregationWeighting::Stabilized,
        eval_every: 3,
        seed: 9,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };
    let trainer = Trainer::new(
        config.clone(),
        gfl_nn::zoo::tiny(4, 3),
        train.clone(),
        partition.clone(),
        test.clone(),
    );
    let cov_groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 4,
            max_cov: 0.4,
        },
        &topology,
        &partition.label_matrix,
        9,
    );
    let h_fel = trainer.run(&cov_groups, &FedAvg, SamplingStrategy::ESRCov);

    let mut cfg2 = config;
    cfg2.weighting = AggregationWeighting::Standard;
    let trainer2 = Trainer::new(
        cfg2,
        gfl_nn::zoo::tiny(4, 3),
        train,
        partition.clone(),
        test,
    );
    let rand_groups = form_groups_per_edge(
        &RandomGrouping { group_size: 5 },
        &topology,
        &partition.label_matrix,
        9,
    );
    let h_avg = trainer2.run(&rand_groups, &FedAvg, SamplingStrategy::Random);

    assert!(
        h_fel.best_accuracy() >= h_avg.best_accuracy() - 0.05,
        "Group-FEL {:.4} should be at least competitive with FedAvg {:.4}",
        h_fel.best_accuracy(),
        h_avg.best_accuracy()
    );
}
