//! End-to-end pipeline integration: data → partition → topology → grouping
//! → sampling → hierarchical training → history, across crate boundaries.

use gfl_core::cov::group_cov;
use gfl_core::engine::{form_groups_per_edge, GroupFelConfig, Trainer};
use gfl_core::grouping::{CovGrouping, GroupingAlgorithm, RandomGrouping};
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_nn::sgd::LrSchedule;
use gfl_sim::{Task, Topology};

fn build_world(seed: u64, alpha: f64) -> (Trainer, Vec<Vec<usize>>, gfl_data::LabelMatrix) {
    let data = SyntheticSpec::tiny().generate(800, seed);
    let (train, test) = data.split_holdout(5);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 16,
            alpha,
            min_size: 10,
            max_size: 60,
            seed,
        },
    );
    let labels = partition.label_matrix.clone();
    let topology = Topology::even_split(2, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 3,
            max_cov: 0.8,
        },
        &topology,
        &labels,
        seed,
    );
    let config = GroupFelConfig {
        global_rounds: 10,
        group_rounds: 3,
        local_rounds: 1,
        sampled_groups: 3,
        batch_size: 16,
        lr: LrSchedule::Constant(0.2),
        weighting: AggregationWeighting::Stabilized,
        eval_every: 2,
        seed,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };
    let trainer = Trainer::new(config, gfl_nn::zoo::tiny(4, 3), train, partition, test);
    (trainer, groups, labels)
}

#[test]
fn full_pipeline_learns_and_accounts_costs() {
    // Seed chosen so the first evaluation is below ceiling — several seeds
    // solve the tiny task at round 0, leaving no headroom to demonstrate
    // improvement.
    let (trainer, groups, _) = build_world(3, 0.5);
    let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    assert!(history.records().len() >= 5);
    // Learning happened.
    let first = history.records().first().unwrap();
    assert!(history.best_accuracy() > first.accuracy);
    // Cost is strictly increasing across evaluated rounds.
    for w in history.records().windows(2) {
        assert!(w[1].cost > w[0].cost);
    }
    // Loss ends finite and positive.
    let last = history.records().last().unwrap();
    assert!(last.loss.is_finite() && last.loss > 0.0);
}

#[test]
fn every_sampling_strategy_completes_on_every_weighting() {
    let (trainer, groups, _) = build_world(2, 0.3);
    for sampling in [
        SamplingStrategy::Random,
        SamplingStrategy::RCov,
        SamplingStrategy::SRCov,
        SamplingStrategy::ESRCov,
    ] {
        for weighting in [
            AggregationWeighting::Standard,
            AggregationWeighting::Unbiased,
            AggregationWeighting::Stabilized,
        ] {
            let mut cfg = trainer.config().clone();
            cfg.weighting = weighting;
            cfg.global_rounds = 3;
            let t = Trainer::new(
                cfg,
                trainer.model().clone(),
                trainer.train_data().clone(),
                trainer.partition().clone(),
                trainer.test_data().clone(),
            );
            let h = t.run(&groups, &FedAvg, sampling);
            assert!(
                !h.is_empty(),
                "{sampling:?}/{weighting:?} produced no history"
            );
            let last = h.records().last().unwrap();
            assert!(
                last.accuracy.is_finite(),
                "{sampling:?}/{weighting:?} diverged to NaN"
            );
        }
    }
}

#[test]
fn grouping_quality_orders_cov_before_random() {
    // §5.1 assumes the *global* data distribution is roughly balanced; a
    // population large enough for the Dirichlet draws to average out is
    // needed for CoV-vs-uniform to be the right target.
    let data = SyntheticSpec::tiny().generate(4_000, 3);
    let partition = ClientPartition::dirichlet(
        &data,
        &PartitionSpec {
            num_clients: 48,
            alpha: 0.2,
            min_size: 20,
            max_size: 80,
            seed: 3,
        },
    );
    let labels = partition.label_matrix.clone();
    let covg = CovGrouping {
        min_group_size: 4,
        max_cov: 0.2,
    };
    let rg = RandomGrouping { group_size: 5 };
    let avg =
        |gs: &[Vec<usize>]| gs.iter().map(|g| group_cov(&labels, g)).sum::<f32>() / gs.len() as f32;
    let mean_over_seeds = |algo: &dyn GroupingAlgorithm| {
        (0..6)
            .map(|s| {
                let mut rng = gfl_tensor::init::rng(s);
                avg(&algo.form_groups(&labels, &mut rng))
            })
            .sum::<f32>()
            / 6.0
    };
    let cov_quality = mean_over_seeds(&covg);
    let rand_quality = mean_over_seeds(&rg);
    assert!(
        cov_quality < rand_quality,
        "CoVG {cov_quality} must beat RG {rand_quality} on average"
    );
}

#[test]
fn histories_are_reproducible_across_trainer_instances() {
    let (t1, groups, _) = build_world(4, 0.5);
    let (t2, groups2, _) = build_world(4, 0.5);
    assert_eq!(groups, groups2, "grouping must be deterministic");
    let h1 = t1.run(&groups, &FedAvg, SamplingStrategy::SRCov);
    let h2 = t2.run(&groups2, &FedAvg, SamplingStrategy::SRCov);
    for (a, b) in h1.records().iter().zip(h2.records()) {
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.train_loss, b.train_loss);
    }
}

#[test]
fn resumable_sessions_match_single_run() {
    let (trainer, groups, labels) = build_world(5, 0.5);
    let covs: Vec<f32> = groups.iter().map(|g| group_cov(&labels, g)).collect();
    let probs = SamplingStrategy::Random.probabilities(&covs);

    // Two chunks of 5 rounds with the same groups, vs internals reused.
    let mut params = trainer
        .model()
        .init_params(&mut gfl_tensor::init::rng(trainer.config().seed));
    let mut ledger = trainer.ledger_for(&FedAvg);
    let mut history = gfl_core::history::RunHistory::default();
    trainer.run_resumable(
        &groups,
        &FedAvg,
        &probs,
        &mut params,
        &mut ledger,
        &mut history,
        0,
        5,
    );
    let mid_cost = ledger.total();
    trainer.run_resumable(
        &groups,
        &FedAvg,
        &probs,
        &mut params,
        &mut ledger,
        &mut history,
        5,
        5,
    );
    assert!(ledger.total() > mid_cost);
    assert_eq!(
        history.records().last().unwrap().round,
        9,
        "resumed session must reach round 9"
    );
    let eval = trainer.evaluate(&params);
    assert!(eval.accuracy > 0.3, "resumed model should have learned");
}
