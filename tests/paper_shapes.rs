//! Miniature versions of the paper's qualitative claims, kept fast enough
//! for `cargo test --workspace`. Full-scale versions live in the
//! `gfl-experiments` binaries; these guard the shapes against regressions.

use gfl_core::cov::{group_cov, mean_group_cov};
use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::{
    CdgGrouping, CovGrouping, GroupingAlgorithm, KldGrouping, RandomGrouping,
};
use gfl_core::sampling::SamplingStrategy;
use gfl_core::theory::{self, TheoremInputs};
use gfl_data::{ClientPartition, LabelMatrix, PartitionSpec, SyntheticSpec};
use gfl_sim::{CostModel, GroupOpKind, Task, Topology};
use gfl_tensor::init;
use rand::Rng;

fn skewed_labels(clients: usize, labels: usize, seed: u64) -> LabelMatrix {
    let mut rng = init::rng(seed);
    LabelMatrix::new(
        (0..clients)
            .map(|_| {
                let hot = rng.gen_range(0..labels);
                (0..labels)
                    .map(|l| {
                        if l == hot {
                            rng.gen_range(20..80)
                        } else {
                            rng.gen_range(0..6)
                        }
                    })
                    .collect()
            })
            .collect(),
        labels,
    )
}

/// Fig 2(a)/Fig 8: group-op cost overtakes training cost as groups grow,
/// and the method-specific orderings hold for both tasks.
#[test]
fn fig8_cost_orderings() {
    for task in [Task::Vision, Task::Speech] {
        let m = CostModel::for_task(task);
        assert!(m.group_op(GroupOpKind::SecureAggregation, 50) > m.training(50));
        assert!(m.training(50) > m.group_op(GroupOpKind::SecureAggregation, 5));
        for g in [10usize, 30, 50] {
            assert!(
                m.group_op(GroupOpKind::ScaffoldSecureAggregation, g)
                    > m.group_op(GroupOpKind::SecureAggregation, g)
            );
            assert!(
                m.group_op(GroupOpKind::SecureAggregation, g)
                    > m.group_op(GroupOpKind::BackdoorDetection, g)
            );
        }
    }
}

/// Fig 5's quality side + Fig 6: CoVG produces the lowest mean CoV of the
/// four algorithms at comparable group sizes.
#[test]
fn fig6_grouping_quality_ordering() {
    let labels = skewed_labels(80, 10, 3);
    let mut results = Vec::new();
    let algos: Vec<(&str, Box<dyn GroupingAlgorithm>)> = vec![
        ("RG", Box::new(RandomGrouping { group_size: 6 })),
        (
            "CDG",
            Box::new(CdgGrouping {
                group_size: 6,
                kmeans_iters: 10,
            }),
        ),
        ("KLDG", Box::new(KldGrouping { group_size: 6 })),
        (
            "CoVG",
            Box::new(CovGrouping {
                min_group_size: 5,
                max_cov: 0.2,
            }),
        ),
    ];
    for (name, algo) in algos {
        let groups = algo.form_groups(&labels, &mut init::rng(4));
        results.push((name, mean_group_cov(&labels, &groups)));
    }
    let get = |n: &str| results.iter().find(|(name, _)| *name == n).unwrap().1;
    assert!(get("CoVG") < get("RG"), "CoVG must beat RG");
    assert!(get("KLDG") < get("RG"), "KLDG must beat RG");
    assert!(
        get("CoVG") <= get("KLDG") * 1.2,
        "CoVG competitive with KLDG"
    );
}

/// §6.1: stronger emphasis functions concentrate sampling probability on
/// low-CoV groups monotonically (Random < RCoV < SRCoV < ESRCoV).
#[test]
fn fig7_sampling_emphasis_monotonicity() {
    let covs = vec![0.15f32, 0.3, 0.6, 1.2, 2.4];
    let mass_on_best = |s: SamplingStrategy| s.probabilities(&covs)[0];
    let r = mass_on_best(SamplingStrategy::Random);
    let rc = mass_on_best(SamplingStrategy::RCov);
    let src = mass_on_best(SamplingStrategy::SRCov);
    let esrc = mass_on_best(SamplingStrategy::ESRCov);
    assert!(r < rc && rc < src && src < esrc);
}

/// Table 1 structure: in a real Dirichlet federation, tightening MaxCoV
/// grows groups and lowers their CoV, for every α.
#[test]
fn table1_structure_on_dirichlet_partitions() {
    let data = SyntheticSpec::vision_like().generate(6_000, 5);
    for &alpha in &[0.1f64, 1.0] {
        let partition = ClientPartition::dirichlet(
            &data,
            &PartitionSpec {
                num_clients: 60,
                alpha,
                min_size: 20,
                max_size: 120,
                seed: 5,
            },
        );
        let topology = Topology::even_split(2, partition.sizes());
        let stats = |max_cov: f32| {
            let groups = form_groups_per_edge(
                &CovGrouping {
                    min_group_size: 5,
                    max_cov,
                },
                &topology,
                &partition.label_matrix,
                5,
            );
            let avg_size = groups.iter().map(Vec::len).sum::<usize>() as f64 / groups.len() as f64;
            (avg_size, mean_group_cov(&partition.label_matrix, &groups))
        };
        let (size_tight, cov_tight) = stats(0.1);
        let (size_loose, cov_loose) = stats(1.0);
        assert!(
            size_tight >= size_loose,
            "alpha={alpha}: tight MaxCoV sizes {size_tight} vs loose {size_loose}"
        );
        // At this reduced scale the greedy's leftover tail groups add noise,
        // so allow a small tolerance on the CoV ordering (the full-scale
        // table1 binary asserts it strictly).
        assert!(
            cov_tight <= cov_loose + 0.1,
            "alpha={alpha}: tight MaxCoV cov {cov_tight} vs loose {cov_loose}"
        );
    }
}

/// §4.3 key observations on the theorem bound, evaluated on groupings from
/// a real partition: the CoV grouping's lower heterogeneity proxy yields a
/// smaller bound than random grouping's.
#[test]
fn theorem_bound_prefers_cov_grouping() {
    // The observation is statistical, so compare the bound averaged over
    // several partition seeds rather than a single draw (any one draw can
    // go either way by a hair when the random grouping gets lucky).
    let mut covg_total = 0.0;
    let mut rg_total = 0.0;
    for seed in 0..6u64 {
        let data = SyntheticSpec::vision_like().generate(4_000, 6);
        let partition = ClientPartition::dirichlet(
            &data,
            &PartitionSpec {
                num_clients: 40,
                alpha: 0.1,
                min_size: 20,
                max_size: 100,
                seed,
            },
        );
        let topology = Topology::even_split(2, partition.sizes());
        // Hold every theorem input fixed except ζ_g (observation 1 isolates
        // group heterogeneity); ζ_g is proxied by the grouping's mean CoV.
        let bound_for = |algo: &dyn GroupingAlgorithm| {
            let groups = form_groups_per_edge(algo, &topology, &partition.label_matrix, seed);
            let covs: Vec<f32> = groups
                .iter()
                .map(|g| group_cov(&partition.label_matrix, g))
                .collect();
            // Sanity: probabilities derived from these groups stay finite.
            let probs = SamplingStrategy::SRCov.probabilities(&covs);
            assert!(theory::gamma_p(&probs).is_finite());
            let mean_cov = mean_group_cov(&partition.label_matrix, &groups);
            let mut inputs = TheoremInputs::reference();
            inputs.zeta_g_sq = f64::from(mean_cov * mean_cov);
            theory::theorem1_bound(&inputs).unwrap().total()
        };
        covg_total += bound_for(&CovGrouping {
            min_group_size: 5,
            max_cov: 0.3,
        });
        rg_total += bound_for(&RandomGrouping { group_size: 6 });
    }
    assert!(
        covg_total < rg_total,
        "theorem bound must favor CoV grouping on average: {covg_total} vs {rg_total}"
    );
}
