//! Vendored derive macros for the vendored `serde` subset.
//!
//! Hand-rolled token parsing (no `syn`/`quote` — the build environment is
//! offline). Supports the shapes this workspace defines:
//!
//! * structs with named fields → JSON objects
//! * tuple structs (newtype → inner value; n-tuple → array)
//! * unit structs → `null`
//! * enums with unit variants → `"Variant"`, tuple variants →
//!   `{"Variant": value}` / `{"Variant": [..]}`, struct variants →
//!   `{"Variant": {..}}` (upstream serde's externally-tagged default)
//!
//! Generics and `#[serde(...)]` attributes are rejected with a compile
//! error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` definition — just the shape, no types (generated
/// code relies on inference against the real field types).
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]` / doc comments) and visibility modifiers.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // Optional `(crate)` / `(super)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Counts top-level comma-separated items in a token group body.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_any = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    // Trailing comma: `(A, B,)` — if the last meaningful token is a comma,
    // we over-counted by one.
    if saw_any {
        if let Some(TokenTree::Punct(p)) = body.last() {
            if p.as_char() == ',' {
                count -= 1;
            }
        }
    }
    count
}

/// Extracts field names from a named-field body `{ a: T, b: U, ... }`.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            if i >= body.len() {
                break;
            }
            return Err(format!(
                "expected field name, got {:?}",
                body[i].to_string()
            ));
        };
        fields.push(name.to_string());
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field, got {other:?}")),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            if i >= body.len() {
                break;
            }
            return Err(format!(
                "expected variant name, got {:?}",
                body[i].to_string()
            ));
        };
        let name = name.to_string();
        i += 1;
        let kind = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_named_fields(&inner)?)
            }
            _ => VariantKind::Unit,
        };
        // Skip optional discriminant `= expr` and the separating comma.
        while i < body.len() {
            if let TokenTree::Punct(p) = &body[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generics on `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(&body)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(&body),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::Enum {
                    name,
                    variants: parse_variants(&body)?,
                })
            }
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct { arity: 1, .. } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String({vname:?}.to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))])",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let name = match &shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__obj, {f:?})?"))
                .collect();
            (
                name,
                format!(
                    "let __obj = ::serde::__private::expect_object(__v, {name:?})?;\n\
                     Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let __arr = ::serde::__private::expect_tuple(__v, {arity}, {name:?})?;\n\
                     Ok({name}({}))",
                    items.join(", ")
                ),
            )
        }
        Shape::UnitStruct { name } => (name, format!("Ok({name})")),
        Shape::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("{vname:?} => return Ok({name}::{vname})"));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push(format!(
                            "{vname:?} => return Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?))"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "{vname:?} => {{ let __arr = ::serde::__private::expect_tuple(__inner, {n}, {vname:?})?; return Ok({name}::{vname}({})) }}",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__private::field(__fields, {f:?})?"))
                            .collect();
                        tagged_arms.push(format!(
                            "{vname:?} => {{ let __fields = ::serde::__private::expect_object(__inner, {vname:?})?; return Ok({name}::{vname} {{ {} }}) }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::String(__s) = __v {{\n\
                         match __s.as_str() {{ {}, _ => {{}} }}\n\
                     }}",
                    unit_arms.join(", ")
                )
            };
            let tagged_match = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::Object(__o) = __v {{\n\
                         if __o.len() == 1 {{\n\
                             let (__tag, __inner) = &__o[0];\n\
                             match __tag.as_str() {{ {}, _ => {{}} }}\n\
                         }}\n\
                     }}",
                    tagged_arms.join(", ")
                )
            };
            (
                name,
                format!(
                    "{unit_match}\n{tagged_match}\n\
                     Err(::serde::DeError::custom(format!(\"no variant of {name} matches {{__v:?}}\")))"
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
