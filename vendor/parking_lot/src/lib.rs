//! Vendored, offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's ergonomics: `lock()`
//! returns the guard directly (no poison `Result`), and `Condvar::wait`
//! takes `&mut MutexGuard`. Poisoned std locks are recovered transparently
//! — parking_lot has no poisoning, so neither does this shim.

use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutex that hands out guards without a poison `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // A poisoned std mutex only means some thread panicked while
            // holding it; parking_lot semantics are to keep going.
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// The `Option` exists so [`Condvar::wait`] can move the underlying std
/// guard out and back in; it is `Some` at every other moment.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// the lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std doesn't report whether a thread was woken; parking_lot does.
        // Callers in this workspace ignore the return value.
        false
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0u8);
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn condvar_wait_and_notify() {
        let shared = Arc::new((Mutex::new(0usize), Condvar::new()));
        let n = 4;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut count = shared.0.lock();
                    *count += 1;
                    shared.1.notify_all();
                })
            })
            .collect();
        {
            let mut count = shared.0.lock();
            while *count < n {
                shared.1.wait(&mut count);
            }
            assert_eq!(*count, n);
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
