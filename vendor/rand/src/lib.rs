//! Vendored, offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *exact API surface it uses* of its external
//! dependencies (see `vendor/README.md`). This crate provides the `RngCore` /
//! `SeedableRng` / `Rng` traits with the subset of methods the workspace
//! calls (`gen`, `gen_range`, `gen_bool`, `fill_bytes`, …).
//!
//! Distribution quality matches the upstream implementations where it
//! matters for statistics (53-bit uniform doubles, widening-multiply range
//! reduction); exact bit-streams are *not* guaranteed to match upstream
//! `rand`, only to be deterministic per seed — which is all the workspace's
//! reproducibility contract requires.

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (upstream uses the
    /// same construction).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their full domain (the `Standard`
/// distribution of upstream `rand`).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform integer in `[0, n)` via widening multiply (Lemire).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain 64-bit range.
                    return <u64 as StandardSample>::sample_standard(rng) as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u: $t = StandardSample::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of its type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rngs` module for API parity.
pub mod rngs {
    /// A small, fast non-cryptographic PRNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl super::SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Self {
                state: u64::from_le_bytes(seed),
            }
        }
    }

    impl super::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f32 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
