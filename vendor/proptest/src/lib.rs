//! Vendored, offline, API-compatible subset of `proptest`.
//!
//! Covers the surface this workspace uses: range strategies over integers
//! and floats, tuple strategies, `collection::vec`, `prop_map` /
//! `prop_flat_map`, `ProptestConfig::with_cases`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, on purpose:
//! - no shrinking: a failing case panics immediately with the case index,
//!   which (together with the deterministic RNG) is enough to reproduce;
//! - the value stream is deterministic per test function, seeded from a
//!   fixed constant, so failures are stable across runs and machines.

use std::ops::Range;

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    /// SplitMix64 — deterministic, seedable, and good enough to explore the
    /// small input spaces property tests use.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Widening multiply keeps the distribution uniform enough for
            // test-input generation without a rejection loop.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a property holds; panics with the failing expression otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests. Each function body runs once per configured case
/// with arguments freshly generated from their strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let __run = |__rng: &mut $crate::test_runner::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        $body
                    };
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __run(&mut __rng)),
                    );
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest case {}/{} failed in {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (-2.5f32..4.0).generate(&mut rng);
            assert!((-2.5..4.0).contains(&f));
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = (1usize..4, 2usize..5).prop_flat_map(|(rows, cols)| {
            crate::collection::vec(crate::collection::vec(0u32..9, cols), rows)
                .prop_map(move |m| (rows, cols, m))
        });
        for _ in 0..100 {
            let (rows, cols, m) = strat.generate(&mut rng);
            assert_eq!(m.len(), rows);
            assert!(m.iter().all(|r| r.len() == cols));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        for _ in 0..64 {
            assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0u32..50, v in crate::collection::vec(0i32..10, 1..8)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.iter().filter(|&&x| x < 10).count());
        }
    }
}
