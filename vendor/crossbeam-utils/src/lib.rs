//! Vendored placeholder for `crossbeam-utils`.
//!
//! `gfl-parallel` declares this dependency but does not use any of its
//! items; the crate exists only so the path dependency resolves offline.
//! Add real functionality here if the workspace starts using it.
