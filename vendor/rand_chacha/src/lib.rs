//! Vendored ChaCha PRNGs implementing the vendored [`rand`] traits.
//!
//! Real ChaCha block functions (8/12/20 rounds) keyed from a 32-byte seed.
//! Deterministic per seed; the keystream is genuine ChaCha output, though the
//! word-consumption order is not guaranteed to be bit-identical to the
//! upstream `rand_chacha` crate (the workspace only relies on per-seed
//! determinism, never on upstream-exact streams).

use rand::{RngCore, SeedableRng};

/// One ChaCha quarter round on four state words.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha core: 256-bit key, 64-bit block counter, 64-bit nonce.
#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    /// Buffered keystream of the current block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means empty.
    index: usize,
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn new(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Self {
                    core: ChaChaCore::new(seed),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }
            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds — the workspace standard."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chacha20_known_answer() {
        // RFC 8439 §2.3.2 test vector: key 00 01 .. 1f, counter from 0 here
        // (the RFC uses counter 1 and a nonce; we verify the zero-key column
        // structure differently: just check the stream is stable and spread).
        let seed: [u8; 32] = std::array::from_fn(|i| i as u8);
        let mut rng = ChaCha20Rng::from_seed(seed);
        let words: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        // Stability check: the same seed must always give the same block.
        let mut rng2 = ChaCha20Rng::from_seed(seed);
        let words2: Vec<u32> = (0..16).map(|_| rng2.next_u32()).collect();
        assert_eq!(words, words2);
        // Spread check: all 16 words distinct for this seed.
        let unique: std::collections::HashSet<u32> = words.iter().copied().collect();
        assert_eq!(unique.len(), 16);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
