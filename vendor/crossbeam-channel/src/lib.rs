//! Vendored, offline, API-compatible subset of `crossbeam-channel`.
//!
//! An unbounded MPMC channel. Unlike `std::sync::mpsc`, the `Receiver` is
//! `Clone` (any number of consumers compete for messages), which is what
//! the workspace thread pool relies on. Built on a mutex-guarded queue and
//! a condvar — adequate for coarse jobs, not a lock-free replacement.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every `Receiver` is gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like upstream: Debug without requiring `T: Debug`.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// `Sender` is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    available: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (consumers compete for messages).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message, waking one waiting receiver.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(value);
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all receivers so blocked `recv`s can
            // observe the disconnect.
            self.shared.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .available
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(value) = queue.pop_front() {
            return Ok(value);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_recv() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn cloned_receivers_compete_without_duplication() {
        let (tx, rx) = unbounded();
        let n = 200;
        let consumers = 4;
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocked_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42u64).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }
}
