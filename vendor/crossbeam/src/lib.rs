//! Vendored, offline, API-compatible subset of `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` as a thin wrapper over
//! `std::thread::scope` (std scoped threads landed in 1.63, after the
//! original crossbeam API this workspace codes against). The crossbeam
//! surface differs from std in two ways that matter here:
//!
//! - spawned closures receive a `&Scope` argument (for nested spawns);
//! - `scope()` returns `Err` instead of panicking when an *unjoined*
//!   child thread panicked.

pub use crossbeam_channel as channel;

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope for spawning borrowing threads; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: derive would bound them on the lifetimes' types.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning `Err` on panic.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope, so
        /// workers can spawn siblings (unused in this workspace but part of
        /// the crossbeam signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope panics if an unjoined child panicked;
        // crossbeam reports that as Err. catch_unwind translates. A panic
        // in `f` itself is also reported as Err, which crossbeam handles
        // the same way.
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scope_joins_all_threads() {
            let counter = AtomicUsize::new(0);
            let counter = &counter;
            let sum: usize = super::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|i| {
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                            i * 2
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 8);
            assert_eq!(sum, (0..8).map(|i| i * 2).sum());
        }

        #[test]
        fn unjoined_panicking_thread_yields_err() {
            let result = super::scope(|s| {
                s.spawn(|_| panic!("child panic"));
            });
            assert!(result.is_err());
        }

        #[test]
        fn threads_can_borrow_environment() {
            let data = [1u32, 2, 3, 4];
            let total: u32 = super::scope(|s| {
                let h = s.spawn(|_| data.iter().sum::<u32>());
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(total, 10);
        }
    }
}
