//! Vendored, offline, API-compatible subset of `serde_json`.
//!
//! Prints and parses real JSON over the vendored `serde` [`Value`] tree.
//! Numbers round-trip exactly: floats print with Rust's shortest-roundtrip
//! formatting, so an `f32` checkpointed through JSON restores bit-identical
//! (`f32 → f64` widening is exact, and the shortest `f64` decimal re-parses
//! to the same `f64`). Non-finite floats serialize as `null`, matching
//! upstream `serde_json`.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Deserializes a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

// --- printing ---

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        // Upstream serde_json also emits null for NaN/±Inf.
        out.push_str("null");
        return;
    }
    if f == f.trunc() && f.abs() < 1e15 {
        // Integral floats print with a trailing `.0` like upstream.
        out.push_str(&format!("{f:.1}"));
    } else {
        // Rust's float Display is shortest-roundtrip.
        out.push_str(&f.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ---

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

/// Converts a serializable value to a [`Value`]; used by [`json!`] so the
/// macro works in crates that do not depend on `serde` directly.
#[doc(hidden)]
pub fn __to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from JSON-ish syntax with interpolated expressions.
///
/// Object and array entries are Rust expressions (including nested `json!`
/// calls); unlike upstream, nested object literals must be written as
/// explicit `json!({...})` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__to_value(&$item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::__to_value(&$value)) ),*
        ])
    };
    ($other:expr) => {
        $crate::__to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in ["null", "true", "false", "42", "-7", "3.25", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#"{"a": [1, 2.5, {"b": null}], "c": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str(r#"{"a": [1]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\""), "{pretty}");
    }

    #[test]
    fn f32_roundtrips_exactly() {
        let xs: Vec<f32> = vec![0.1, -1e-20, 3.4e38, 1.0, -0.0, 7.25e-12];
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        for (a, b) in xs.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b} in {json}");
        }
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
        let back: Result<f32, _> = from_str("null");
        assert!(back.is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let g = vec![1usize, 2];
        let v = json!({"members": g, "n": 3usize});
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("members").unwrap().as_array().unwrap().len(), 2);
    }
}
