//! Vendored, offline, API-compatible subset of `criterion`.
//!
//! Implements enough of the criterion API for the workspace's `[[bench]]`
//! targets (`harness = false`) to compile and run. There is no statistics
//! engine: each benchmark executes its routine a small fixed number of
//! times and reports the mean wall-clock time. Under `cargo test`, bench
//! targets therefore act as smoke tests; run `cargo bench` for the same
//! (rough) timing output.

use std::time::{Duration, Instant};

/// How many times a routine runs per benchmark. Enough for a coarse timing
/// signal without upstream criterion's multi-second sampling phases.
const RUNS: u32 = 3;

pub use std::hint::black_box;

/// Identifies a benchmark within a group, mirroring upstream's
/// `function_name/parameter` naming.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Controls how `iter_batched` amortizes setup; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    runs: u32,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..RUNS {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.runs += 1;
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..RUNS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.runs += 1;
        }
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..RUNS {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.total += start.elapsed();
            self.runs += 1;
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            runs: 0,
        };
        f(&mut bencher);
        let mean = if bencher.runs > 0 {
            bencher.total / bencher.runs
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: mean {:?} over {} runs",
            self.name, id, mean, bencher.runs
        );
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into().id;
        self.run_one(id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into().id;
        self.run_one(id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from(name), f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::new("range", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("input", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_every_benchmark() {
        benches();
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("batched");
        let mut count = 0;
        group.bench_function("clone-sort", |b| {
            b.iter_batched(
                || vec![3, 1, 2],
                |mut v| {
                    v.sort_unstable();
                    count += 1;
                    v
                },
                BatchSize::SmallInput,
            )
        });
        assert!(count > 0);
    }
}
