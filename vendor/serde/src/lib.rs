//! Vendored, offline, API-compatible subset of `serde`.
//!
//! The workspace's build environment cannot reach crates.io, so this crate
//! supplies the serialization surface the workspace actually uses: the
//! `Serialize` / `Deserialize` traits, their derive macros (from the sibling
//! `serde_derive` stub), and a JSON-shaped [`Value`] tree that
//! `serde_json` (also vendored) prints and parses.
//!
//! Unlike upstream serde's visitor-based zero-copy data model, this subset
//! routes everything through [`Value`]. That is entirely sufficient for the
//! workspace (checkpoint files, run summaries, CLI JSON output) and keeps
//! the implementation small and auditable. Derives accept plain structs
//! (named, tuple, unit) and enums (unit, tuple, struct variants) without
//! generics or `#[serde(...)]` attributes — exactly the shapes this
//! repository defines.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value: the interchange format of the vendored
/// serde/serde_json pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`].
pub trait SerializeTrait {
    fn to_value(&self) -> Value;
}

/// A type constructible from a [`Value`].
pub trait DeserializeTrait: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called for struct fields absent from the input. `Option<T>` maps
    /// missing to `None` (upstream serde's behavior); everything else errors.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::custom(format!("missing field `{field}`")))
    }
}

// `use serde::{Serialize, Deserialize}` must import BOTH the trait (type
// namespace) and the derive macro (macro namespace) under one name; Rust
// permits one re-export per namespace, so the derive re-export above and
// the trait re-export below coexist.
mod trait_names {
    pub use super::DeserializeTrait as Deserialize;
    pub use super::SerializeTrait as Serialize;
}
pub use trait_names::{Deserialize, Serialize};

// --- Serialize implementations for primitives & std types ---

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl SerializeTrait for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl SerializeTrait for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl SerializeTrait for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl SerializeTrait for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl SerializeTrait for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl SerializeTrait for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl SerializeTrait for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: SerializeTrait> SerializeTrait for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(SerializeTrait::to_value).collect())
    }
}

impl<T: SerializeTrait> SerializeTrait for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(SerializeTrait::to_value).collect())
    }
}

impl<T: SerializeTrait, const N: usize> SerializeTrait for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(SerializeTrait::to_value).collect())
    }
}

impl<T: SerializeTrait> SerializeTrait for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: SerializeTrait + ?Sized> SerializeTrait for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: SerializeTrait + ?Sized> SerializeTrait for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: SerializeTrait, B: SerializeTrait> SerializeTrait for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: SerializeTrait, B: SerializeTrait, C: SerializeTrait> SerializeTrait for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl SerializeTrait for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// --- Deserialize implementations ---

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl DeserializeTrait for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("integer {n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("integer {n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::custom(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl DeserializeTrait for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {v:?}")))
    }
}

impl DeserializeTrait for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl DeserializeTrait for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

impl DeserializeTrait for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl<T: DeserializeTrait> DeserializeTrait for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: DeserializeTrait> DeserializeTrait for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<A: DeserializeTrait, B: DeserializeTrait> DeserializeTrait for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected 2-tuple array"))?;
        if arr.len() != 2 {
            return Err(DeError::custom(format!(
                "expected 2 elements, got {}",
                arr.len()
            )));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl DeserializeTrait for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Support machinery for the derive macros — not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, DeserializeTrait, Value};

    /// Extracts and deserializes a named struct field.
    pub fn field<T: DeserializeTrait>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
            }
            None => T::from_missing(name),
        }
    }

    /// Requires a `Value::Object`, or errors with the type name.
    pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
        v.as_object()
            .map(Vec::as_slice)
            .ok_or_else(|| DeError::custom(format!("expected object for {ty}, got {v:?}")))
    }

    /// Requires a `Value::Array` of exactly `n` elements.
    pub fn expect_tuple<'v>(v: &'v Value, n: usize, ty: &str) -> Result<&'v [Value], DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array for {ty}, got {v:?}")))?;
        if arr.len() != n {
            return Err(DeError::custom(format!(
                "expected {n} elements for {ty}, got {}",
                arr.len()
            )));
        }
        Ok(arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f32> = Vec::from_value(&vec![1.0f32, -2.5].to_value()).unwrap();
        assert_eq!(v, vec![1.0, -2.5]);
    }

    #[test]
    fn option_missing_is_none() {
        let none: Option<f64> = DeserializeTrait::from_missing("x").unwrap();
        assert!(none.is_none());
        assert!(f64::from_missing("x").is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("k".into(), Value::U64(3))]);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        assert!(v.get("absent").is_none());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn f32_roundtrip_through_f64_is_exact() {
        for &x in &[0.1f32, 1e-30, 3.4e38, -7.25, f32::MIN_POSITIVE] {
            let v = x.to_value();
            assert_eq!(f32::from_value(&v).unwrap(), x);
        }
    }
}
