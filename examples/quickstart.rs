//! Quickstart: the whole Group-FEL pipeline in ~60 lines.
//!
//! Builds a small synthetic federation, forms CoV groups on each edge
//! server, trains with ESRCoV sampling, and prints the accuracy-vs-cost
//! trajectory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Set `GFL_TRACE_OUT=run.jsonl` to also stream a JSONL run trace through
//! `gfl-obs` (see docs/OBSERVABILITY.md); spans are flushed to disk at
//! every round barrier, and the example validates the written trace by
//! reading it back. Analyze it afterwards with `gfl-trace summarize
//! run.jsonl`. Tracing never changes results.

use gfl_core::prelude::*;
use gfl_core::sampling::AggregationWeighting;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_nn::sgd::LrSchedule;
use gfl_sim::{Task, Topology};

fn main() {
    // 1. A synthetic 10-class dataset, split train/test, partitioned across
    //    60 clients with Dirichlet(0.1) label skew — heavily non-IID.
    let data = SyntheticSpec::vision_like().generate(8_000, 1);
    let (train, test) = data.split_holdout(6);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 60,
            alpha: 0.1,
            min_size: 20,
            max_size: 200,
            seed: 1,
        },
    );

    // 2. Two edge servers, each grouping its own clients by CoV.
    let topology = Topology::even_split(2, partition.sizes());
    let grouping = CovGrouping {
        min_group_size: 5,
        max_cov: 0.5,
    };
    let groups = form_groups_per_edge(&grouping, &topology, &partition.label_matrix, 1);
    println!(
        "formed {} groups across {} edges",
        groups.len(),
        topology.num_edges()
    );
    for (i, g) in groups.iter().take(5).enumerate() {
        let cov = gfl_core::cov::group_cov(&partition.label_matrix, g);
        println!("  group {i}: {} clients, CoV {cov:.3}", g.len());
    }

    // 3. Train with the paper's hierarchy: T×K×E rounds, ESRCoV sampling,
    //    stabilized aggregation, cost charged per Eq. 5.
    let config = GroupFelConfig {
        global_rounds: 25,
        group_rounds: 5,
        local_rounds: 2,
        sampled_groups: 4,
        batch_size: 32,
        lr: LrSchedule::Constant(0.08),
        weighting: AggregationWeighting::Stabilized,
        eval_every: 5,
        seed: 1,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };
    let rounds = config.global_rounds;
    let mut trainer = Trainer::new(config, gfl_nn::zoo::vision_model(), train, partition, test);
    let trace_out = std::env::var("GFL_TRACE_OUT").ok();
    let observer = trace_out.as_ref().map(|path| {
        // Streaming mode: spans hit the file at every round barrier, so
        // memory stays bounded and a crash loses at most the tail round.
        gfl_obs::TraceCollector::streaming_to(
            std::path::Path::new(path),
            gfl_parallel::default_parallelism(),
            gfl_obs::StreamConfig::default(),
        )
        .expect("open trace sink")
    });
    if let Some(obs) = &observer {
        trainer = trainer.with_observer(std::sync::Arc::clone(obs));
    }
    let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);

    // 4. Report.
    println!("\n round      cost  accuracy");
    for r in history.records() {
        println!("{:6} {:9.0} {:9.4}", r.round, r.cost, r.accuracy);
    }
    println!("\nbest accuracy: {:.4}", history.best_accuracy());
    assert!(
        history.best_accuracy() > 0.3,
        "quickstart should learn something"
    );

    // 5. Optional: finalize the streamed trace and validate it against the
    //    schema by reading it back (analyze it with `gfl-trace summarize`).
    if let (Some(path), Some(obs)) = (trace_out, observer) {
        obs.finish(gfl_parallel::default_parallelism());
        let back = gfl_obs::TraceReader::read(std::path::Path::new(&path))
            .expect("trace must parse against the schema");
        assert_eq!(back.rounds.len(), rounds, "one round record per round");
        assert_eq!(back.meta.schema_version, gfl_obs::SCHEMA_VERSION);
        println!(
            "wrote {path}: {} spans, {} rounds, {:.1}% phase coverage",
            back.spans.len(),
            back.rounds.len(),
            back.round_coverage() * 100.0
        );
    }
}
