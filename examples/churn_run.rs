//! Churn run: the same federation trained with static membership, with
//! self-healing regrouping under churn, and with the partition frozen
//! under the same churn, side by side.
//!
//! Demonstrates the online-membership subsystem (`gfl_faults::ChurnPlan`
//! with `Trainer::with_churn` and `Trainer::run_self_healing`): clients
//! permanently depart, late arrivals are placed into the CoV-best group
//! on their edge, flapping clients miss single rounds, degraded groups
//! are dissolved and their orphans migrated — all deterministically, so
//! the run (and its `RegroupEvent` audit trail) is reproducible bit for
//! bit from the seed.
//!
//! ```text
//! cargo run --release --example churn_run
//! ```

use gfl_core::prelude::*;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_faults::ChurnPlan;
use gfl_nn::sgd::LrSchedule;
use gfl_sim::{Task, Topology};

fn main() {
    // A small non-IID federation: 24 clients on 2 edge servers.
    let data = SyntheticSpec::vision_like().generate(6_000, 13);
    let (train, test) = data.split_holdout(6);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 24,
            alpha: 0.3,
            min_size: 20,
            max_size: 200,
            seed: 13,
        },
    );
    let topology = Topology::even_split(2, partition.sizes());
    let grouping = CovGrouping {
        min_group_size: 3,
        max_cov: 0.6,
    };
    let groups = form_groups_per_edge(&grouping, &topology, &partition.label_matrix, 13);

    let config = GroupFelConfig {
        global_rounds: 30,
        group_rounds: 3,
        local_rounds: 1,
        sampled_groups: 3,
        batch_size: 32,
        lr: LrSchedule::Constant(0.1),
        weighting: AggregationWeighting::Standard,
        eval_every: 3,
        seed: 13,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };

    let make_trainer = || {
        Trainer::new(
            config.clone(),
            gfl_nn::zoo::vision_model(),
            train.clone(),
            partition.clone(),
            test.clone(),
        )
    };

    // Static baseline: nobody leaves, nobody joins.
    let clean = make_trainer().run(&groups, &FedAvg, SamplingStrategy::ESRCov);

    // The churn: 20% of clients permanently depart within the horizon,
    // 15% arrive late, and any present client flaps (misses one round)
    // with 3% probability. Both runs below see exactly this schedule.
    let plan = ChurnPlan {
        seed: 101,
        horizon: 30,
        departure_fraction: 0.2,
        arrival_fraction: 0.15,
        flap_prob: 0.03,
    };

    // Self-healing: the monitor dissolves degraded groups, migrates
    // orphans to the CoV-best group on their edge, and places arrivals.
    let (healed, _, membership) = make_trainer()
        .with_churn(plan.clone(), RegroupPolicy::default())
        .run_self_healing(&grouping, &topology, &FedAvg, SamplingStrategy::ESRCov)
        .expect("self-healing run");

    // Frozen: the founding partition is kept as-is; departures just
    // shrink groups and arrivals are never placed.
    let (frozen, _, _) = make_trainer()
        .with_churn(plan, RegroupPolicy::frozen())
        .run_self_healing(&grouping, &topology, &FedAvg, SamplingStrategy::ESRCov)
        .expect("frozen run");

    println!("round   clean-acc  healed-acc  frozen-acc");
    let at = |h: &RunHistory, round: usize| {
        h.records()
            .iter()
            .find(|r| r.round == round)
            .map_or_else(|| "-".into(), |r| format!("{:.4}", r.accuracy))
    };
    for r in clean.records() {
        println!(
            "{:5} {:10.4} {:>11} {:>11}",
            r.round,
            r.accuracy,
            at(&healed, r.round),
            at(&frozen, r.round)
        );
    }
    println!(
        "\nbest accuracy: clean {:.4}, healed {:.4} (gap {:+.4}), frozen {:.4} (gap {:+.4})",
        clean.best_accuracy(),
        healed.best_accuracy(),
        clean.best_accuracy() - healed.best_accuracy(),
        frozen.best_accuracy(),
        clean.best_accuracy() - frozen.best_accuracy()
    );
    println!(
        "\nfinal partition: {} groups over {} active clients",
        membership.groups.len(),
        membership.active_members()
    );
    println!("membership transitions: {}", healed.regroup_summary());
    for e in healed.regroup_events().iter().take(10) {
        println!("  round {:3}: {e}", e.round());
    }
    let more = healed.regroup_events().len().saturating_sub(10);
    if more > 0 {
        println!("  ... and {more} more (see RunHistory::regroup_events)");
    }
}
