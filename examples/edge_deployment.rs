//! Edge-deployment scenario: a mobile-AI operator with three
//! heterogeneous edge sites compares the cost of running FedAvg naively
//! versus deploying Group-FEL, under the paper's RPi cost model.
//!
//! This mirrors the paper's motivating story (§1): group operations
//! (secure aggregation, backdoor detection) dominate on IoT-class devices,
//! so group formation — not just group size — decides the bill.
//!
//! ```text
//! cargo run --release --example edge_deployment
//! ```

use gfl_core::prelude::*;
use gfl_core::sampling::AggregationWeighting;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_nn::sgd::LrSchedule;
use gfl_sim::{Task, Topology};

fn main() {
    // A speech-command fleet: 35 intents, 90 devices, extreme label skew
    // (every household uses a handful of commands).
    let data = SyntheticSpec::speech_like().generate(9_000, 5);
    let (train, test) = data.split_holdout(6);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 90,
            alpha: 0.05,
            min_size: 20,
            max_size: 150,
            seed: 5,
        },
    );
    let topology = Topology::even_split(3, partition.sizes());

    let config = GroupFelConfig {
        global_rounds: 20,
        group_rounds: 5,
        local_rounds: 2,
        sampled_groups: 4,
        batch_size: 32,
        lr: LrSchedule::Constant(0.1),
        weighting: AggregationWeighting::Standard,
        eval_every: 4,
        seed: 5,
        task: Task::Speech,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };

    let mut report = Vec::new();
    // Deployment A: naive random groups of 15 (one "aggregation pod" per
    // cell tower), uniform sampling.
    // Deployment B: Group-FEL — CoV groups with MinGS 8, ESRCoV sampling.
    let scenarios: Vec<(&str, Vec<Group>, SamplingStrategy, AggregationWeighting)> = vec![
        (
            "naive (RG15 + uniform)",
            form_groups_per_edge(
                &RandomGrouping { group_size: 15 },
                &topology,
                &partition.label_matrix,
                5,
            ),
            SamplingStrategy::Random,
            AggregationWeighting::Standard,
        ),
        (
            "Group-FEL (CoVG + ESRCoV)",
            form_groups_per_edge(
                &CovGrouping {
                    min_group_size: 8,
                    max_cov: 0.8,
                },
                &topology,
                &partition.label_matrix,
                5,
            ),
            SamplingStrategy::ESRCov,
            AggregationWeighting::Stabilized,
        ),
    ];

    for (name, groups, sampling, weighting) in scenarios {
        let mut cfg = config.clone();
        cfg.weighting = weighting;
        let trainer = Trainer::new(
            cfg,
            gfl_nn::zoo::speech_model(),
            train.clone(),
            partition.clone(),
            test.clone(),
        );
        let history = trainer.run(&groups, &FedAvg, sampling);
        let final_cost = history.records().last().unwrap().cost;
        let best = history.best_accuracy();
        println!(
            "{name:28} groups={:3}  total cost {final_cost:9.0}s  best accuracy {best:.4}",
            groups.len()
        );
        report.push((name, final_cost, best));
    }

    // The operator's decision metric: accuracy per emulated compute-second.
    println!("\naccuracy per 10k cost units:");
    for (name, cost, best) in &report {
        println!("  {name:28} {:.4}", f64::from(*best) / (cost / 1e4));
    }
}
