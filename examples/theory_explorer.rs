//! Theory explorer: evaluates the Theorem 1 convergence bound (§4) for a
//! real grouping produced by each algorithm, making the paper's three key
//! observations (§4.3) concrete:
//!
//! 1. lower group heterogeneity ζ_g ⇒ smaller bound (CoV-Grouping's goal),
//! 2. lower sampling variance Γ_p ⇒ smaller sampling term,
//! 3. γ − 1 equals the squared CoV of client data volumes.
//!
//! ```text
//! cargo run --release --example theory_explorer
//! ```

use gfl_core::cov::{group_cov, mean_group_cov};
use gfl_core::grouping::{CovGrouping, GroupingAlgorithm, RandomGrouping};
use gfl_core::prelude::*;
use gfl_core::theory::{self, TheoremInputs};
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_sim::Topology;

fn main() {
    let data = SyntheticSpec::vision_like().generate(6_000, 11);
    let partition = ClientPartition::dirichlet(
        &data,
        &PartitionSpec {
            num_clients: 80,
            alpha: 0.1,
            min_size: 20,
            max_size: 120,
            seed: 11,
        },
    );
    let topology = Topology::even_split(2, partition.sizes());

    println!("algorithm | mean CoV | gamma | Gamma | Gamma_p | bound (total)");
    let algos: Vec<Box<dyn GroupingAlgorithm>> = vec![
        Box::new(RandomGrouping { group_size: 6 }),
        Box::new(CovGrouping {
            min_group_size: 5,
            max_cov: 0.4,
        }),
    ];
    for algo in algos {
        let groups = form_groups_per_edge(algo.as_ref(), &topology, &partition.label_matrix, 11);
        let covs: Vec<f32> = groups
            .iter()
            .map(|g| group_cov(&partition.label_matrix, g))
            .collect();
        let probs = SamplingStrategy::SRCov.probabilities(&covs);

        // γ averaged over groups, Γ across groups, Γ_p from the sampler.
        let gammas: Vec<f64> = groups
            .iter()
            .map(|g| {
                let sizes: Vec<usize> = g.iter().map(|&c| partition.indices[c].len()).collect();
                theory::gamma(&sizes)
            })
            .collect();
        let gamma = gammas.iter().sum::<f64>() / gammas.len() as f64;
        let group_sizes: Vec<usize> = groups
            .iter()
            .map(|g| g.iter().map(|&c| partition.indices[c].len()).sum())
            .collect();
        let big_gamma = theory::big_gamma(&group_sizes);
        let gamma_p = theory::gamma_p(&probs);
        let mean_cov = mean_group_cov(&partition.label_matrix, &groups);

        // Use mean group CoV as the ζ_g proxy (§4.3: "we use the difference
        // between data distributions to measure how analogous two loss
        // functions are").
        let mut inputs = TheoremInputs::reference();
        inputs.gamma = gamma;
        inputs.big_gamma = big_gamma;
        inputs.gamma_p = gamma_p.min(1e6);
        inputs.zeta_g_sq = f64::from(mean_cov * mean_cov);
        let bound = theory::theorem1_bound(&inputs).expect("inside validity region");
        println!(
            "{:9} | {mean_cov:8.3} | {gamma:5.3} | {big_gamma:5.3} | {gamma_p:7.1} | {:.4} \
             (opt {:.4} + sampling {:.4} + heterogeneity {:.4})",
            algo.name(),
            bound.total(),
            bound.optimization,
            bound.sampling,
            bound.heterogeneity
        );
    }

    // Observation 3: γ − 1 = CoV² of client data volumes, exactly.
    let sizes = [30usize, 60, 90, 180];
    let g = theory::gamma(&sizes);
    let floats: Vec<f32> = sizes.iter().map(|&s| s as f32).collect();
    let cov = f64::from(gfl_tensor::stats::coefficient_of_variation(&floats));
    println!(
        "\nγ − 1 = {:.6}, CoV² = {:.6} (identity of §4.3 ✓)",
        g - 1.0,
        cov * cov
    );
    assert!((g - 1.0 - cov * cov).abs() < 1e-6);
}
