//! Secure group pipeline: the two group operations the paper charges for,
//! exercised for real — pairwise-masking secure aggregation and backdoor
//! detection — inside an actual training round.
//!
//! Demonstrates:
//! 1. training with `secure_aggregation: true` produces the same model as
//!    plain aggregation (masks cancel exactly);
//! 2. a poisoned group is sanitized by the defense before aggregation;
//! 3. the per-client cost of both operations grows with group size, which
//!    is exactly what `gfl-sim`'s quadratic cost curves charge.
//!
//! ```text
//! cargo run --release --example secure_pipeline
//! ```

use gfl_core::prelude::*;
use gfl_core::sampling::AggregationWeighting;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_defense::{filter_updates, scale_attack, DefenseConfig};
use gfl_nn::sgd::LrSchedule;
use gfl_secagg::SecAggSession;
use gfl_sim::{Task, Topology};
use gfl_tensor::ops;

fn main() {
    // --- Part 1: SecAgg inside training --------------------------------
    let data = SyntheticSpec::tiny().generate(900, 9);
    let (train, test) = data.split_holdout(5);
    let partition = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, 9));
    let topology = Topology::even_split(2, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 3,
            max_cov: 1.0,
        },
        &topology,
        &partition.label_matrix,
        9,
    );
    let mut config = GroupFelConfig {
        global_rounds: 6,
        group_rounds: 2,
        local_rounds: 1,
        sampled_groups: 3,
        batch_size: 16,
        lr: LrSchedule::Constant(0.15),
        weighting: AggregationWeighting::Standard,
        eval_every: 2,
        seed: 9,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };
    let model = gfl_nn::zoo::tiny(4, 3);
    let plain = Trainer::new(
        config.clone(),
        model.clone(),
        train.clone(),
        partition.clone(),
        test.clone(),
    )
    .run(&groups, &FedAvg, SamplingStrategy::Random);

    config.secure_aggregation = true;
    let secure = Trainer::new(config, model, train, partition, test).run(
        &groups,
        &FedAvg,
        SamplingStrategy::Random,
    );

    println!("round | plain acc | secagg acc");
    for (p, s) in plain.records().iter().zip(secure.records()) {
        println!("{:5} | {:9.4} | {:9.4}", p.round, p.accuracy, s.accuracy);
        assert!((p.accuracy - s.accuracy).abs() < 0.05);
    }
    println!("secure aggregation reproduces plain training ✓\n");

    // --- Part 2: standalone SecAgg with a dropout ----------------------
    let dim = 8;
    let session = SecAggSession::new(vec![0, 1, 2, 3], dim, 77);
    let updates: Vec<Vec<f32>> = (0..4)
        .map(|i| (0..dim).map(|j| (i * dim + j) as f32 * 0.01).collect())
        .collect();
    let masked: Vec<Vec<f32>> = updates
        .iter()
        .enumerate()
        .map(|(i, u)| session.mask(i as u32, u).0)
        .collect();
    // Client 2 drops after masking; the server recovers.
    let survivors = [0u32, 1, 3];
    let masked_surv: Vec<Vec<f32>> = [0usize, 1, 3].iter().map(|&i| masked[i].clone()).collect();
    let (sum, cost) = session.unmask_sum(&survivors, &masked_surv);
    let mut want = vec![0.0f32; dim];
    for &i in &[0usize, 1, 3] {
        ops::add_assign(&updates[i], &mut want);
    }
    for (a, b) in sum.iter().zip(want.iter()) {
        assert!((a - b).abs() < 1e-3);
    }
    println!(
        "dropout recovery ✓ (server did {} extra PRG expansions to cancel orphaned masks)\n",
        cost.prg_expansions
    );

    // --- Part 3: poisoned group sanitized ------------------------------
    let mut group_updates: Vec<Vec<f32>> = (0..8).map(|_| vec![0.5f32; 64]).collect();
    for u in group_updates.iter_mut().take(6) {
        // Honest clients: small jitter around the common direction.
        u.iter_mut()
            .enumerate()
            .for_each(|(j, v)| *v += (j as f32).sin() * 0.05);
    }
    for u in group_updates.iter_mut().skip(6) {
        // Two attackers: boosted opposite direction.
        u.iter_mut().for_each(|v| *v = -*v);
        scale_attack(u, 10.0);
    }
    let report = filter_updates(&mut group_updates, &DefenseConfig::default());
    println!(
        "defense: accepted {:?}, rejected {:?} ({} pairwise sims)",
        report.accepted, report.rejected, report.cost.similarity_evals
    );
    assert_eq!(report.rejected, vec![6, 7]);
    println!("backdoor clients excluded before aggregation ✓");
}
