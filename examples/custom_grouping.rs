//! Extending the library: plugging a custom grouping algorithm into the
//! Group-FEL pipeline.
//!
//! Implements a "label-coverage" grouping policy (greedy set-cover on label
//! presence) by writing one `GroupingAlgorithm` impl, then races it against
//! the paper's CoV-Grouping on grouping quality and end-task accuracy.
//!
//! ```text
//! cargo run --release --example custom_grouping
//! ```

use gfl_core::cov::mean_group_cov;
use gfl_core::grouping::GroupingAlgorithm;
use gfl_core::prelude::*;
use gfl_core::sampling::AggregationWeighting;
use gfl_data::{ClientPartition, LabelMatrix, PartitionSpec, SyntheticSpec};
use gfl_nn::sgd::LrSchedule;
use gfl_sim::{Task, Topology};
use gfl_tensor::init::GflRng;
use rand::Rng;

/// Greedy label-coverage grouping: each group absorbs the client adding
/// the most labels not yet present, until all labels are covered or the
/// target size is reached. A reasonable heuristic — but it ignores *how
/// much* of each label a client holds, which is exactly the information
/// CoV exploits.
struct CoverageGrouping {
    target_size: usize,
}

impl GroupingAlgorithm for CoverageGrouping {
    fn name(&self) -> &'static str {
        "Coverage"
    }

    fn form_groups(&self, labels: &LabelMatrix, rng: &mut GflRng) -> Vec<Vec<usize>> {
        let n = labels.num_clients();
        let m = labels.num_labels();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut groups = Vec::new();
        while !remaining.is_empty() {
            let seed = remaining.swap_remove(rng.gen_range(0..remaining.len()));
            let mut group = vec![seed];
            let mut covered: Vec<bool> = labels.client(seed).iter().map(|&c| c > 0).collect();
            while group.len() < self.target_size && !remaining.is_empty() {
                let (pos, gain) = remaining
                    .iter()
                    .enumerate()
                    .map(|(pos, &c)| {
                        let gain = labels
                            .client(c)
                            .iter()
                            .zip(covered.iter())
                            .filter(|(&cnt, &cov)| cnt > 0 && !cov)
                            .count();
                        (pos, gain)
                    })
                    .max_by_key(|&(_, gain)| gain)
                    .unwrap();
                if gain == 0 && covered.iter().filter(|&&c| c).count() == m {
                    break;
                }
                let c = remaining.swap_remove(pos);
                for (cov, &cnt) in covered.iter_mut().zip(labels.client(c).iter()) {
                    *cov |= cnt > 0;
                }
                group.push(c);
            }
            groups.push(group);
        }
        groups
    }
}

fn main() {
    let data = SyntheticSpec::vision_like().generate(6_000, 3);
    let (train, test) = data.split_holdout(6);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 60,
            alpha: 0.1,
            min_size: 20,
            max_size: 120,
            seed: 3,
        },
    );
    let topology = Topology::even_split(2, partition.sizes());

    let config = GroupFelConfig {
        global_rounds: 20,
        group_rounds: 5,
        local_rounds: 2,
        sampled_groups: 4,
        batch_size: 32,
        lr: LrSchedule::Constant(0.08),
        weighting: AggregationWeighting::Stabilized,
        eval_every: 4,
        seed: 3,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };

    let algos: Vec<Box<dyn GroupingAlgorithm>> = vec![
        Box::new(CoverageGrouping { target_size: 6 }),
        Box::new(CovGrouping {
            min_group_size: 5,
            max_cov: 0.5,
        }),
    ];
    for algo in algos {
        let groups = form_groups_per_edge(algo.as_ref(), &topology, &partition.label_matrix, 3);
        let quality = mean_group_cov(&partition.label_matrix, &groups);
        let trainer = Trainer::new(
            config.clone(),
            gfl_nn::zoo::vision_model(),
            train.clone(),
            partition.clone(),
            test.clone(),
        );
        let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        println!(
            "{:10} groups={:3}  mean CoV {quality:.3}  best accuracy {:.4}",
            algo.name(),
            groups.len(),
            history.best_accuracy()
        );
    }
    println!("\nany struct implementing GroupingAlgorithm drops into the same pipeline");
}
