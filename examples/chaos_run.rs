//! Chaos run: the same federation trained clean and under a moderate
//! fault plan, side by side.
//!
//! Demonstrates the deterministic fault-injection subsystem
//! (`gfl-faults` + `Trainer::with_faults`): stragglers are cut at the
//! deadline, crashed and corrupt clients are dropped, a dark edge server
//! takes its groups offline, lost uploads are retried with exponential
//! backoff — and the run still converges close to the clean baseline.
//!
//! ```text
//! cargo run --release --example chaos_run
//! ```

use gfl_core::prelude::*;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_faults::{FaultPlan, FaultPolicy};
use gfl_nn::sgd::LrSchedule;
use gfl_sim::{Task, Topology};

fn main() {
    // A small non-IID federation: 24 clients on 2 edge servers.
    let data = SyntheticSpec::vision_like().generate(6_000, 11);
    let (train, test) = data.split_holdout(6);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 24,
            alpha: 0.3,
            min_size: 20,
            max_size: 200,
            seed: 11,
        },
    );
    let topology = Topology::even_split(2, partition.sizes());
    let grouping = CovGrouping {
        min_group_size: 3,
        max_cov: 0.6,
    };
    let groups = form_groups_per_edge(&grouping, &topology, &partition.label_matrix, 11);

    let config = GroupFelConfig {
        global_rounds: 20,
        group_rounds: 3,
        local_rounds: 1,
        sampled_groups: 3,
        batch_size: 32,
        lr: LrSchedule::Constant(0.1),
        weighting: AggregationWeighting::Standard,
        eval_every: 2,
        seed: 11,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: false,
        dropout_prob: 0.0,
    };

    let make_trainer = || {
        Trainer::new(
            config.clone(),
            gfl_nn::zoo::vision_model(),
            train.clone(),
            partition.clone(),
            test.clone(),
        )
    };

    // Clean baseline.
    let clean = make_trainer().run(&groups, &FedAvg, SamplingStrategy::ESRCov);

    // Same seeds, same data — but 20% of devices straggle at ~4×, clients
    // crash and corrupt updates at the moderate plan's rates, edge 0 goes
    // dark for rounds 2–3, and every tenth upload needs retries.
    let plan = FaultPlan::moderate(97);
    let faulted = make_trainer()
        .with_faults(plan, FaultPolicy::default(), &topology)
        .run(&groups, &FedAvg, SamplingStrategy::ESRCov);

    println!("round   clean-acc  faulted-acc");
    let faulted_at = |round: usize| {
        faulted
            .records()
            .iter()
            .find(|r| r.round == round)
            .map(|r| r.accuracy)
    };
    for r in clean.records() {
        match faulted_at(r.round) {
            Some(acc) => println!("{:5} {:10.4} {:12.4}", r.round, r.accuracy, acc),
            None => println!("{:5} {:10.4} {:>12}", r.round, r.accuracy, "-"),
        }
    }
    println!(
        "\nbest accuracy: clean {:.4}, faulted {:.4} (gap {:+.4})",
        clean.best_accuracy(),
        faulted.best_accuracy(),
        clean.best_accuracy() - faulted.best_accuracy()
    );
    println!("\ninjected faults: {}", faulted.fault_summary());
    for e in faulted.fault_events().iter().take(8) {
        println!("  {e:?}");
    }
    let more = faulted.fault_events().len().saturating_sub(8);
    if more > 0 {
        println!("  ... and {more} more (see RunHistory::fault_events)");
    }
}
