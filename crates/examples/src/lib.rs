//! Host package for the runnable examples in the repository-root
//! `examples/` directory. Run them with, e.g.:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example edge_deployment
//! cargo run --release --example secure_pipeline
//! cargo run --release --example custom_grouping
//! cargo run --release --example theory_explorer
//! ```
