//! Deterministic poisoning campaigns: which clients are adversaries, what
//! attack each one runs, and which of their samples are poisoned.
//!
//! [`crate::FaultPlan`] models *accidental* failure; an [`AdversaryPlan`]
//! models **malice**. A fixed fraction of clients is compromised for the
//! whole run, each assigned one of three classic campaigns:
//!
//! * **Backdoor** — the client trains on shards carrying a trigger
//!   pattern (`gfl_data::poison::Trigger`) relabelled to the attacker's
//!   target class, so the global model misclassifies triggered inputs.
//! * **Label flip** — the client relabels its `flip_from` samples to
//!   `flip_to`, a targeted availability attack on one class.
//! * **Model poison** — the client trains honestly, then amplifies its
//!   uploaded update (scale and/or sign-flip), the model-replacement
//!   attack FLAME-style defenses are built to catch.
//!
//! Like the fault and churn plans, every decision is a pure hash of
//! `(plan seed, purpose, client [, row])`: no engine RNG stream is ever
//! consumed, so an attacked run with [`AdversaryPlan::none`] is
//! bit-identical to a clean run, and identical seeds replay identical
//! campaigns at any thread count.

use serde::{Deserialize, Serialize};

use crate::mix;

// Purpose tags keep the adversary decision streams independent of each
// other and of the fault/churn streams.
const P_ADV_SELECT: u64 = 0x4144_5653_454C_4543; // "ADVSELEC"
const P_POISON_ROW: u64 = 0x504F_4953_4E52_4F57; // "POISNROW"

/// The campaign a compromised client runs. Fixed for the whole run — real
/// adversaries do not change strategy round to round, and a stable
/// assignment keeps the plan a pure function of `(seed, client)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Trigger-pattern backdoor on the client's training shard.
    Backdoor,
    /// Targeted `flip_from → flip_to` label flipping.
    LabelFlip,
    /// Scale/sign-flip amplification of the uploaded update.
    ModelPoison,
}

/// Which clients attack, how, and how hard. All decisions are pure hashes
/// of the plan seed and the decision coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// Seed of the adversary decision streams (independent of the engine,
    /// fault, and churn seeds).
    pub seed: u64,
    /// Fraction of clients running the backdoor campaign.
    pub backdoor_fraction: f64,
    /// Fraction of clients running the label-flip campaign.
    pub label_flip_fraction: f64,
    /// Fraction of clients running the model-poison campaign.
    pub model_poison_fraction: f64,
    /// Fraction of a data-poisoning adversary's local samples that are
    /// poisoned (per-row pure-hash selection).
    pub poison_rate: f64,
    /// Amplification factor backdoor clients apply to their uploaded
    /// delta. `1.0` is pure data poisoning; `>1` is the model-replacement
    /// boost of Bagdasaryan et al. — the regime norm-inspecting defenses
    /// (Krum, FLAME) are designed to catch.
    pub backdoor_boost: f64,
    /// Trigger width (leading coordinates) for the backdoor campaign.
    pub trigger_width: usize,
    /// The label every triggered sample is forced to.
    pub trigger_target: usize,
    /// Source class of the label-flip campaign.
    pub flip_from: usize,
    /// Target class of the label-flip campaign.
    pub flip_to: usize,
    /// Model-poison amplification factor applied to the update delta.
    pub scale_factor: f64,
    /// Whether model poisoners also flip the sign of their delta.
    pub sign_flip: bool,
}

impl AdversaryPlan {
    /// The clean plan: nobody attacks.
    pub fn none() -> Self {
        Self {
            seed: 0,
            backdoor_fraction: 0.0,
            label_flip_fraction: 0.0,
            model_poison_fraction: 0.0,
            poison_rate: 0.0,
            backdoor_boost: 1.0,
            trigger_width: 0,
            trigger_target: 0,
            flip_from: 0,
            flip_to: 0,
            scale_factor: 1.0,
            sign_flip: false,
        }
    }

    /// The documented "moderate adversary" preset used by the adversarial
    /// suite: 10% backdoor + 5% label-flip + 5% model-poison clients,
    /// half of each data poisoner's shard poisoned, a 3-coordinate trigger
    /// targeting class 0, 1→0 flips, and 5× sign-flipped model poison.
    pub fn moderate(seed: u64) -> Self {
        Self {
            seed,
            backdoor_fraction: 0.1,
            label_flip_fraction: 0.05,
            model_poison_fraction: 0.05,
            poison_rate: 0.5,
            backdoor_boost: 1.0,
            trigger_width: 3,
            trigger_target: 0,
            flip_from: 1,
            flip_to: 0,
            scale_factor: 5.0,
            sign_flip: true,
        }
    }

    /// A pure backdoor campaign at the given compromised fraction — the
    /// configuration the ASR-vs-defense experiment sweeps.
    pub fn backdoor(seed: u64, fraction: f64) -> Self {
        Self {
            seed,
            backdoor_fraction: fraction,
            label_flip_fraction: 0.0,
            model_poison_fraction: 0.0,
            poison_rate: 0.9,
            backdoor_boost: 1.0,
            trigger_width: 3,
            trigger_target: 0,
            flip_from: 0,
            flip_to: 0,
            scale_factor: 1.0,
            sign_flip: false,
        }
    }

    /// Whether this plan can ever attack anything.
    pub fn is_clean(&self) -> bool {
        self.backdoor_fraction == 0.0
            && self.label_flip_fraction == 0.0
            && self.model_poison_fraction == 0.0
    }

    /// Validates the plan's ranges (used by constructors downstream).
    ///
    /// # Panics
    /// Panics when a fraction is outside `[0, 1]`, the fractions sum past
    /// 1, the label flip is a no-op (`flip_from == flip_to` while
    /// flipping), or the model-poison amplification cannot perturb
    /// anything.
    pub fn validate(&self) {
        for (name, f) in [
            ("backdoor_fraction", self.backdoor_fraction),
            ("label_flip_fraction", self.label_flip_fraction),
            ("model_poison_fraction", self.model_poison_fraction),
            ("poison_rate", self.poison_rate),
        ] {
            assert!((0.0..=1.0).contains(&f), "{name} must be a probability");
        }
        assert!(
            self.backdoor_fraction + self.label_flip_fraction + self.model_poison_fraction <= 1.0,
            "adversary fractions must sum to at most 1"
        );
        if self.backdoor_fraction > 0.0 {
            assert!(self.trigger_width > 0, "backdoor campaign needs a trigger");
            assert!(
                self.backdoor_boost.is_finite() && self.backdoor_boost > 0.0,
                "backdoor boost must be a positive finite factor"
            );
        }
        if self.label_flip_fraction > 0.0 {
            assert_ne!(
                self.flip_from, self.flip_to,
                "label flip must change the label"
            );
        }
        if self.model_poison_fraction > 0.0 {
            assert!(
                self.scale_factor != 1.0 || self.sign_flip,
                "model poison must amplify or flip the update"
            );
        }
    }

    /// Uniform draw in [0, 1) from the (purpose, a, b) stream.
    fn unit(&self, purpose: u64, a: u64, b: u64) -> f64 {
        let h = mix(self.seed.wrapping_mul(0xA076_1D64_78BD_642F)
            ^ purpose
            ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The campaign `client` runs, if compromised. One uniform draw is
    /// split over the three fractions, so assignments are disjoint and the
    /// compromised population is exactly the fraction sum in expectation.
    pub fn kind(&self, client: usize) -> Option<AttackKind> {
        if self.is_clean() {
            return None;
        }
        let u = self.unit(P_ADV_SELECT, client as u64, 0);
        if u < self.backdoor_fraction {
            Some(AttackKind::Backdoor)
        } else if u < self.backdoor_fraction + self.label_flip_fraction {
            Some(AttackKind::LabelFlip)
        } else if u < self.backdoor_fraction + self.label_flip_fraction + self.model_poison_fraction
        {
            Some(AttackKind::ModelPoison)
        } else {
            None
        }
    }

    /// Whether `client` is compromised at all.
    pub fn is_adversary(&self, client: usize) -> bool {
        self.kind(client).is_some()
    }

    /// Whether row `row` of a data-poisoning adversary's local shard is
    /// poisoned. Pure hash of `(seed, client, row)` — the poisoned subset
    /// is fixed for the whole run.
    pub fn poisons_row(&self, client: usize, row: usize) -> bool {
        self.poison_rate > 0.0
            && self.unit(P_POISON_ROW, client as u64, row as u64) < self.poison_rate
    }
}

/// The stage of the defense pipeline that neutralized an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefenseStage {
    /// The FLAME-style cosine-clustering filter rejected the update.
    FlameFilter,
    /// The non-finite gate caught an amplified update that overflowed.
    NonFiniteGate,
}

/// One attack (or one defense interception), recorded in the run history
/// exactly like a [`crate::FaultEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttackEvent {
    /// A backdoor adversary trained on its triggered shard this group
    /// round; `rows` is the number of poisoned samples in the shard.
    BackdoorInjected {
        round: usize,
        group_round: usize,
        group: usize,
        client: usize,
        rows: usize,
    },
    /// A label-flip adversary trained on its relabelled shard this group
    /// round; `rows` is the number of flipped samples.
    LabelsFlipped {
        round: usize,
        group_round: usize,
        group: usize,
        client: usize,
        rows: usize,
    },
    /// A model poisoner amplified its uploaded update this group round.
    UpdatePoisoned {
        round: usize,
        group_round: usize,
        group: usize,
        client: usize,
    },
    /// A defense stage rejected a compromised client's update.
    AttackFiltered {
        round: usize,
        group_round: usize,
        group: usize,
        client: usize,
        stage: DefenseStage,
    },
}

impl AttackEvent {
    /// The global round the event belongs to.
    pub fn round(&self) -> usize {
        match *self {
            AttackEvent::BackdoorInjected { round, .. }
            | AttackEvent::LabelsFlipped { round, .. }
            | AttackEvent::UpdatePoisoned { round, .. }
            | AttackEvent::AttackFiltered { round, .. } => round,
        }
    }

    /// Whether this event is an injection (as opposed to a defense
    /// interception).
    pub fn is_injection(&self) -> bool {
        !matches!(self, AttackEvent::AttackFiltered { .. })
    }
}

/// Per-kind tallies of an attack log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackSummary {
    /// Backdoor-poisoned training units.
    pub backdoor: usize,
    /// Label-flipped training units.
    pub label_flip: usize,
    /// Amplified (model-poisoned) uploads.
    pub model_poison: usize,
    /// Updates rejected by the FLAME-style filter.
    pub filtered_flame: usize,
    /// Updates rejected by the non-finite gate.
    pub filtered_non_finite: usize,
}

impl AttackSummary {
    /// Total injected attacks (not counting interceptions).
    pub fn injected(&self) -> usize {
        self.backdoor + self.label_flip + self.model_poison
    }

    /// Total defense interceptions.
    pub fn filtered(&self) -> usize {
        self.filtered_flame + self.filtered_non_finite
    }
}

impl std::fmt::Display for AttackSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} backdoor, {} label-flip, {} model-poison injections; \
             {} filtered (flame {}, non-finite {})",
            self.backdoor,
            self.label_flip,
            self.model_poison,
            self.filtered(),
            self.filtered_flame,
            self.filtered_non_finite
        )
    }
}

/// Tallies an attack log into per-kind counts.
pub fn summarize_attacks(events: &[AttackEvent]) -> AttackSummary {
    let mut s = AttackSummary::default();
    for e in events {
        match e {
            AttackEvent::BackdoorInjected { .. } => s.backdoor += 1,
            AttackEvent::LabelsFlipped { .. } => s.label_flip += 1,
            AttackEvent::UpdatePoisoned { .. } => s.model_poison += 1,
            AttackEvent::AttackFiltered { stage, .. } => match stage {
                DefenseStage::FlameFilter => s.filtered_flame += 1,
                DefenseStage::NonFiniteGate => s.filtered_non_finite += 1,
            },
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = AdversaryPlan::moderate(9);
        let b = AdversaryPlan::moderate(9);
        for c in 0..300 {
            assert_eq!(a.kind(c), b.kind(c));
            for r in 0..50 {
                assert_eq!(a.poisons_row(c, r), b.poisons_row(c, r));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = AdversaryPlan::moderate(1);
        let b = AdversaryPlan::moderate(2);
        let compromised =
            |p: &AdversaryPlan| (0..400).filter(|&c| p.is_adversary(c)).collect::<Vec<_>>();
        assert_ne!(compromised(&a), compromised(&b));
    }

    #[test]
    fn clean_plan_attacks_nobody() {
        let p = AdversaryPlan::none();
        assert!(p.is_clean());
        assert!(!AdversaryPlan::moderate(0).is_clean());
        for c in 0..100 {
            assert_eq!(p.kind(c), None);
            for r in 0..20 {
                assert!(!p.poisons_row(c, r));
            }
        }
    }

    #[test]
    fn fractions_are_respected_statistically() {
        let p = AdversaryPlan::moderate(7);
        let n = 4_000;
        let mut counts = [0usize; 3];
        for c in 0..n {
            match p.kind(c) {
                Some(AttackKind::Backdoor) => counts[0] += 1,
                Some(AttackKind::LabelFlip) => counts[1] += 1,
                Some(AttackKind::ModelPoison) => counts[2] += 1,
                None => {}
            }
        }
        let frac = |k: usize| counts[k] as f64 / n as f64;
        assert!((frac(0) - 0.1).abs() < 0.02, "backdoor {}", frac(0));
        assert!((frac(1) - 0.05).abs() < 0.015, "label flip {}", frac(1));
        assert!((frac(2) - 0.05).abs() < 0.015, "model poison {}", frac(2));
    }

    #[test]
    fn poison_rate_is_respected_statistically() {
        let p = AdversaryPlan::moderate(11);
        let trials = 10_000;
        let poisoned = (0..trials)
            .filter(|&i| p.poisons_row(i % 40, i / 40))
            .count();
        let rate = poisoned as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.02, "poison rate {rate} far from 0.5");
    }

    #[test]
    fn campaign_assignment_is_disjoint() {
        // One draw split over the fractions: a client has exactly zero or
        // one campaign, never two.
        let p = AdversaryPlan {
            backdoor_fraction: 0.4,
            label_flip_fraction: 0.3,
            model_poison_fraction: 0.3,
            ..AdversaryPlan::moderate(3)
        };
        let mut seen = [0usize; 3];
        for c in 0..1_000 {
            if let Some(k) = p.kind(c) {
                seen[k as usize] += 1;
            }
        }
        // Fractions sum to 1.0: everyone is compromised by some campaign.
        assert_eq!(seen.iter().sum::<usize>(), 1_000);
        assert!(seen.iter().all(|&s| s > 200), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn oversubscribed_fractions_panic() {
        AdversaryPlan {
            backdoor_fraction: 0.6,
            label_flip_fraction: 0.6,
            ..AdversaryPlan::moderate(1)
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "must change the label")]
    fn identity_flip_panics() {
        AdversaryPlan {
            flip_from: 2,
            flip_to: 2,
            ..AdversaryPlan::moderate(1)
        }
        .validate();
    }

    #[test]
    fn summary_counts_every_kind() {
        let events = vec![
            AttackEvent::BackdoorInjected {
                round: 0,
                group_round: 0,
                group: 0,
                client: 1,
                rows: 5,
            },
            AttackEvent::BackdoorInjected {
                round: 1,
                group_round: 0,
                group: 0,
                client: 1,
                rows: 5,
            },
            AttackEvent::LabelsFlipped {
                round: 0,
                group_round: 1,
                group: 1,
                client: 2,
                rows: 3,
            },
            AttackEvent::UpdatePoisoned {
                round: 2,
                group_round: 0,
                group: 0,
                client: 3,
            },
            AttackEvent::AttackFiltered {
                round: 2,
                group_round: 0,
                group: 0,
                client: 3,
                stage: DefenseStage::FlameFilter,
            },
        ];
        let s = summarize_attacks(&events);
        assert_eq!(s.backdoor, 2);
        assert_eq!(s.label_flip, 1);
        assert_eq!(s.model_poison, 1);
        assert_eq!(s.filtered_flame, 1);
        assert_eq!(s.injected(), 4);
        assert_eq!(s.filtered(), 1);
        assert_eq!(events[0].round(), 0);
        assert!(events[0].is_injection());
        assert!(!events[4].is_injection());
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = AdversaryPlan::moderate(42);
        let json = serde_json::to_string(&plan).unwrap();
        let back: AdversaryPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
