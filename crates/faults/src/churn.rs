//! Deterministic client-churn plans: permanent departures, late arrivals,
//! and flapping availability.
//!
//! PR 1's [`crate::FaultPlan`] models *transient* failures — a crashed
//! client is back next round. Real cross-device federations are dominated
//! by **membership churn**: devices leave for good, new devices enroll
//! mid-run, and flaky devices oscillate between reachable and not. A
//! [`ChurnPlan`] describes all three as pure functions of
//! `(plan seed, round, client)`, in exactly the same spirit as the fault
//! injector's decision streams: no engine RNG is ever consumed, so a run
//! with `ChurnPlan::none()` is bit-identical to one without churn
//! machinery at all, and two runs with the same seeds and plan agree on
//! every membership transition.
//!
//! The plan answers three questions per `(client, round)`:
//!
//! * [`ChurnPlan::departure_round`] — when (if ever) the client leaves
//!   permanently.
//! * [`ChurnPlan::arrival_round`] — when the client first becomes a
//!   member (0 for founding members).
//! * [`ChurnPlan::flaps`] — whether the client is transiently unreachable
//!   for this one round (present, but unavailable).
//!
//! `gfl-core`'s membership layer consumes these to drive departures,
//! greedy re-placement of arrivals, and group-health-triggered regrouping.

use serde::{Deserialize, Serialize};

use crate::mix;

// Purpose tags keep churn decision streams independent of each other and
// of the fault streams.
const P_DEPART_SELECT: u64 = 0x4445_5041_5254_5345; // "DEPARTSE"
const P_DEPART_ROUND: u64 = 0x4445_5041_5254_5244;
const P_ARRIVE_SELECT: u64 = 0x4152_5249_5645_5345;
const P_ARRIVE_ROUND: u64 = 0x4152_5249_5645_5244;
const P_FLAP: u64 = 0x464C_4150_0000_0001;

/// What membership churn happens, and when. All decisions are pure hashes
/// of the plan seed and the decision coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Seed of the churn decision streams (independent of the engine and
    /// fault seeds).
    pub seed: u64,
    /// Rounds over which departures and arrivals are spread. Departure and
    /// arrival rounds are drawn uniformly from `[0, horizon)`; churn after
    /// the horizon is only flapping.
    pub horizon: usize,
    /// Fraction of clients that permanently depart within the horizon.
    pub departure_fraction: f64,
    /// Fraction of clients that are *late arrivals*: absent from round 0
    /// until their arrival round.
    pub arrival_fraction: f64,
    /// Probability a present client is transiently unreachable for one
    /// global round (it stays a group member; it just misses the round).
    pub flap_prob: f64,
}

impl ChurnPlan {
    /// The clean plan: founding membership never changes.
    pub fn none() -> Self {
        Self {
            seed: 0,
            horizon: 1,
            departure_fraction: 0.0,
            arrival_fraction: 0.0,
            flap_prob: 0.0,
        }
    }

    /// The documented "moderate churn" preset used by the churn tests and
    /// `examples/churn_run.rs`: over a 100-round horizon, 20% of clients
    /// depart permanently, 10% arrive late, and present clients miss 5% of
    /// their rounds to flapping.
    pub fn moderate(seed: u64) -> Self {
        Self {
            seed,
            horizon: 100,
            departure_fraction: 0.2,
            arrival_fraction: 0.1,
            flap_prob: 0.05,
        }
    }

    /// Whether this plan can ever change membership or availability.
    pub fn is_clean(&self) -> bool {
        self.departure_fraction == 0.0 && self.arrival_fraction == 0.0 && self.flap_prob == 0.0
    }

    /// Validates the plan's ranges (used by constructors downstream).
    ///
    /// # Panics
    /// Panics when a fraction is outside `[0, 1]` or the horizon is zero.
    pub fn validate(&self) {
        assert!(self.horizon > 0, "churn horizon must be positive");
        assert!(
            (0.0..=1.0).contains(&self.departure_fraction),
            "departure_fraction must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.arrival_fraction),
            "arrival_fraction must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.flap_prob),
            "flap_prob must be a probability"
        );
    }

    /// Uniform draw in [0, 1) from the (purpose, a, b) stream.
    fn unit(&self, purpose: u64, a: u64, b: u64) -> f64 {
        let h = mix(self.seed.wrapping_mul(0xA076_1D64_78BD_642F)
            ^ purpose
            ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The round at which `client` first becomes a member: 0 for founding
    /// members, a round in `[1, horizon)` for late arrivals.
    pub fn arrival_round(&self, client: usize) -> usize {
        if self.arrival_fraction == 0.0
            || self.unit(P_ARRIVE_SELECT, client as u64, 0) >= self.arrival_fraction
        {
            return 0;
        }
        let u = self.unit(P_ARRIVE_ROUND, client as u64, 0);
        1 + (u * (self.horizon.saturating_sub(1)) as f64) as usize
    }

    /// The round at which `client` permanently departs, if ever. Always
    /// strictly after the client's arrival round, so every member exists
    /// for at least one round.
    pub fn departure_round(&self, client: usize) -> Option<usize> {
        if self.departure_fraction == 0.0
            || self.unit(P_DEPART_SELECT, client as u64, 0) >= self.departure_fraction
        {
            return None;
        }
        let arrive = self.arrival_round(client);
        let u = self.unit(P_DEPART_ROUND, client as u64, 0);
        let span = self.horizon.saturating_sub(arrive + 1).max(1);
        Some(arrive + 1 + (u * span as f64) as usize)
    }

    /// Whether `client` is a member at global round `t` (arrived, not yet
    /// departed). Flapping does not affect membership.
    pub fn present(&self, client: usize, t: usize) -> bool {
        t >= self.arrival_round(client) && self.departure_round(client).is_none_or(|d| t < d)
    }

    /// Whether `client` is transiently unreachable at round `t`. Only
    /// meaningful for present clients.
    pub fn flaps(&self, client: usize, t: usize) -> bool {
        self.flap_prob > 0.0 && self.unit(P_FLAP, client as u64, t as u64) < self.flap_prob
    }

    /// Whether `client` can actually participate in round `t`: present and
    /// not flapping.
    pub fn available(&self, client: usize, t: usize) -> bool {
        self.present(client, t) && !self.flaps(client, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = ChurnPlan::moderate(9);
        let b = ChurnPlan::moderate(9);
        for c in 0..200 {
            assert_eq!(a.arrival_round(c), b.arrival_round(c));
            assert_eq!(a.departure_round(c), b.departure_round(c));
            for t in 0..30 {
                assert_eq!(a.flaps(c, t), b.flaps(c, t));
                assert_eq!(a.present(c, t), b.present(c, t));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChurnPlan::moderate(1);
        let b = ChurnPlan::moderate(2);
        let leavers = |p: &ChurnPlan| {
            (0..300)
                .filter(|&c| p.departure_round(c).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(leavers(&a), leavers(&b));
    }

    #[test]
    fn clean_plan_changes_nothing() {
        let p = ChurnPlan::none();
        assert!(p.is_clean());
        assert!(!ChurnPlan::moderate(0).is_clean());
        for c in 0..50 {
            assert_eq!(p.arrival_round(c), 0);
            assert_eq!(p.departure_round(c), None);
            for t in 0..20 {
                assert!(p.present(c, t));
                assert!(!p.flaps(c, t));
                assert!(p.available(c, t));
            }
        }
    }

    #[test]
    fn fractions_are_respected_statistically() {
        let p = ChurnPlan::moderate(7);
        let n = 2_000;
        let departed = (0..n).filter(|&c| p.departure_round(c).is_some()).count();
        let late = (0..n).filter(|&c| p.arrival_round(c) > 0).count();
        let d = departed as f64 / n as f64;
        let a = late as f64 / n as f64;
        assert!(
            (d - 0.2).abs() < 0.04,
            "departure fraction {d} far from 0.2"
        );
        assert!((a - 0.1).abs() < 0.03, "arrival fraction {a} far from 0.1");
    }

    #[test]
    fn departure_is_strictly_after_arrival() {
        let p = ChurnPlan {
            seed: 3,
            horizon: 40,
            departure_fraction: 0.9,
            arrival_fraction: 0.9,
            flap_prob: 0.0,
        };
        for c in 0..500 {
            let arrive = p.arrival_round(c);
            if let Some(depart) = p.departure_round(c) {
                assert!(
                    depart > arrive,
                    "client {c} departs at {depart} before arriving at {arrive}"
                );
                // Every member is present for at least its arrival round.
                assert!(p.present(c, arrive));
                assert!(!p.present(c, depart));
            }
        }
    }

    #[test]
    fn membership_is_monotone_between_arrival_and_departure() {
        let p = ChurnPlan::moderate(5);
        for c in 0..200 {
            let mut was_present = false;
            let mut ended = false;
            for t in 0..120 {
                let now = p.present(c, t);
                if was_present && !now {
                    ended = true;
                }
                if ended {
                    assert!(!now, "client {c} re-appeared after departing");
                }
                was_present = now;
            }
        }
    }

    #[test]
    fn flap_rate_is_respected_statistically() {
        let p = ChurnPlan::moderate(11);
        let mut flapped = 0usize;
        let trials = 10_000;
        for i in 0..trials {
            if p.flaps(i % 200, i / 200) {
                flapped += 1;
            }
        }
        let rate = flapped as f64 / trials as f64;
        assert!((rate - 0.05).abs() < 0.01, "flap rate {rate} far from 0.05");
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = ChurnPlan::moderate(42);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ChurnPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
