//! Deterministic fault injection for the Group-FEL simulator.
//!
//! Real edge federations are messy: devices straggle, crash mid-round,
//! edge servers go dark, and the occasional update arrives corrupted.
//! This crate models all four failure classes **deterministically** — every
//! decision is a pure hash of `(plan seed, round, group round, actor)`, in
//! the same spirit as the engine's per-client RNG streams — so a faulted
//! run is exactly as reproducible as a clean one: identical seed +
//! identical [`FaultPlan`] ⇒ bit-identical trajectory and fault log.
//!
//! The pieces:
//!
//! * [`FaultPlan`] — *what goes wrong*: straggler population and slowdown,
//!   per-(round, group round, client) crash and corruption probabilities,
//!   edge-server outage windows, edge↔cloud upload failure probability.
//! * [`FaultPolicy`] — *how the engine degrades gracefully*: straggler
//!   deadline factor, per-group survivor quorum, the non-finite update
//!   gate, and the upload retry budget.
//! * [`FaultInjector`] — the stateless decision oracle the engine queries.
//! * [`FaultEvent`] — the structured per-round audit record; every injected
//!   fault that affects the run produces exactly one event, serialized
//!   through `RunHistory` and checkpoints.
//! * [`ChurnPlan`] ([`churn`]) — *who comes and goes*: permanent
//!   departures, late arrivals, and flapping availability, consumed by
//!   `gfl-core`'s self-healing membership layer.
//!
//! Decisions deliberately do **not** consume the engine's RNG streams:
//! enabling faults never perturbs sampling, initialization, or minibatch
//! order, so a faulted run differs from its clean twin only through the
//! faults themselves.

use serde::{Deserialize, Serialize};

pub mod adversary;
pub mod churn;

pub use adversary::{
    summarize_attacks, AdversaryPlan, AttackEvent, AttackKind, AttackSummary, DefenseStage,
};
pub use churn::ChurnPlan;

/// A half-open round range `[from_round, until_round)` during which one
/// edge server is unreachable; every sampled group homed on that edge is
/// lost for those global rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Edge server index (matches `Topology` edge ids).
    pub edge: usize,
    /// First global round of the outage (inclusive).
    pub from_round: usize,
    /// First global round after the outage (exclusive).
    pub until_round: usize,
}

impl OutageWindow {
    /// Whether the edge is down at global round `t`.
    pub fn covers(&self, t: usize) -> bool {
        (self.from_round..self.until_round).contains(&t)
    }
}

/// What goes wrong, and how often. All probabilities are per decision
/// point; see each field for the granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault decision streams (independent of the engine seed,
    /// so the same training run can be replayed under different weather).
    pub seed: u64,
    /// Fraction of clients that are persistent stragglers.
    pub straggler_fraction: f64,
    /// Base compute slowdown of a straggler (≥ 1.0; e.g. 4.0 = 4× slower).
    pub straggler_factor: f64,
    /// Relative jitter on the slowdown per (round, group round): the
    /// effective factor is `factor · (1 ± jitter·u)`, modelling
    /// time-varying contention on the device.
    pub straggler_jitter: f64,
    /// Probability a client crashes during one group round (its update
    /// never reaches the edge aggregator).
    pub crash_prob: f64,
    /// Probability a client's update arrives corrupted (non-finite
    /// parameters) for one group round.
    pub corrupt_prob: f64,
    /// Probability one edge→cloud group-model upload attempt fails and
    /// must be retried.
    pub upload_fail_prob: f64,
    /// Scheduled edge-server outages.
    pub edge_outages: Vec<OutageWindow>,
}

impl FaultPlan {
    /// The clean plan: nothing ever goes wrong.
    pub fn none() -> Self {
        Self {
            seed: 0,
            straggler_fraction: 0.0,
            straggler_factor: 1.0,
            straggler_jitter: 0.0,
            crash_prob: 0.0,
            corrupt_prob: 0.0,
            upload_fail_prob: 0.0,
            edge_outages: Vec::new(),
        }
    }

    /// The documented "moderate weather" preset used by the chaos tests
    /// and `examples/chaos_run.rs`: 20% of clients straggle at ~4×, 5% of
    /// client-rounds crash, 2% of updates arrive corrupted, 10% of
    /// edge→cloud uploads need a retry, and edge 0 is dark for global
    /// rounds 2–3. Under the default [`FaultPolicy`] the engine should
    /// stay within a few accuracy points of the fault-free run.
    pub fn moderate(seed: u64) -> Self {
        Self {
            seed,
            straggler_fraction: 0.2,
            straggler_factor: 4.0,
            straggler_jitter: 0.25,
            crash_prob: 0.05,
            corrupt_prob: 0.02,
            upload_fail_prob: 0.10,
            edge_outages: vec![OutageWindow {
                edge: 0,
                from_round: 2,
                until_round: 4,
            }],
        }
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_clean(&self) -> bool {
        self.straggler_fraction == 0.0
            && self.crash_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.upload_fail_prob == 0.0
            && self.edge_outages.is_empty()
    }

    /// Checks every knob, returning the first violation as a typed error.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (knob, p) in [
            ("straggler_fraction", self.straggler_fraction),
            ("crash_prob", self.crash_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("upload_fail_prob", self.upload_fail_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(FaultConfigError::NotAProbability { knob, value: p });
            }
        }
        if !self.straggler_factor.is_finite() || self.straggler_factor < 1.0 {
            return Err(FaultConfigError::SlowdownBelowOne {
                value: self.straggler_factor,
            });
        }
        if !self.straggler_jitter.is_finite() || !(0.0..=1.0).contains(&self.straggler_jitter) {
            return Err(FaultConfigError::NotAProbability {
                knob: "straggler_jitter",
                value: self.straggler_jitter,
            });
        }
        for w in &self.edge_outages {
            if w.from_round >= w.until_round {
                return Err(FaultConfigError::EmptyOutageWindow {
                    edge: w.edge,
                    from_round: w.from_round,
                    until_round: w.until_round,
                });
            }
        }
        Ok(())
    }
}

/// Why a [`FaultPlan`] or [`FaultPolicy`] knob was rejected. NaN, negative,
/// and out-of-range values fail *here* — at CLI parse or construction —
/// instead of as asserts (or silent nonsense) deep inside a run.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    /// A knob that must lie in [0, 1] (probabilities, fractions) did not.
    NotAProbability { knob: &'static str, value: f64 },
    /// `straggler_factor` below 1.0: slowdowns cannot speed clients up.
    SlowdownBelowOne { value: f64 },
    /// `deadline_factor` must be ≥ 0 and not NaN (`0` disables cutting;
    /// `+inf` means "wait forever", the degenerate sync limit).
    BadDeadlineFactor { value: f64 },
    /// `quorum_fraction` must lie in [0, 1].
    BadQuorumFraction { value: f64 },
    /// `backoff_base_s` must be finite and ≥ 0.
    BadBackoffBase { value: f64 },
    /// `max_backoff_s` must be > 0 (it caps each wait) and not NaN.
    BadMaxBackoff { value: f64 },
    /// An outage window with `from_round >= until_round` covers nothing.
    EmptyOutageWindow {
        edge: usize,
        from_round: usize,
        until_round: usize,
    },
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfigError::NotAProbability { knob, value } => {
                write!(f, "{knob} must be in [0, 1], got {value}")
            }
            FaultConfigError::SlowdownBelowOne { value } => {
                write!(
                    f,
                    "straggler_factor must be >= 1.0 (slowdowns cannot speed up), got {value}"
                )
            }
            FaultConfigError::BadDeadlineFactor { value } => {
                write!(
                    f,
                    "deadline_factor must be >= 0 and not NaN \
                     (0 disables cutting, +inf waits forever), got {value}"
                )
            }
            FaultConfigError::BadQuorumFraction { value } => {
                write!(f, "quorum_fraction must be in [0, 1], got {value}")
            }
            FaultConfigError::BadBackoffBase { value } => {
                write!(f, "backoff_base_s must be finite and >= 0, got {value}")
            }
            FaultConfigError::BadMaxBackoff { value } => {
                write!(f, "max_backoff_s must be > 0 and not NaN, got {value}")
            }
            FaultConfigError::EmptyOutageWindow {
                edge,
                from_round,
                until_round,
            } => {
                write!(
                    f,
                    "outage window for edge {edge} covers no rounds \
                     ([{from_round}, {until_round}) is empty)"
                )
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// How the engine responds to injected faults (graceful degradation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Straggler deadline: a client is cut from a group round when its
    /// estimated wall-clock (compute × slowdown + link transfer) exceeds
    /// `deadline_factor ×` the slowest *nominal* client of the group.
    /// `0.0` disables cutting (stragglers are simply waited for).
    pub deadline_factor: f64,
    /// Minimum fraction of the group's sample-weighted uploads (over all
    /// `K` group rounds) required for the group model to enter global
    /// aggregation; below it the group is skipped and the remaining
    /// weights renormalize. `0.0` disables skipping.
    pub quorum_fraction: f64,
    /// Reject non-finite (NaN/±Inf) updates at both aggregation levels
    /// instead of letting them poison the model.
    pub reject_non_finite: bool,
    /// Edge→cloud upload retries before the group model is declared lost.
    pub max_retries: u32,
    /// Base of the exponential backoff between upload retries, seconds.
    pub backoff_base_s: f64,
    /// Cap on each individual backoff wait, seconds: the i-th wait is
    /// `min(backoff_base_s · 2^i, max_backoff_s)`, so pathological fault
    /// rates cannot charge unbounded emulated time.
    pub max_backoff_s: f64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self {
            deadline_factor: 2.5,
            quorum_fraction: 0.25,
            reject_non_finite: true,
            max_retries: 3,
            backoff_base_s: 0.5,
            max_backoff_s: 60.0,
        }
    }
}

impl FaultPolicy {
    /// Checks every knob, returning the first violation as a typed error.
    ///
    /// `deadline_factor` may be `+inf` (wait forever — the degenerate
    /// sync limit) but not NaN or negative; `quorum_fraction` must be a
    /// fraction; `backoff_base_s` finite and non-negative; `max_backoff_s`
    /// positive (it would otherwise zero out every wait).
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if self.deadline_factor.is_nan() || self.deadline_factor < 0.0 {
            return Err(FaultConfigError::BadDeadlineFactor {
                value: self.deadline_factor,
            });
        }
        if !self.quorum_fraction.is_finite() || !(0.0..=1.0).contains(&self.quorum_fraction) {
            return Err(FaultConfigError::BadQuorumFraction {
                value: self.quorum_fraction,
            });
        }
        if !self.backoff_base_s.is_finite() || self.backoff_base_s < 0.0 {
            return Err(FaultConfigError::BadBackoffBase {
                value: self.backoff_base_s,
            });
        }
        if self.max_backoff_s.is_nan() || self.max_backoff_s <= 0.0 {
            return Err(FaultConfigError::BadMaxBackoff {
                value: self.max_backoff_s,
            });
        }
        Ok(())
    }
}

// Purpose tags keep the decision streams independent of each other.
const P_STRAGGLER_ID: u64 = 0x5354_5241_4747_4C45; // "STRAGGLE"
const P_STRAGGLER_JITTER: u64 = 0x4A49_5454_4552_0001;
const P_CRASH: u64 = 0x4352_4153_4800_0001;
const P_CORRUPT: u64 = 0x434F_5252_5550_5401;
const P_UPLOAD: u64 = 0x5550_4C4F_4144_0001;

/// SplitMix64 finalizer: a high-quality 64-bit mix.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The stateless decision oracle: every method is a pure function of the
/// plan and its arguments, so callers may query in any order, from any
/// thread, and still observe identical faults.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Validates the plan and builds the oracle; bad knobs come back as
    /// typed [`FaultConfigError`]s instead of asserts.
    pub fn try_new(plan: FaultPlan) -> Result<Self, FaultConfigError> {
        plan.validate()?;
        Ok(Self { plan })
    }

    /// Panicking constructor for call sites with known-good plans.
    pub fn new(plan: FaultPlan) -> Self {
        Self::try_new(plan).expect("invalid FaultPlan")
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Uniform draw in [0, 1) from the (purpose, a, b, c) stream.
    fn unit(&self, purpose: u64, a: u64, b: u64, c: u64) -> f64 {
        let h = mix(self.plan.seed.wrapping_mul(0xA076_1D64_78BD_642F)
            ^ purpose
            ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ c.wrapping_mul(0x2545_F491_4F6C_DD1D));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether `client` belongs to the persistent straggler population.
    pub fn is_straggler(&self, client: usize) -> bool {
        self.plan.straggler_fraction > 0.0
            && self.unit(P_STRAGGLER_ID, client as u64, 0, 0) < self.plan.straggler_fraction
    }

    /// Effective compute slowdown of `client` in group round `(t, k)`:
    /// 1.0 for non-stragglers, otherwise the base factor with ±jitter
    /// (never below 1.0).
    pub fn slowdown(&self, t: usize, k: usize, client: usize) -> f64 {
        if !self.is_straggler(client) {
            return 1.0;
        }
        let u = self.unit(P_STRAGGLER_JITTER, t as u64, k as u64, client as u64);
        let jitter = self.plan.straggler_jitter * (2.0 * u - 1.0);
        (self.plan.straggler_factor * (1.0 + jitter)).max(1.0)
    }

    /// Whether `client` crashes during group round `(t, k)`.
    pub fn crashes(&self, t: usize, k: usize, client: usize) -> bool {
        self.plan.crash_prob > 0.0
            && self.unit(P_CRASH, t as u64, k as u64, client as u64) < self.plan.crash_prob
    }

    /// Whether `client`'s update for group round `(t, k)` arrives
    /// corrupted (non-finite).
    pub fn corrupts(&self, t: usize, k: usize, client: usize) -> bool {
        self.plan.corrupt_prob > 0.0
            && self.unit(P_CORRUPT, t as u64, k as u64, client as u64) < self.plan.corrupt_prob
    }

    /// Whether edge server `edge` is dark at global round `t`.
    pub fn edge_down(&self, edge: usize, t: usize) -> bool {
        self.plan
            .edge_outages
            .iter()
            .any(|w| w.edge == edge && w.covers(t))
    }

    /// Number of *failed* edge→cloud upload attempts for group `g`'s model
    /// at round `t`, capped at `max_retries + 1` (the initial attempt plus
    /// every retry failing — the upload is then lost).
    pub fn upload_failures(&self, t: usize, group: usize, max_retries: u32) -> u32 {
        if self.plan.upload_fail_prob == 0.0 {
            return 0;
        }
        let mut failures = 0u32;
        while failures <= max_retries
            && self.unit(P_UPLOAD, t as u64, group as u64, u64::from(failures))
                < self.plan.upload_fail_prob
        {
            failures += 1;
        }
        failures
    }
}

/// One injected fault that affected the run. `round` is the global round
/// `t`; `group_round` (where present) is the group round `k` within it;
/// `group` is the global group index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A client crashed mid-group-round; its update never arrived.
    ClientCrash {
        round: usize,
        group_round: usize,
        group: usize,
        client: usize,
    },
    /// A straggler exceeded the round deadline and was cut.
    StragglerCut {
        round: usize,
        group_round: usize,
        group: usize,
        client: usize,
        slowdown: f64,
    },
    /// A non-finite client update was rejected by the gate.
    CorruptRejected {
        round: usize,
        group_round: usize,
        group: usize,
        client: usize,
    },
    /// A sampled group was lost to an edge-server outage.
    EdgeOutage {
        round: usize,
        edge: usize,
        group: usize,
    },
    /// A group fell below the survivor quorum and was skipped; the
    /// remaining groups' aggregation weights renormalized.
    GroupSkipped {
        round: usize,
        group: usize,
        survivors: usize,
        required: usize,
    },
    /// A whole group model arrived non-finite and was rejected.
    CorruptGroupRejected { round: usize, group: usize },
    /// An edge→cloud upload needed retries; the extra wall-clock and
    /// bytes charged by the backoff accounting.
    UploadRetry {
        round: usize,
        group: usize,
        attempts: u32,
        extra_seconds: f64,
        extra_bytes: u64,
    },
    /// Every retry failed; the group's model never reached the cloud.
    UploadLost { round: usize, group: usize },
    /// No surviving update reached global aggregation: `x_{t+1} = x_t`.
    RoundHeld { round: usize },
}

impl FaultEvent {
    /// The global round the event belongs to.
    pub fn round(&self) -> usize {
        match *self {
            FaultEvent::ClientCrash { round, .. }
            | FaultEvent::StragglerCut { round, .. }
            | FaultEvent::CorruptRejected { round, .. }
            | FaultEvent::EdgeOutage { round, .. }
            | FaultEvent::GroupSkipped { round, .. }
            | FaultEvent::CorruptGroupRejected { round, .. }
            | FaultEvent::UploadRetry { round, .. }
            | FaultEvent::UploadLost { round, .. }
            | FaultEvent::RoundHeld { round } => round,
        }
    }
}

/// Event counts by kind, for quick reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    pub crashes: usize,
    pub stragglers_cut: usize,
    pub corrupt_rejected: usize,
    pub edge_outages: usize,
    pub groups_skipped: usize,
    pub corrupt_groups_rejected: usize,
    pub upload_retries: usize,
    pub uploads_lost: usize,
    pub rounds_held: usize,
}

impl FaultSummary {
    /// Total number of events.
    pub fn total(&self) -> usize {
        self.crashes
            + self.stragglers_cut
            + self.corrupt_rejected
            + self.edge_outages
            + self.groups_skipped
            + self.corrupt_groups_rejected
            + self.upload_retries
            + self.uploads_lost
            + self.rounds_held
    }
}

impl std::fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} crashes, {} stragglers cut, {} corrupt updates rejected, \
             {} edge outages, {} groups skipped, {} corrupt groups rejected, \
             {} upload retries, {} uploads lost, {} rounds held",
            self.crashes,
            self.stragglers_cut,
            self.corrupt_rejected,
            self.edge_outages,
            self.groups_skipped,
            self.corrupt_groups_rejected,
            self.upload_retries,
            self.uploads_lost,
            self.rounds_held
        )
    }
}

/// Tallies a fault log into per-kind counts.
pub fn summarize(events: &[FaultEvent]) -> FaultSummary {
    let mut s = FaultSummary::default();
    for e in events {
        match e {
            FaultEvent::ClientCrash { .. } => s.crashes += 1,
            FaultEvent::StragglerCut { .. } => s.stragglers_cut += 1,
            FaultEvent::CorruptRejected { .. } => s.corrupt_rejected += 1,
            FaultEvent::EdgeOutage { .. } => s.edge_outages += 1,
            FaultEvent::GroupSkipped { .. } => s.groups_skipped += 1,
            FaultEvent::CorruptGroupRejected { .. } => s.corrupt_groups_rejected += 1,
            FaultEvent::UploadRetry { .. } => s.upload_retries += 1,
            FaultEvent::UploadLost { .. } => s.uploads_lost += 1,
            FaultEvent::RoundHeld { .. } => s.rounds_held += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultInjector::new(FaultPlan::moderate(9));
        let b = FaultInjector::new(FaultPlan::moderate(9));
        for t in 0..4 {
            for k in 0..3 {
                for c in 0..20 {
                    assert_eq!(a.crashes(t, k, c), b.crashes(t, k, c));
                    assert_eq!(a.corrupts(t, k, c), b.corrupts(t, k, c));
                    assert_eq!(a.slowdown(t, k, c), b.slowdown(t, k, c));
                }
            }
        }
        for t in 0..6 {
            for g in 0..8 {
                assert_eq!(a.upload_failures(t, g, 3), b.upload_failures(t, g, 3));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(FaultPlan::moderate(1));
        let b = FaultInjector::new(FaultPlan::moderate(2));
        let picks = |inj: &FaultInjector| {
            (0..200)
                .filter(|&c| inj.is_straggler(c))
                .collect::<Vec<_>>()
        };
        assert_ne!(picks(&a), picks(&b));
    }

    #[test]
    fn straggler_fraction_is_respected_statistically() {
        let inj = FaultInjector::new(FaultPlan::moderate(7));
        let n = 2_000;
        let slow = (0..n).filter(|&c| inj.is_straggler(c)).count();
        let frac = slow as f64 / n as f64;
        assert!(
            (frac - 0.2).abs() < 0.04,
            "straggler fraction {frac} far from 0.2"
        );
    }

    #[test]
    fn slowdown_is_one_for_non_stragglers_and_jittered_for_stragglers() {
        let inj = FaultInjector::new(FaultPlan::moderate(3));
        for c in 0..300 {
            let s = inj.slowdown(0, 0, c);
            if inj.is_straggler(c) {
                assert!((3.0..=5.0).contains(&s), "jittered 4.0±25% but got {s}");
                // Time-varying: some (t, k) must differ for the same client.
                let other = inj.slowdown(1, 1, c);
                if s != other {
                    return;
                }
            } else {
                assert_eq!(s, 1.0);
            }
        }
        panic!("no straggler showed time-varying slowdown");
    }

    #[test]
    fn clean_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::none());
        assert!(FaultPlan::none().is_clean());
        assert!(!FaultPlan::moderate(0).is_clean());
        for t in 0..5 {
            for k in 0..3 {
                for c in 0..30 {
                    assert!(!inj.crashes(t, k, c));
                    assert!(!inj.corrupts(t, k, c));
                    assert_eq!(inj.slowdown(t, k, c), 1.0);
                }
            }
            assert!(!inj.edge_down(0, t));
            assert_eq!(inj.upload_failures(t, 0, 3), 0);
        }
    }

    #[test]
    fn outage_windows_are_half_open() {
        let mut plan = FaultPlan::none();
        plan.edge_outages.push(OutageWindow {
            edge: 1,
            from_round: 3,
            until_round: 5,
        });
        let inj = FaultInjector::new(plan);
        assert!(!inj.edge_down(1, 2));
        assert!(inj.edge_down(1, 3));
        assert!(inj.edge_down(1, 4));
        assert!(!inj.edge_down(1, 5));
        assert!(!inj.edge_down(0, 3), "other edges unaffected");
    }

    #[test]
    fn crash_probability_is_respected_statistically() {
        let inj = FaultInjector::new(FaultPlan::moderate(11));
        let mut crashes = 0usize;
        let trials = 10_000;
        for i in 0..trials {
            if inj.crashes(i % 50, i % 5, i) {
                crashes += 1;
            }
        }
        let rate = crashes as f64 / trials as f64;
        assert!(
            (rate - 0.05).abs() < 0.01,
            "crash rate {rate} far from 0.05"
        );
    }

    #[test]
    fn upload_failures_are_capped_and_mostly_zero() {
        let inj = FaultInjector::new(FaultPlan::moderate(5));
        let mut histogram = [0usize; 6];
        for t in 0..100 {
            for g in 0..20 {
                let f = inj.upload_failures(t, g, 3) as usize;
                assert!(f <= 4, "failures must cap at max_retries + 1");
                histogram[f] += 1;
            }
        }
        assert!(histogram[0] > 1_500, "most uploads succeed first try");
        assert!(histogram[1] > 0, "some uploads need a retry");
    }

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            FaultEvent::ClientCrash {
                round: 1,
                group_round: 0,
                group: 2,
                client: 7,
            },
            FaultEvent::StragglerCut {
                round: 1,
                group_round: 1,
                group: 2,
                client: 3,
                slowdown: 4.25,
            },
            FaultEvent::EdgeOutage {
                round: 2,
                edge: 0,
                group: 4,
            },
            FaultEvent::GroupSkipped {
                round: 2,
                group: 4,
                survivors: 10,
                required: 40,
            },
            FaultEvent::UploadRetry {
                round: 3,
                group: 1,
                attempts: 2,
                extra_seconds: 1.25,
                extra_bytes: 80_000,
            },
            FaultEvent::RoundHeld { round: 4 },
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<FaultEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
        assert_eq!(back[0].round(), 1);
        assert_eq!(back[5].round(), 4);
    }

    #[test]
    fn summary_counts_every_kind() {
        let events = vec![
            FaultEvent::ClientCrash {
                round: 0,
                group_round: 0,
                group: 0,
                client: 0,
            },
            FaultEvent::ClientCrash {
                round: 1,
                group_round: 0,
                group: 0,
                client: 1,
            },
            FaultEvent::CorruptGroupRejected { round: 1, group: 3 },
            FaultEvent::UploadLost { round: 2, group: 3 },
            FaultEvent::RoundHeld { round: 2 },
        ];
        let s = summarize(&events);
        assert_eq!(s.crashes, 2);
        assert_eq!(s.corrupt_groups_rejected, 1);
        assert_eq!(s.uploads_lost, 1);
        assert_eq!(s.rounds_held, 1);
        assert_eq!(s.total(), 5);
        let text = s.to_string();
        assert!(text.contains("2 crashes") && text.contains("1 rounds held"));
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::moderate(42);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        let policy = FaultPolicy::default();
        let back: FaultPolicy =
            serde_json::from_str(&serde_json::to_string(&policy).unwrap()).unwrap();
        assert_eq!(back, policy);
    }

    #[test]
    fn policy_validation_rejects_bad_knobs() {
        let good = FaultPolicy::default();
        good.validate().unwrap();
        // +inf deadline is legal: it is the degenerate "wait forever" limit.
        FaultPolicy {
            deadline_factor: f64::INFINITY,
            ..good
        }
        .validate()
        .unwrap();
        let cases = [
            FaultPolicy {
                deadline_factor: f64::NAN,
                ..good
            },
            FaultPolicy {
                deadline_factor: -1.0,
                ..good
            },
            FaultPolicy {
                quorum_fraction: 1.5,
                ..good
            },
            FaultPolicy {
                quorum_fraction: f64::NAN,
                ..good
            },
            FaultPolicy {
                backoff_base_s: -0.5,
                ..good
            },
            FaultPolicy {
                backoff_base_s: f64::INFINITY,
                ..good
            },
            FaultPolicy {
                max_backoff_s: 0.0,
                ..good
            },
            FaultPolicy {
                max_backoff_s: f64::NAN,
                ..good
            },
        ];
        for bad in cases {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn plan_validation_is_typed_not_an_assert() {
        FaultPlan::moderate(1).validate().unwrap();
        let bad = FaultPlan {
            crash_prob: f64::NAN,
            ..FaultPlan::none()
        };
        assert!(matches!(
            FaultInjector::try_new(bad),
            Err(FaultConfigError::NotAProbability {
                knob: "crash_prob",
                ..
            })
        ));
        let slow = FaultPlan {
            straggler_factor: 0.5,
            ..FaultPlan::none()
        };
        assert!(matches!(
            slow.validate(),
            Err(FaultConfigError::SlowdownBelowOne { .. })
        ));
        let window = FaultPlan {
            edge_outages: vec![OutageWindow {
                edge: 0,
                from_round: 5,
                until_round: 5,
            }],
            ..FaultPlan::none()
        };
        assert!(matches!(
            window.validate(),
            Err(FaultConfigError::EmptyOutageWindow { .. })
        ));
        // Errors render human-readably.
        let msg = FaultConfigError::BadQuorumFraction { value: 2.0 }.to_string();
        assert!(msg.contains("quorum_fraction"), "{msg}");
    }
}
