//! Extension — comparing the group aggregator's defense options under a
//! coordinated model-replacement attack: FLAME-style filtering (the
//! paper's backdoor-detection op), coordinate median, trimmed mean, and
//! Multi-Krum.
//!
//! Reports the relative aggregation error vs the honest mean as the number
//! of attackers grows — the table a deployment would consult to pick its
//! group operation.

use gfl_defense::robust::{coordinate_median, multi_krum, trimmed_mean};
use gfl_defense::{filter_updates, scale_attack, sign_flip_attack, DefenseConfig};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_tensor::{init, ops};

fn relative_error(agg: &[f32], truth: &[f32]) -> f64 {
    let mut d = agg.to_vec();
    ops::sub_assign(truth, &mut d);
    f64::from(ops::norm(&d) / ops::norm(truth).max(1e-9))
}

fn main() {
    let dim = 2048;
    let group = 16usize;
    let header = [
        "attackers",
        "plain_mean",
        "flame_filter",
        "coord_median",
        "trimmed_mean",
        "multi_krum",
    ];
    let mut rows = Vec::new();

    for attackers in [0usize, 1, 2, 4, 6] {
        let honest = group - attackers;
        let mut rng = init::rng(100 + attackers as u64);
        let mut base = vec![0.0f32; dim];
        init::fill_normal(&mut rng, 1.0, &mut base);

        let updates: Vec<Vec<f32>> = (0..group)
            .map(|i| {
                let mut u = base.clone();
                let mut noise = vec![0.0f32; dim];
                init::fill_normal(&mut rng, 0.15, &mut noise);
                ops::add_assign(&noise, &mut u);
                if i >= honest {
                    sign_flip_attack(&mut u);
                    scale_attack(&mut u, 12.0);
                }
                u
            })
            .collect();

        let mut truth = vec![0.0f32; dim];
        for u in &updates[..honest] {
            ops::add_assign(u, &mut truth);
        }
        ops::scale(1.0 / honest.max(1) as f32, &mut truth);

        // Plain mean (no defense).
        let mut mean = vec![0.0f32; dim];
        for u in &updates {
            ops::add_assign(u, &mut mean);
        }
        ops::scale(1.0 / group as f32, &mut mean);

        // FLAME-style filter + clip.
        let mut filtered = updates.clone();
        let report = filter_updates(&mut filtered, &DefenseConfig::default());
        let mut flame = vec![0.0f32; dim];
        for &i in &report.accepted {
            ops::add_assign(&filtered[i], &mut flame);
        }
        ops::scale(1.0 / report.accepted.len().max(1) as f32, &mut flame);

        let median = coordinate_median(&updates);
        let trimmed = trimmed_mean(&updates, attackers.min((group - 1) / 2));
        let krum = multi_krum(&updates, attackers, honest / 2);

        rows.push(vec![
            attackers.to_string(),
            f(relative_error(&mean, &truth), 3),
            f(relative_error(&flame, &truth), 3),
            f(relative_error(&median, &truth), 3),
            f(relative_error(&trimmed, &truth), 3),
            f(relative_error(&krum, &truth), 3),
        ]);
    }

    print_series(
        "Robust aggregation under model-replacement attack (relative error vs honest mean)",
        &header,
        &rows,
    );
    let path = write_csv("robust_defense", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Every defense must beat the plain mean once attackers appear.
    for row in rows.iter().skip(1) {
        let plain: f64 = row[1].parse().unwrap();
        for cell in &row[2..] {
            let err: f64 = cell.parse().unwrap();
            assert!(
                err < plain,
                "attackers={}: defense error {err} vs plain {plain}",
                row[0]
            );
        }
    }
    println!("shape check passed: every defense beats the undefended mean");
}
