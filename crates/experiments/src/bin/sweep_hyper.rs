//! Sensitivity sweep over the hierarchy's depth knobs: group rounds `K`,
//! local epochs `E`, and sampled groups `S` (Algorithm 1's inputs).
//!
//! The convergence theorem couples these (λ-conditions, Eq. 13–18: η must
//! shrink as K·E grows; the sampling term shrinks with |S_t|). The sweep
//! makes the practical trade-offs visible: more local work per round costs
//! more per round but needs fewer rounds; sampling more groups costs more
//! but lowers sampling variance.

use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};

fn main() {
    let mut scale = ExpScale::from_env();
    scale.global_rounds = scale.global_rounds.min(40);
    let world = World::vision(0.1, 42, scale);
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 5,
            max_cov: 0.5,
        },
        &world.topology,
        &world.partition.label_matrix,
        world.seed,
    );

    let header = ["k", "e", "s", "rounds_run", "final_cost", "accuracy"];
    let mut rows = Vec::new();
    let mut by_config = Vec::new();

    let base = world.config(AggregationWeighting::Standard);
    for (k, e, s) in [
        (1usize, 1usize, 4usize),
        (5, 2, 4), // the paper's K=5, E=2
        (10, 2, 4),
        (5, 4, 4),
        (5, 2, 2),
        (5, 2, 8),
    ] {
        let mut cfg = base.clone();
        cfg.group_rounds = k;
        cfg.local_rounds = e;
        cfg.sampled_groups = s;
        let trainer = world.trainer(cfg);
        let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        let last = history.records().last().unwrap();
        let acc = history.accuracy_within_cost(scale.budget);
        println!(
            "K={k:2} E={e} S={s}: {:3} rounds, cost {:9.0}, accuracy {acc:.4}",
            last.round + 1,
            last.cost
        );
        rows.push(vec![
            k.to_string(),
            e.to_string(),
            s.to_string(),
            (last.round + 1).to_string(),
            f(last.cost, 0),
            f(f64::from(acc), 4),
        ]);
        by_config.push(((k, e, s), acc, last.cost / (last.round + 1) as f64));
    }

    print_series(
        "Sensitivity: K (group rounds) × E (epochs) × S (groups)",
        &header,
        &rows,
    );
    let path = write_csv("sweep_hyper", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Structural checks: per-round cost grows monotonically with each of
    // K, E, and S.
    let cost_of = |k: usize, e: usize, s: usize| {
        by_config
            .iter()
            .find(|((ck, ce, cs), ..)| (*ck, *ce, *cs) == (k, e, s))
            .map(|&(_, _, c)| c)
            .unwrap()
    };
    assert!(cost_of(10, 2, 4) > cost_of(5, 2, 4));
    assert!(cost_of(5, 4, 4) > cost_of(5, 2, 4));
    assert!(cost_of(5, 2, 8) > cost_of(5, 2, 4));
    // And the degenerate K=E=1 configuration must not dominate the paper's
    // setting in accuracy-per-budget (local work is what HFL amortizes).
    let acc_of = |k: usize, e: usize, s: usize| {
        by_config
            .iter()
            .find(|((ck, ce, cs), ..)| (*ck, *ce, *cs) == (k, e, s))
            .map(|&(_, a, _)| a)
            .unwrap()
    };
    println!(
        "\nK=E=1 accuracy {:.4} vs paper K=5,E=2 {:.4}",
        acc_of(1, 1, 4),
        acc_of(5, 2, 4)
    );
    println!("structural checks passed: per-round cost monotone in K, E, S");
}
