//! Extension — the paper-faithful 5-layer 1-D CNN trained through the full
//! Group-FEL hierarchy on the speech task, next to the dense stand-in.
//!
//! §7.1 uses "a 5-layer convolutional neural network (CNN) that is easy to
//! train on RPi" for Speech Commands; this binary shows the reproduction
//! supports that architecture class end to end (flat-parameter aggregation,
//! CoV grouping, ESRCoV sampling, cost accounting) — not just MLPs.

use gfl_core::engine::{form_groups_per_edge, Trainer};
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};
use gfl_nn::Network;

fn main() {
    let mut scale = ExpScale::from_env();
    scale.global_rounds = scale.global_rounds.min(30);
    scale.budget = f64::INFINITY; // compare per-round learning, not budget
    let world = World::speech(0.1, 42, scale);
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 8,
            max_cov: 1.0,
        },
        &world.topology,
        &world.partition.label_matrix,
        world.seed,
    );

    let header = ["model", "round", "accuracy"];
    let mut rows = Vec::new();
    let mut finals = Vec::new();
    for (name, model) in [
        ("dense", gfl_nn::zoo::speech_model()),
        ("cnn5", gfl_nn::zoo::speech_cnn()),
    ] {
        let mut cfg = world.config(AggregationWeighting::Standard);
        cfg.cost_budget = None;
        let trainer = Trainer::new(
            cfg,
            model.clone(),
            world.train.clone(),
            world.partition.clone(),
            world.test.clone(),
        );
        let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        for r in history.records() {
            rows.push(vec![
                name.to_string(),
                r.round.to_string(),
                f(f64::from(r.accuracy), 4),
            ]);
        }
        let best = history.best_accuracy();
        let params = match &model {
            Network::Mlp(m) => m.param_len(),
            Network::Cnn(c) => c.param_len(),
        };
        println!("{name:6} ({params:6} params) best accuracy {best:.4}");
        finals.push((name, best));
    }

    print_series(
        "Extension: 5-layer CNN vs dense model through Group-FEL (speech task)",
        &header,
        &rows,
    );
    let path = write_csv("cnn_speech", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Both architectures must actually learn through the hierarchy. The
    // CNN's weight-sharing prior is mismatched to the synthetic features
    // (no spatial structure), so it learns more slowly than the dense net;
    // the bar is clearing 2x chance within the short horizon.
    for (name, best) in &finals {
        assert!(
            *best > 2.0 / 35.0,
            "{name} failed to learn: best accuracy {best}"
        );
    }
    println!("both architectures train end to end through the hierarchy");
}
