//! Extension — wall-clock and network-traffic view of the hierarchy (§2.3's
//! alternative measurement axes).
//!
//! Prints, for the vision configuration:
//! 1. per-round WAN bytes of hierarchical vs flat (cloud-only) FL — the
//!    scalability argument of §1;
//! 2. per-round wall-clock under device heterogeneity: small CoV groups
//!    finish faster because the synchronous barrier waits for fewer
//!    stragglers per group.

use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::{CovGrouping, GroupingAlgorithm, RandomGrouping};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};
use gfl_sim::{CommModel, CostModel, StragglerModel, Task};

fn main() {
    let scale = ExpScale::from_env();
    let world = World::vision(0.1, 42, scale);
    let params = world.model.param_len();
    let comm = CommModel::edge_default();
    let cost = CostModel::for_task(Task::Vision);
    let stragglers = StragglerModel::heavy_tail(world.partition.num_clients(), 0.1, 4.0, 7);

    // 1. WAN traffic: hierarchical vs flat.
    let sampled_groups = scale.sampled_groups;
    let avg_group = 6usize;
    let hier_wan = sampled_groups as u64 * comm.group_cloud_bytes(params);
    let flat_wan = (sampled_groups * avg_group) as u64 * 2 * CommModel::model_bytes(params);
    println!(
        "WAN bytes per global round: hierarchical {} KB vs flat {} KB ({}x saving)",
        hier_wan / 1024,
        flat_wan / 1024,
        flat_wan / hier_wan.max(1)
    );
    assert!(hier_wan < flat_wan);

    // 2. Wall-clock per global round for different groupings.
    let header = ["grouping", "groups", "wall_clock_s"];
    let mut rows = Vec::new();
    let algos: Vec<(&str, Box<dyn GroupingAlgorithm>)> = vec![
        ("RG6", Box::new(RandomGrouping { group_size: 6 })),
        ("RG15", Box::new(RandomGrouping { group_size: 15 })),
        (
            "CoVG",
            Box::new(CovGrouping {
                min_group_size: 5,
                max_cov: 0.5,
            }),
        ),
    ];
    let mut times = Vec::new();
    for (name, algo) in algos {
        let groups = form_groups_per_edge(
            algo.as_ref(),
            &world.topology,
            &world.partition.label_matrix,
            world.seed,
        );
        // Take the first `sampled_groups` groups as the round's sample.
        let sample: Vec<_> = groups.iter().take(sampled_groups).collect();
        let compute: Vec<Vec<f64>> = sample
            .iter()
            .map(|g| {
                g.iter()
                    .map(|&c| {
                        let n_i = world.partition.indices[c].len();
                        2.0 * cost.training(n_i) * stragglers.slowdown(c)
                    })
                    .collect()
            })
            .collect();
        let t = comm.global_round_wall_clock(&compute, params, 5, 1.0);
        println!(
            "{name:5} {:3} groups  wall-clock {t:9.1}s / round",
            groups.len()
        );
        rows.push(vec![name.to_string(), groups.len().to_string(), f(t, 1)]);
        times.push((name, t));
    }

    print_series(
        "Wall-clock per global round under stragglers",
        &header,
        &rows,
    );
    let path = write_csv("wallclock", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Bigger groups wait on more stragglers: RG15 slower than RG6.
    let t = |n: &str| times.iter().find(|(m, _)| *m == n).unwrap().1;
    assert!(
        t("RG15") > t("RG6"),
        "larger groups must lose more wall-clock to stragglers"
    );
    println!("shape check passed: group size amplifies straggler penalties");
}
