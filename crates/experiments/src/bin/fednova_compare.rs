//! Extension — FedNova-style normalized averaging (the paper's reference
//! [15]) under extreme data-volume disparity.
//!
//! The paper's setup gives clients 20–200 samples (10× disparity), which
//! makes local step counts differ by 10× and skews plain FedAvg toward
//! heavy clients. This binary compares FedAvg vs FedNova on federations
//! with widening size disparity and reports accuracy plus the per-client
//! update-norm dispersion FedNova is designed to shrink.

use gfl_baselines::FedNova;
use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_core::theory;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::ExpScale;
use gfl_sim::Topology;

fn main() {
    let scale = ExpScale::from_env();
    let header = ["disparity", "gamma", "fedavg_acc", "fednova_acc"];
    let mut rows = Vec::new();

    for (min_size, max_size) in [(60usize, 80usize), (20, 200), (10, 300)] {
        let data = SyntheticSpec::vision_like().generate(scale.dataset, 42);
        let (train, test) = data.split_holdout(6);
        let partition = ClientPartition::dirichlet(
            &train,
            &PartitionSpec {
                num_clients: scale.clients,
                alpha: 0.1,
                min_size,
                max_size,
                seed: 42,
            },
        );
        let topology = Topology::even_split(scale.edges, partition.sizes());
        let groups = form_groups_per_edge(
            &CovGrouping {
                min_group_size: 5,
                max_cov: 0.5,
            },
            &topology,
            &partition.label_matrix,
            42,
        );
        let gamma = theory::gamma(&partition.sizes());

        let run = |nova: bool| {
            let world = gfl_experiments::world::World {
                train: train.clone(),
                test: test.clone(),
                partition: partition.clone(),
                topology: topology.clone(),
                model: gfl_nn::zoo::vision_model(),
                task: gfl_sim::Task::Vision,
                scale,
                seed: 42,
            };
            let mut cfg = world.config(AggregationWeighting::Standard);
            cfg.global_rounds = cfg.global_rounds.min(40);
            let trainer = world.trainer(cfg.clone());
            if nova {
                let strategy =
                    FedNova::from_sizes(&partition.sizes(), cfg.local_rounds, cfg.batch_size);
                trainer.run(&groups, &strategy, SamplingStrategy::ESRCov)
            } else {
                trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov)
            }
        };
        let avg = run(false).accuracy_within_cost(scale.budget);
        let nova = run(true).accuracy_within_cost(scale.budget);
        println!(
            "sizes [{min_size},{max_size}] gamma {gamma:.3}: FedAvg {avg:.4} vs FedNova {nova:.4}"
        );
        rows.push(vec![
            format!("{min_size}-{max_size}"),
            f(gamma, 3),
            f(f64::from(avg), 4),
            f(f64::from(nova), 4),
        ]);
    }

    print_series(
        "Extension: FedNova normalized averaging vs FedAvg under size disparity",
        &header,
        &rows,
    );
    let path = write_csv("fednova_compare", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // FedNova must stay competitive everywhere (its win condition —
    // severe objective inconsistency — grows with disparity/γ).
    for row in &rows {
        let avg: f64 = row[2].parse().unwrap();
        let nova: f64 = row[3].parse().unwrap();
        assert!(
            nova > avg - 0.03,
            "disparity {}: FedNova {nova} fell behind FedAvg {avg}",
            row[0]
        );
    }
    println!("shape check passed: normalized averaging is competitive at every disparity");
}
