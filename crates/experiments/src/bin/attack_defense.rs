//! Extension — the closed attack↔defense loop measured end to end: a
//! deterministic backdoor campaign runs *inside* federated training and
//! each group-level defense is scored by the attack success rate (ASR)
//! that survives it.
//!
//! Unlike `robust_defense` / `backdoor_e2e` (which score aggregation
//! rules on synthetic update vectors), every cell here is a full
//! Algorithm-1 run: compromised clients train on trigger-stamped shards,
//! the group aggregator applies the configured defense, and the engine's
//! ASR evaluator reports how often the trigger set is misclassified to
//! the attacker's target at the end of training.
//!
//! The sweep crosses group size (the paper's formation knob) with the
//! defense rule (none/median/trimmed-mean/krum/flame), echoing Fig. 7's
//! structure with ASR on the y-axis. Shape check: for every group size,
//! the undefended mean must leak a higher ASR than the best of Krum and
//! the FLAME filter.
//!
//! Scale: `GFL_SCALE=smoke` (CI), default reduced, `GFL_SCALE=paper`.

use gfl_core::prelude::*;
use gfl_core::sampling::AggregationWeighting;
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};

/// Group sizes the campaign is evaluated at (CoV formation floor).
const GROUP_SIZES: [usize; 2] = [4, 8];

fn scale() -> ExpScale {
    match std::env::var("GFL_SCALE").as_deref() {
        Ok("paper") => ExpScale {
            clients: 120,
            edges: 3,
            dataset: 22_000,
            global_rounds: 40,
            sampled_groups: 6,
            eval_every: 4,
            budget: 1e9,
        },
        Ok("smoke") => ExpScale {
            clients: 24,
            edges: 2,
            dataset: 2_400,
            global_rounds: 6,
            sampled_groups: 2,
            eval_every: 3,
            budget: 1e9,
        },
        _ => ExpScale {
            clients: 48,
            edges: 2,
            dataset: 6_000,
            global_rounds: 16,
            sampled_groups: 4,
            eval_every: 4,
            budget: 1e9,
        },
    }
}

fn defenses() -> [(&'static str, RobustAggRule); 5] {
    [
        ("none", RobustAggRule::Mean),
        ("median", RobustAggRule::CoordinateMedian),
        ("trimmed-mean", RobustAggRule::TrimmedMean { trim: 1 }),
        ("krum", RobustAggRule::Krum { byzantine: 1 }),
        ("flame", RobustAggRule::FlameFilter),
    ]
}

fn main() {
    let seed = 7u64;
    let world = World::vision(0.3, seed, scale());
    // Model-replacement backdoor: a modest compromised fraction whose
    // members boost their poison-trained delta. The boost is what gives
    // the mean-aggregated run its high ASR — and what makes the poisoned
    // updates geometric outliers that Krum and FLAME can actually catch.
    let plan = AdversaryPlan {
        backdoor_boost: 8.0,
        ..AdversaryPlan::backdoor(seed, 0.15)
    };

    let header = [
        "group_size",
        "defense",
        "trigger_asr",
        "accuracy",
        "injected",
        "filtered",
    ];
    let mut rows = Vec::new();
    // asr[(group_size, defense)] for the shape check.
    let mut asr_by_cell: Vec<(usize, &'static str, f64)> = Vec::new();

    for gs in GROUP_SIZES {
        let groups = form_groups_per_edge(
            &CovGrouping {
                min_group_size: gs,
                max_cov: 1000.0,
            },
            &world.topology,
            &world.partition.label_matrix,
            seed,
        );
        for (name, rule) in defenses() {
            let trainer = world
                .trainer(world.config(AggregationWeighting::Standard))
                .with_adversary(plan.clone())
                .with_robust_agg(rule);
            let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
            let asr = history
                .asr_records()
                .iter()
                .rev()
                .find_map(|r| r.trigger_asr)
                .expect("backdoor campaign must produce a trigger ASR")
                as f64;
            let accuracy = history
                .records()
                .last()
                .map_or(0.0, |r| f64::from(r.accuracy));
            let summary = history.attack_summary();
            rows.push(vec![
                gs.to_string(),
                name.to_string(),
                f(asr, 4),
                f(accuracy, 4),
                summary.injected().to_string(),
                summary.filtered().to_string(),
            ]);
            asr_by_cell.push((gs, name, asr));
        }
    }

    print_series(
        "Backdoor ASR vs group-level defense (trigger-set misclassification)",
        &header,
        &rows,
    );
    let path = write_csv("attack_defense", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Shape check: the undefended mean must leak a higher ASR than the
    // best of the two update-inspecting defenses, at every group size.
    for gs in GROUP_SIZES {
        let cell = |name: &str| {
            asr_by_cell
                .iter()
                .find(|(g, n, _)| *g == gs && *n == name)
                .map(|(_, _, a)| *a)
                .unwrap()
        };
        let undefended = cell("none");
        let best_defended = cell("krum").min(cell("flame"));
        assert!(
            undefended > best_defended,
            "group_size={gs}: ASR(none)={undefended:.4} must exceed \
             best defended ASR={best_defended:.4}"
        );
    }
    println!("shape check passed: krum/flame suppress the backdoor the plain mean leaks");
}
