//! Fig. 5 — running time of the four grouping algorithms as the client
//! population grows (200 → 1000 clients), extended past the paper with a
//! virtual-population stream-formation sweep at 10⁴–10⁶ clients.
//!
//! Expected shape (§5.4): RG ≈ free, CDG cheap, CoVG a few seconds at
//! 1000 clients, KLDG clearly slowest (its greedy loop recomputes a full
//! `ln()`-heavy KL per candidate, with no incremental shortcut). The
//! extension's shape claim (docs/SCALE.md): single-pass stream formation
//! over per-client label summaries stays near-linear, sub-second at 10⁶
//! clients — the same quantity CI gates via `bench_scale` + `gfl-trace
//! regress --max-formation-seconds`.

use std::time::Instant;

use gfl_core::grouping::{
    CdgGrouping, CovGrouping, GroupingAlgorithm, KldGrouping, RandomGrouping, StreamGrouping,
};
use gfl_core::prelude::form_groups_per_edge;
use gfl_data::{LabelMatrix, VirtualPopulation, VirtualSpec};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_sim::Topology;
use gfl_tensor::init;
use rand::Rng;

/// Synthetic skewed label matrix, 10 labels (CIFAR-like cardinality).
fn label_matrix(clients: usize, seed: u64) -> LabelMatrix {
    let mut rng = init::rng(seed);
    let labels = 10;
    let counts = (0..clients)
        .map(|_| {
            let hot = rng.gen_range(0..labels);
            (0..labels)
                .map(|l| {
                    if l == hot {
                        rng.gen_range(30..120)
                    } else if rng.gen_bool(0.25) {
                        rng.gen_range(0..15)
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect();
    LabelMatrix::new(counts, labels)
}

fn time_algo(algo: &dyn GroupingAlgorithm, labels: &LabelMatrix, seed: u64) -> f64 {
    let mut rng = init::rng(seed);
    let start = Instant::now();
    let groups = algo.form_groups(labels, &mut rng);
    let secs = start.elapsed().as_secs_f64();
    assert!(!groups.is_empty());
    secs
}

fn main() {
    let sizes = [200usize, 400, 600, 800, 1000];
    let header = ["clients", "RG_s", "CDG_s", "KLDG_s", "CoVG_s"];
    let mut rows = Vec::new();
    let mut last: Option<(f64, f64, f64, f64)> = None;
    for &n in &sizes {
        let labels = label_matrix(n, 42 + n as u64);
        let rg = time_algo(&RandomGrouping { group_size: 6 }, &labels, 1);
        let cdg = time_algo(
            &CdgGrouping {
                group_size: 6,
                kmeans_iters: 10,
            },
            &labels,
            1,
        );
        let kldg = time_algo(&KldGrouping { group_size: 6 }, &labels, 1);
        let covg = time_algo(
            &CovGrouping {
                min_group_size: 5,
                max_cov: 0.3,
            },
            &labels,
            1,
        );
        rows.push(vec![
            n.to_string(),
            f(rg, 4),
            f(cdg, 4),
            f(kldg, 4),
            f(covg, 4),
        ]);
        last = Some((rg, cdg, kldg, covg));
    }
    print_series("Fig 5: grouping runtime (seconds)", &header, &rows);
    let path = write_csv("fig5", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    let (rg, cdg, kldg, covg) = last.unwrap();
    assert!(rg <= covg, "RG must be the cheapest");
    assert!(
        kldg >= covg,
        "KLDG must be slower than CoVG at 1000 clients"
    );
    println!(
        "shape checks passed at 1000 clients: RG {rg:.4}s <= CoVG {covg:.4}s <= KLDG {kldg:.4}s (CDG {cdg:.4}s)"
    );

    // Beyond the paper: virtual populations lift the materialization cap,
    // so formation itself becomes the bottleneck — sweep single-pass
    // stream formation to 10⁶ clients. `GFL_SCALE=smoke` stops at 10⁵
    // (the 10⁶ population build alone is ~30 s in debug builds).
    let smoke = std::env::var("GFL_SCALE").as_deref() == Ok("smoke");
    let populations: &[usize] = if smoke {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let header = [
        "clients",
        "population_build_s",
        "stream_formation_s",
        "groups",
    ];
    let mut rows = Vec::new();
    let mut last_formation = 0.0f64;
    for &n in populations {
        let start = Instant::now();
        let pop = VirtualPopulation::new(VirtualSpec::paper_vision(n, 0.1, 42));
        let build = start.elapsed().as_secs_f64();
        let sizes: Vec<usize> = (0..n).map(|c| pop.client_size(c)).collect();
        let topo = Topology::even_split(8, sizes);
        let start = Instant::now();
        let groups = form_groups_per_edge(
            &StreamGrouping { group_size: 8 },
            &topo,
            pop.label_matrix(),
            42,
        );
        last_formation = start.elapsed().as_secs_f64();
        assert!(groups.len() >= n / 16, "stream formation collapsed");
        rows.push(vec![
            n.to_string(),
            f(build, 4),
            f(last_formation, 4),
            groups.len().to_string(),
        ]);
    }
    print_series(
        "Fig 5 extension: stream formation over virtual populations",
        &header,
        &rows,
    );
    let path = write_csv("fig5_scale", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());
    if !smoke {
        assert!(
            last_formation < 1.0,
            "stream formation took {last_formation:.3}s at 10^6 clients; \
             the sub-second claim (ROADMAP item 1) regressed"
        );
        println!("shape check passed: stream formation {last_formation:.4}s < 1s at 10^6 clients");
    }
}
