//! Fig. 5 — running time of the four grouping algorithms as the client
//! population grows (200 → 1000 clients).
//!
//! Expected shape (§5.4): RG ≈ free, CDG cheap, CoVG a few seconds at
//! 1000 clients, KLDG clearly slowest (its greedy loop recomputes a full
//! `ln()`-heavy KL per candidate, with no incremental shortcut).

use std::time::Instant;

use gfl_core::grouping::{
    CdgGrouping, CovGrouping, GroupingAlgorithm, KldGrouping, RandomGrouping,
};
use gfl_data::LabelMatrix;
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_tensor::init;
use rand::Rng;

/// Synthetic skewed label matrix, 10 labels (CIFAR-like cardinality).
fn label_matrix(clients: usize, seed: u64) -> LabelMatrix {
    let mut rng = init::rng(seed);
    let labels = 10;
    let counts = (0..clients)
        .map(|_| {
            let hot = rng.gen_range(0..labels);
            (0..labels)
                .map(|l| {
                    if l == hot {
                        rng.gen_range(30..120)
                    } else if rng.gen_bool(0.25) {
                        rng.gen_range(0..15)
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect();
    LabelMatrix::new(counts, labels)
}

fn time_algo(algo: &dyn GroupingAlgorithm, labels: &LabelMatrix, seed: u64) -> f64 {
    let mut rng = init::rng(seed);
    let start = Instant::now();
    let groups = algo.form_groups(labels, &mut rng);
    let secs = start.elapsed().as_secs_f64();
    assert!(!groups.is_empty());
    secs
}

fn main() {
    let sizes = [200usize, 400, 600, 800, 1000];
    let header = ["clients", "RG_s", "CDG_s", "KLDG_s", "CoVG_s"];
    let mut rows = Vec::new();
    let mut last: Option<(f64, f64, f64, f64)> = None;
    for &n in &sizes {
        let labels = label_matrix(n, 42 + n as u64);
        let rg = time_algo(&RandomGrouping { group_size: 6 }, &labels, 1);
        let cdg = time_algo(
            &CdgGrouping {
                group_size: 6,
                kmeans_iters: 10,
            },
            &labels,
            1,
        );
        let kldg = time_algo(&KldGrouping { group_size: 6 }, &labels, 1);
        let covg = time_algo(
            &CovGrouping {
                min_group_size: 5,
                max_cov: 0.3,
            },
            &labels,
            1,
        );
        rows.push(vec![
            n.to_string(),
            f(rg, 4),
            f(cdg, 4),
            f(kldg, 4),
            f(covg, 4),
        ]);
        last = Some((rg, cdg, kldg, covg));
    }
    print_series("Fig 5: grouping runtime (seconds)", &header, &rows);
    let path = write_csv("fig5", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    let (rg, cdg, kldg, covg) = last.unwrap();
    assert!(rg <= covg, "RG must be the cheapest");
    assert!(
        kldg >= covg,
        "KLDG must be slower than CoVG at 1000 clients"
    );
    println!(
        "shape checks passed at 1000 clients: RG {rg:.4}s <= CoVG {covg:.4}s <= KLDG {kldg:.4}s (CDG {cdg:.4}s)"
    );
}
