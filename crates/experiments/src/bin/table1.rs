//! Table 1 — Group-FEL under α ∈ {0.1, 0.5, 1.0} × MaxCoV ∈ {0.1, 0.5, 1.0}:
//! group-size range/average, average group CoV, and budget-constrained
//! accuracy (MinGS=5, K=5, E=2).
//!
//! Expected structure (§7.2): larger MaxCoV ⇒ smaller groups with larger
//! CoV; larger α (more IID data) ⇒ higher accuracy and smaller achievable
//! CoV.

use gfl_core::cov::mean_group_cov;
use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_core::Group;
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};

fn main() {
    let scale = ExpScale::from_env();
    let header = [
        "alpha", "max_cov", "gs_min", "gs_max", "gs_avg", "avg_cov", "accuracy",
    ];
    let mut rows = Vec::new();
    let mut cells = Vec::new();

    for &alpha in &[0.1f64, 0.5, 1.0] {
        let world = World::vision(alpha, 42, scale);
        for &max_cov in &[0.1f32, 0.5, 1.0] {
            let groups = form_groups_per_edge(
                &CovGrouping {
                    min_group_size: 5,
                    max_cov,
                },
                &world.topology,
                &world.partition.label_matrix,
                world.seed,
            );
            let sizes: Vec<usize> = groups.iter().map(Group::len).collect();
            let gs_min = *sizes.iter().min().unwrap();
            let gs_max = *sizes.iter().max().unwrap();
            let gs_avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
            let avg_cov = mean_group_cov(&world.partition.label_matrix, &groups);

            let trainer = world.trainer(world.config(AggregationWeighting::Stabilized));
            let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
            let acc = history.accuracy_within_cost(scale.budget);

            println!(
                "alpha={alpha} MaxCoV={max_cov}: GS [{gs_min},{gs_max}]({gs_avg:.2}) CoV {avg_cov:.3} acc {acc:.4}"
            );
            rows.push(vec![
                alpha.to_string(),
                max_cov.to_string(),
                gs_min.to_string(),
                gs_max.to_string(),
                f(gs_avg, 2),
                f(f64::from(avg_cov), 3),
                f(f64::from(acc), 4),
            ]);
            cells.push((alpha, max_cov, gs_avg, f64::from(avg_cov), f64::from(acc)));
        }
    }

    print_series("Table 1: Group-FEL across alpha × MaxCoV", &header, &rows);
    let path = write_csv("table1", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Structural checks from §7.2.
    for &alpha in &[0.1f64, 0.5, 1.0] {
        let row = |mc: f32| {
            cells
                .iter()
                .find(|&&(a, m, ..)| a == alpha && m == mc)
                .copied()
                .unwrap()
        };
        let tight = row(0.1);
        let loose = row(1.0);
        assert!(
            tight.2 >= loose.2,
            "alpha={alpha}: tighter MaxCoV must give larger groups"
        );
        // Greedy leftover-tail groups add noise to the mean CoV at reduced
        // scale; require the ordering up to a small tolerance.
        assert!(
            tight.3 <= loose.3 + 0.1,
            "alpha={alpha}: tighter MaxCoV must give smaller CoV ({} vs {})",
            tight.3,
            loose.3
        );
    }
    // More IID data ⇒ better best-case accuracy.
    let best_acc = |alpha: f64| {
        cells
            .iter()
            .filter(|&&(a, ..)| a == alpha)
            .map(|&(.., acc)| acc)
            .fold(0.0f64, f64::max)
    };
    assert!(
        best_acc(1.0) >= best_acc(0.1) - 0.02,
        "alpha=1.0 should reach at least alpha=0.1's accuracy"
    );
    println!("structural checks passed");
}
