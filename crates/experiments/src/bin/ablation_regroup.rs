//! Extension (§6.1) — periodic *regrouping*: re-run CoV-Grouping every R
//! global rounds so clients stranded in high-CoV groups get fresh chances
//! to participate ("one possible solution is regrouping clients ... In that
//! case, our design of randomly selecting the first client for each group
//! becomes critical and useful").

use gfl_core::cov::group_cov;
use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::CovGrouping;
use gfl_core::history::RunHistory;
use gfl_core::local::FedAvg;
use gfl_core::sampling::AggregationWeighting;
use gfl_core::sampling::SamplingStrategy;
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};
use gfl_tensor::init;

fn main() {
    let mut scale = ExpScale::from_env();
    scale.global_rounds = scale.global_rounds.min(48);
    let world = World::vision(0.1, 42, scale);
    let algo = CovGrouping {
        min_group_size: 5,
        max_cov: 0.5,
    };

    let header = ["variant", "round", "cost", "accuracy"];
    let mut rows = Vec::new();
    let mut summaries = Vec::new();

    for (name, regroup_every) in [("static", None), ("regroup_every_12", Some(12usize))] {
        let trainer = world.trainer(world.config(AggregationWeighting::Stabilized));
        let mut params = world.model.init_params(&mut init::rng(world.seed));
        let mut ledger = trainer.ledger_for(&FedAvg);
        let mut history = RunHistory::default();
        let chunk = regroup_every.unwrap_or(scale.global_rounds);
        let mut t = 0;
        let mut epoch = 0u64;
        while t < scale.global_rounds {
            let groups = form_groups_per_edge(
                &algo,
                &world.topology,
                &world.partition.label_matrix,
                world.seed.wrapping_add(epoch * 7919),
            );
            let covs: Vec<f32> = groups
                .iter()
                .map(|g| group_cov(&world.partition.label_matrix, g))
                .collect();
            let probs = SamplingStrategy::ESRCov.probabilities(&covs);
            let rounds = chunk.min(scale.global_rounds - t);
            trainer.run_resumable(
                &groups,
                &FedAvg,
                &probs,
                &mut params,
                &mut ledger,
                &mut history,
                t,
                rounds,
            );
            t += rounds;
            epoch += 1;
        }
        for r in history.records() {
            rows.push(vec![
                name.to_string(),
                r.round.to_string(),
                f(r.cost, 1),
                f(f64::from(r.accuracy), 4),
            ]);
        }
        let acc = history.best_accuracy();
        println!("{name:18} best accuracy {acc:.4}");
        summaries.push((name, acc));
    }

    print_series("Extension: periodic regrouping", &header, &rows);
    let path = write_csv("ablation_regroup", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Regrouping must at minimum not break training; it typically matches
    // or slightly improves the static partition by refreshing group CoVs.
    let static_acc = summaries[0].1;
    let regroup_acc = summaries[1].1;
    assert!(
        regroup_acc >= static_acc - 0.05,
        "regrouping must stay competitive: static {static_acc} vs regroup {regroup_acc}"
    );
    println!("shape check passed");
}
