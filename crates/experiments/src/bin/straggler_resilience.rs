//! Extension — straggler resilience of the semi-async runtime, measured
//! in emulated wall-clock (docs/ASYNC.md).
//!
//! Both arms run the *same* event-driven scheduler over the same
//! straggler plan (a quarter of the clients slowed 8×), so the emulated
//! clocks are directly comparable:
//!
//! * **sync** — `quorum_fraction = 1.0`, deadlines disabled: every group
//!   round waits for its slowest member. Bit-identical in model terms to
//!   the lockstep engine; the clock shows what stragglers cost it.
//! * **semi-async** — quorum-or-deadline rounds (quorum 0.8, deadline
//!   2.5× nominal): slow reports are cut as timed fault events and the
//!   round closes without them.
//!
//! Shape check: the semi-async arm must finish at a strictly lower
//! emulated clock while staying within ±2 accuracy points of sync.
//!
//! Scale: `GFL_SCALE=smoke` (CI), default reduced, `GFL_SCALE=paper`.

use gfl_core::prelude::*;
use gfl_core::sampling::AggregationWeighting;
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};

fn scale() -> ExpScale {
    match std::env::var("GFL_SCALE").as_deref() {
        Ok("paper") => ExpScale {
            clients: 120,
            edges: 3,
            dataset: 22_000,
            global_rounds: 40,
            sampled_groups: 6,
            eval_every: 4,
            budget: 1e9,
        },
        Ok("smoke") => ExpScale {
            clients: 24,
            edges: 2,
            dataset: 2_400,
            global_rounds: 6,
            sampled_groups: 2,
            eval_every: 3,
            budget: 1e9,
        },
        _ => ExpScale {
            clients: 48,
            edges: 2,
            dataset: 6_000,
            global_rounds: 24,
            sampled_groups: 4,
            eval_every: 4,
            budget: 1e9,
        },
    }
}

/// A fifth of the fleet slowed 8×: the regime where wait-for-all
/// rounds are dominated by the tail.
fn straggler_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        straggler_fraction: 0.20,
        straggler_factor: 8.0,
        straggler_jitter: 0.25,
        ..FaultPlan::none()
    }
}

fn main() {
    let seed = 11u64;
    let world = World::vision(0.3, seed, scale());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 4,
            max_cov: 1000.0,
        },
        &world.topology,
        &world.partition.label_matrix,
        seed,
    );

    let arms: [(&str, FaultPolicy); 2] = [
        (
            "sync",
            FaultPolicy {
                quorum_fraction: 1.0,
                deadline_factor: 0.0,
                ..FaultPolicy::default()
            },
        ),
        (
            "semi-async",
            FaultPolicy {
                quorum_fraction: 0.8,
                deadline_factor: 2.5,
                ..FaultPolicy::default()
            },
        ),
    ];

    let header = [
        "arm",
        "accuracy",
        "clock_s",
        "cut_reports",
        "stale_admitted",
        "busy_skips",
        "cost",
    ];
    let mut rows = Vec::new();
    let mut cells: Vec<(&str, f64, f64)> = Vec::new();
    for (name, policy) in arms {
        let trainer = world
            .trainer(world.config(AggregationWeighting::Standard))
            .with_faults(straggler_plan(seed), policy, &world.topology);
        let (history, _, report) = trainer.run_semi_async(
            &groups,
            &FedAvg,
            SamplingStrategy::ESRCov,
            &AsyncConfig::default(),
        );
        let last = history.records().last().expect("run produced records");
        let accuracy = f64::from(last.accuracy);
        let clock = report.final_clock_s();
        let sum =
            |g: fn(&AsyncRoundRecord) -> usize| -> usize { report.rounds.iter().map(g).sum() };
        rows.push(vec![
            name.to_string(),
            f(accuracy, 4),
            f(clock, 1),
            report.total_cut_reports().to_string(),
            sum(|r| r.stale_admitted).to_string(),
            sum(|r| r.busy_skipped).to_string(),
            f(last.cost, 0),
        ]);
        cells.push((name, accuracy, clock));
    }

    print_series(
        "Straggler resilience: quorum-or-deadline rounds vs wait-for-all (emulated clock)",
        &header,
        &rows,
    );
    let path = write_csv("straggler_resilience", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Shape check: cutting the 8× tail must buy emulated wall-clock
    // without giving up accuracy.
    let (_, acc_sync, clock_sync) = cells[0];
    let (_, acc_semi, clock_semi) = cells[1];
    assert!(
        clock_semi < clock_sync,
        "semi-async clock {clock_semi:.1}s must beat sync {clock_sync:.1}s"
    );
    assert!(
        (acc_semi - acc_sync).abs() <= 0.02,
        "semi-async accuracy {acc_semi:.4} must stay within ±2 points of sync {acc_sync:.4}"
    );
    println!(
        "shape check passed: {:.1}s -> {:.1}s ({:.0}% faster) at {:+.2} accuracy points",
        clock_sync,
        clock_semi,
        (1.0 - clock_semi / clock_sync) * 100.0,
        (acc_semi - acc_sync) * 100.0
    );
}
