//! Fig. 2(b) — accuracy over cost for fixed random group sizes
//! GS ∈ {5, 10, 15, 20}.
//!
//! The motivating observation: simply shrinking the group size does *not*
//! reduce the total cost needed for a given accuracy — small random groups
//! are more skewed, which slows convergence and eats the overhead savings.
//! All four curves should land in the same band.

use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::RandomGrouping;
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};

fn main() {
    let mut scale = ExpScale::from_env();
    // Fig 2(b)'s cost axis runs ~4x further than the comparison figures —
    // the invariance claim is about *converged* accuracy-per-cost, so every
    // group size must get enough rounds to converge within budget.
    scale.budget *= 4.0;
    scale.global_rounds *= 2;
    let world = World::vision(0.1, 42, scale);
    let header = ["group_size", "round", "cost", "accuracy"];
    let mut rows = Vec::new();
    let mut final_acc = Vec::new();

    for gs in [5usize, 10, 15, 20] {
        let groups = form_groups_per_edge(
            &RandomGrouping { group_size: gs },
            &world.topology,
            &world.partition.label_matrix,
            world.seed,
        );
        let trainer = world.trainer(world.config(AggregationWeighting::Standard));
        let history = trainer.run(&groups, &FedAvg, SamplingStrategy::Random);
        for r in history.records() {
            rows.push(vec![
                gs.to_string(),
                r.round.to_string(),
                f(r.cost, 1),
                f(f64::from(r.accuracy), 4),
            ]);
        }
        final_acc.push((gs, history.accuracy_within_cost(scale.budget)));
        println!(
            "GS={gs}: best accuracy within budget {:.4}",
            history.accuracy_within_cost(scale.budget)
        );
    }

    print_series("Fig 2(b): accuracy over cost by group size", &header, &rows);
    let path = write_csv("fig2b", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Shape check: no group size wins decisively — the spread of
    // budget-constrained accuracy across sizes stays small.
    let best = final_acc.iter().map(|&(_, a)| a).fold(0.0f32, f32::max);
    let worst = final_acc.iter().map(|&(_, a)| a).fold(1.0f32, f32::min);
    println!("\naccuracy spread across GS: best {best:.4}, worst {worst:.4}");
    assert!(
        best - worst < 0.15,
        "group size alone should not change accuracy-per-cost dramatically"
    );
    println!("shape check passed: accuracy-per-cost roughly invariant to GS");
}
