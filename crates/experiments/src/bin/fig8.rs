//! Fig. 8 — the full RPi-4 overhead measurement: eight series,
//! {CIFAR, SC} × {training, backdoor detection, SecAgg, SCAFFOLD SecAgg}.
//!
//! These curves *are* the calibration of the cost model (§7.1 "Total Cost
//! Emulation"): the paper fits H_i and O_g to them and then drives every
//! accuracy-vs-cost experiment from the fit. This binary prints the fitted
//! curves over the paper's x ∈ [0, 50] range.

use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_sim::{CostModel, GroupOpKind, Task};

fn main() {
    let vision = CostModel::for_task(Task::Vision);
    let speech = CostModel::for_task(Task::Speech);
    let header = [
        "x",
        "cifar_train",
        "cifar_backdoor",
        "cifar_secagg",
        "cifar_scaffold_secagg",
        "sc_train",
        "sc_backdoor",
        "sc_secagg",
        "sc_scaffold_secagg",
    ];
    let mut rows = Vec::new();
    for x in (0..=50usize).step_by(5) {
        rows.push(vec![
            x.to_string(),
            f(vision.training(x), 2),
            f(vision.group_op(GroupOpKind::BackdoorDetection, x), 2),
            f(vision.group_op(GroupOpKind::SecureAggregation, x), 2),
            f(
                vision.group_op(GroupOpKind::ScaffoldSecureAggregation, x),
                2,
            ),
            f(speech.training(x), 2),
            f(speech.group_op(GroupOpKind::BackdoorDetection, x), 2),
            f(speech.group_op(GroupOpKind::SecureAggregation, x), 2),
            f(
                speech.group_op(GroupOpKind::ScaffoldSecureAggregation, x),
                2,
            ),
        ]);
    }
    print_series(
        "Fig 8: RPi overhead curves (emulated seconds)",
        &header,
        &rows,
    );
    let path = write_csv("fig8", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // The orderings the paper's Fig. 8 exhibits.
    for x in [10usize, 30, 50] {
        for m in [vision, speech] {
            let scaffold = m.group_op(GroupOpKind::ScaffoldSecureAggregation, x);
            let secagg = m.group_op(GroupOpKind::SecureAggregation, x);
            let backdoor = m.group_op(GroupOpKind::BackdoorDetection, x);
            assert!(scaffold > secagg && secagg > backdoor);
        }
        assert!(vision.training(x) > speech.training(x));
    }
    println!("shape checks passed: SCAFFOLD SecAgg > SecAgg > backdoor; CIFAR > SC");
}
