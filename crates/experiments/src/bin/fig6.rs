//! Fig. 6 — grouping quality frontier: average group CoV vs average
//! per-client group overhead, for each grouping algorithm across its knob
//! sweep.
//!
//! Expected shape: at equal overhead CoVG delivers the lowest CoV (its
//! frontier dominates); random grouping is the worst at every size.

use gfl_core::cov::mean_group_cov;
use gfl_core::grouping::{
    CdgGrouping, CovGrouping, GroupingAlgorithm, KldGrouping, RandomGrouping,
};
use gfl_core::Group;
use gfl_data::LabelMatrix;
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_sim::{CostModel, GroupOpKind, Task};
use gfl_tensor::init;
use rand::Rng;

fn label_matrix(clients: usize, seed: u64) -> LabelMatrix {
    let mut rng = init::rng(seed);
    let labels = 10;
    let counts = (0..clients)
        .map(|_| {
            let hot = rng.gen_range(0..labels);
            (0..labels)
                .map(|l| {
                    if l == hot {
                        rng.gen_range(30..100)
                    } else if rng.gen_bool(0.3) {
                        rng.gen_range(0..10)
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect();
    LabelMatrix::new(counts, labels)
}

/// Average per-client group-operation overhead across groups (normalized to
/// the 50-client group cost, matching Fig. 6's 0–1 y-axis).
fn avg_overhead(groups: &[Group], model: &CostModel) -> f64 {
    let max = model.group_op(GroupOpKind::SecureAggregation, 50);
    let per: f64 = groups
        .iter()
        .map(|g| model.group_op(GroupOpKind::SecureAggregation, g.len()))
        .sum::<f64>()
        / groups.len().max(1) as f64;
    per / max
}

fn main() {
    let labels = label_matrix(300, 9);
    let model = CostModel::for_task(Task::Vision);
    let header = ["algo", "knob", "avg_cov", "avg_overhead"];
    let mut rows = Vec::new();

    // Sweep each algorithm's size knob to trace its frontier.
    for size in [4usize, 6, 8, 12, 16, 24] {
        let algos: Vec<(String, Box<dyn GroupingAlgorithm>)> = vec![
            (
                format!("RG(gs={size})"),
                Box::new(RandomGrouping { group_size: size }),
            ),
            (
                format!("CDG(gs={size})"),
                Box::new(CdgGrouping {
                    group_size: size,
                    kmeans_iters: 10,
                }),
            ),
            (
                format!("KLDG(gs={size})"),
                Box::new(KldGrouping { group_size: size }),
            ),
        ];
        for (name, algo) in algos {
            let groups = algo.form_groups(&labels, &mut init::rng(11));
            rows.push(vec![
                name.split('(').next().unwrap().to_string(),
                name,
                f(f64::from(mean_group_cov(&labels, &groups)), 3),
                f(avg_overhead(&groups, &model), 3),
            ]);
        }
    }
    for max_cov in [0.1f32, 0.2, 0.4, 0.8, 1.2] {
        let algo = CovGrouping {
            min_group_size: 4,
            max_cov,
        };
        let groups = algo.form_groups(&labels, &mut init::rng(11));
        rows.push(vec![
            "CoVG".to_string(),
            format!("CoVG(maxcov={max_cov})"),
            f(f64::from(mean_group_cov(&labels, &groups)), 3),
            f(avg_overhead(&groups, &model), 3),
        ]);
    }

    print_series(
        "Fig 6: CoV vs average group overhead frontier",
        &header,
        &rows,
    );
    let path = write_csv("fig6", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Shape check: for comparable overhead (similar sizes), CoVG's CoV beats
    // RG's. Compare CoVG at its largest-overhead point vs RG(gs=6).
    let parse =
        |row: &Vec<String>| -> (f64, f64) { (row[2].parse().unwrap(), row[3].parse().unwrap()) };
    let rg6 = rows
        .iter()
        .find(|r| r[1].starts_with("RG(gs=6"))
        .map(parse)
        .unwrap();
    let covg_best = rows
        .iter()
        .filter(|r| r[0] == "CoVG")
        .map(parse)
        .filter(|&(_, o)| o <= rg6.1 * 1.5)
        .map(|(c, _)| c)
        .fold(f64::INFINITY, f64::min);
    assert!(
        covg_best < rg6.0,
        "CoVG CoV {covg_best} must beat RG {0} at comparable overhead",
        rg6.0
    );
    println!("shape check passed: CoVG dominates RG at comparable overhead");
}
