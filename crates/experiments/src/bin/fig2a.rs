//! Fig. 2(a) — group overheads of a client in group-based FEL.
//!
//! Reproduces the motivating measurement: training cost grows *linearly* in
//! the client's data size while secure aggregation and backdoor detection
//! grow *quadratically* in group size, overtaking training for realistic
//! groups. Columns are emulated seconds from the RPi-calibrated model
//! (vision task, as in the paper's Fig. 2), cross-checked against the real
//! protocol implementations' operation counters.

use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_sim::{CostModel, GroupOpKind, Task};

fn main() {
    let model = CostModel::for_task(Task::Vision);
    let header = ["x", "training_s", "secagg_s", "backdoor_s"];
    let mut rows = Vec::new();
    for x in (0..=50usize).step_by(5) {
        rows.push(vec![
            x.to_string(),
            f(model.training(x), 2),
            f(model.group_op(GroupOpKind::SecureAggregation, x), 2),
            f(model.group_op(GroupOpKind::BackdoorDetection, x), 2),
        ]);
    }
    print_series(
        "Fig 2(a): per-client overheads (x = data size for training, group size for ops)",
        &header,
        &rows,
    );
    let path = write_csv("fig2a", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Empirical cross-check: real SecAgg / defense work vs group size.
    let dim = 1024;
    let header2 = ["group_size", "secagg_prg_per_client", "defense_sims_total"];
    let mut rows2 = Vec::new();
    for g in [5usize, 10, 20, 40] {
        let session = gfl_secagg::SecAggSession::new((0..g as u32).collect(), dim, 7);
        let (_, c) = session.mask(0, &vec![0.1; dim]);
        let mut updates = vec![vec![0.5f32; 16]; g];
        let report =
            gfl_defense::filter_updates(&mut updates, &gfl_defense::DefenseConfig::default());
        rows2.push(vec![
            g.to_string(),
            c.prg_expansions.to_string(),
            report.cost.similarity_evals.to_string(),
        ]);
    }
    print_series(
        "Empirical validation: real protocol work scales as the model assumes",
        &header2,
        &rows2,
    );

    // Shape assertions — the claims Fig 2(a) makes.
    let t10 = model.training(10);
    let t50 = model.training(50);
    let s10 = model.group_op(GroupOpKind::SecureAggregation, 10);
    let s50 = model.group_op(GroupOpKind::SecureAggregation, 50);
    assert!(
        (t50 / t10) < 6.0,
        "training must be ~linear (5x data -> <6x cost)"
    );
    assert!(
        (s50 / s10) > 10.0,
        "secagg must be superlinear (5x group -> >10x cost)"
    );
    assert!(s50 > t50, "group ops dominate training at size 50");
    println!("\nshape checks passed: training linear, group ops quadratic and dominant");
}
