//! Fig. 9 — accuracy vs global round, all seven methods, CIFAR-like task
//! (α = 0.1, K=5, E=2).
//!
//! Expected shape: Group-FEL on top; the training-based and
//! assignment-based baselines clustered below it; FedCLAR's curve drops
//! after its clustering round.

use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::methods::{run_method, GroupingKnobs, Method};
use gfl_experiments::world::{ExpScale, World};

fn main() {
    let scale = ExpScale::from_env();
    let world = World::vision(0.1, 42, scale);
    let knobs = GroupingKnobs::default();

    let header = ["method", "round", "accuracy"];
    let mut rows = Vec::new();
    let mut finals = Vec::new();
    for method in Method::ALL {
        let history = run_method(method, &world, knobs);
        for r in history.records() {
            rows.push(vec![
                method.name().to_string(),
                r.round.to_string(),
                f(f64::from(r.accuracy), 4),
            ]);
        }
        let best = history.best_accuracy();
        println!("{:10} best accuracy {best:.4}", method.name());
        finals.push((method, best));
    }

    print_series(
        "Fig 9: accuracy vs global round (CIFAR-like)",
        &header,
        &rows,
    );
    let path = write_csv("fig9", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    let groupfel = finals
        .iter()
        .find(|(m, _)| *m == Method::GroupFel)
        .unwrap()
        .1;
    let best_baseline = finals
        .iter()
        .filter(|(m, _)| *m != Method::GroupFel)
        .map(|&(_, a)| a)
        .fold(0.0f32, f32::max);
    println!("\nGroup-FEL {groupfel:.4} vs best baseline {best_baseline:.4}");
    assert!(
        groupfel >= best_baseline - 0.03,
        "Group-FEL should match or beat every baseline by round"
    );
    println!("shape check passed");
}
