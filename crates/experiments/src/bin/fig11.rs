//! Fig. 11 — accuracy vs cost on the Speech-Commands-like task with
//! extreme skew: α = 0.01 (each client dominated by ≤5 of 35 labels),
//! MinGS = 15, no MaxCoV constraint (§7.3.2).
//!
//! Expected shape: curves are noisier ("the convergence is unstable due to
//! the serious inconsistency"), and Group-FEL still leads.

use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::methods::{run_method, GroupingKnobs, Method};
use gfl_experiments::world::{ExpScale, World};

fn main() {
    let mut scale = ExpScale::from_env();
    // The 35-class task under extreme skew converges slowly; the speech
    // cost table is ~3x cheaper per round, so the same budget buys the
    // longer horizon the paper's Fig. 11 plots.
    scale.global_rounds *= 2;
    let world = World::speech(0.01, 42, scale);
    let knobs = GroupingKnobs {
        target_size: 16,
        min_group_size: 15,
        max_cov: f32::INFINITY,
    };

    let header = ["method", "cost", "accuracy"];
    let mut rows = Vec::new();
    let mut at_budget = Vec::new();
    for method in Method::ALL {
        let history = run_method(method, &world, knobs);
        for r in history.records() {
            rows.push(vec![
                method.name().to_string(),
                f(r.cost, 1),
                f(f64::from(r.accuracy), 4),
            ]);
        }
        let acc = history.accuracy_within_cost(scale.budget);
        println!("{:10} accuracy within budget: {acc:.4}", method.name());
        at_budget.push((method, acc));
    }

    print_series(
        "Fig 11: accuracy vs cost (Speech-Commands-like)",
        &header,
        &rows,
    );
    let path = write_csv("fig11", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    let groupfel = at_budget
        .iter()
        .find(|(m, _)| *m == Method::GroupFel)
        .unwrap()
        .1;
    let median_baseline = {
        let mut accs: Vec<f32> = at_budget
            .iter()
            .filter(|(m, _)| *m != Method::GroupFel)
            .map(|&(_, a)| a)
            .collect();
        accs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        accs[accs.len() / 2]
    };
    println!("\nGroup-FEL {groupfel:.4} vs median baseline {median_baseline:.4}");
    assert!(
        groupfel >= median_baseline,
        "Group-FEL should beat the typical baseline under extreme skew"
    );
    println!("shape check passed");
}
