//! Fig. 7 — the four sampling methods over CoV-formed groups:
//! Random < RCoV < SRCoV < ESRCoV in accuracy-over-cost.
//!
//! "Overall, the more we emphasize CoV in sampling, the smoother and faster
//! the convergence is" (§6.1).

use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};

fn main() {
    let scale = ExpScale::from_env();
    let world = World::vision(0.1, 42, scale);
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 5,
            max_cov: 0.5,
        },
        &world.topology,
        &world.partition.label_matrix,
        world.seed,
    );
    println!("formed {} groups", groups.len());

    let strategies = [
        SamplingStrategy::Random,
        SamplingStrategy::RCov,
        SamplingStrategy::SRCov,
        SamplingStrategy::ESRCov,
    ];
    let header = ["sampling", "round", "cost", "accuracy"];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for strat in strategies {
        // Biased Line-15 weighting throughout: the paper's Fig. 7 studies
        // the sampling emphasis, not the unbiasedness correction.
        let trainer = world.trainer(world.config(AggregationWeighting::Standard));
        let history = trainer.run(&groups, &FedAvg, strat);
        for r in history.records() {
            rows.push(vec![
                strat.name().to_string(),
                r.round.to_string(),
                f(r.cost, 1),
                f(f64::from(r.accuracy), 4),
            ]);
        }
        let acc = history.accuracy_within_cost(scale.budget);
        let acc_mid = history.accuracy_within_cost(scale.budget / 2.0);
        println!(
            "{:8} accuracy within half/full budget: {acc_mid:.4} / {acc:.4}",
            strat.name()
        );
        summary.push((strat.name(), acc, acc_mid));
    }

    print_series(
        "Fig 7: sampling methods, accuracy over cost",
        &header,
        &rows,
    );
    let path = write_csv("fig7", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // Shape checks: ESRCoV must lead at the full budget and win clearly in
    // the transient half-budget regime ("the more we emphasize CoV in
    // sampling, the smoother and faster the convergence", §6.1).
    let (random, random_mid) = (summary[0].1, summary[0].2);
    let (esr, esr_mid) = (summary[3].1, summary[3].2);
    assert!(
        esr >= random - 0.01,
        "ESRCoV ({esr}) should not lose to Random ({random}) at full budget"
    );
    assert!(
        esr_mid > random_mid,
        "ESRCoV ({esr_mid}) must converge faster than Random ({random_mid})"
    );
    println!("shape checks passed: CoV-aware sampling converges faster and ends ahead");
}
