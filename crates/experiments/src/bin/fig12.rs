//! Fig. 12 — impact ablation: grouping × sampling combinations.
//!
//! {CoVG+RS, RG+CoVS, CoVG+CoVS, KLDG+RS, KLDG+CoVS} with FedAvg local
//! updates. Expected shape: CoVG+CoVS (the full Group-FEL) on top; either
//! component alone gives only part of the benefit ("the advantage of the
//! proposed methods is more clear when both CoVG and CoVS are used
//! together").

use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::{CovGrouping, GroupingAlgorithm, KldGrouping, RandomGrouping};
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};

fn main() {
    let scale = ExpScale::from_env();
    let world = World::vision(0.1, 42, scale);

    let covg: Box<dyn GroupingAlgorithm> = Box::new(CovGrouping {
        min_group_size: 5,
        max_cov: 0.5,
    });
    let rg: Box<dyn GroupingAlgorithm> = Box::new(RandomGrouping { group_size: 6 });
    let kldg: Box<dyn GroupingAlgorithm> = Box::new(KldGrouping { group_size: 6 });

    let combos: Vec<(&str, &dyn GroupingAlgorithm, SamplingStrategy)> = vec![
        ("CoVG+RS", covg.as_ref(), SamplingStrategy::Random),
        ("RG+CoVS", rg.as_ref(), SamplingStrategy::ESRCov),
        ("CoVG+CoVS", covg.as_ref(), SamplingStrategy::ESRCov),
        ("KLDG+RS", kldg.as_ref(), SamplingStrategy::Random),
        ("KLDG+CoVS", kldg.as_ref(), SamplingStrategy::ESRCov),
    ];

    let header = ["combo", "cost", "accuracy"];
    let mut rows = Vec::new();
    let mut at_budget = Vec::new();
    for (name, grouping, sampling) in combos {
        let groups = form_groups_per_edge(
            grouping,
            &world.topology,
            &world.partition.label_matrix,
            world.seed,
        );
        let trainer = world.trainer(world.config(AggregationWeighting::Standard));
        let history = trainer.run(&groups, &FedAvg, sampling);
        for r in history.records() {
            rows.push(vec![
                name.to_string(),
                f(r.cost, 1),
                f(f64::from(r.accuracy), 4),
            ]);
        }
        let acc = history.accuracy_within_cost(scale.budget);
        println!("{name:10} accuracy within budget: {acc:.4}");
        at_budget.push((name, acc));
    }

    print_series(
        "Fig 12: grouping × sampling combinations (accuracy vs cost)",
        &header,
        &rows,
    );
    let path = write_csv("fig12", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    let full = at_budget.iter().find(|(n, _)| *n == "CoVG+CoVS").unwrap().1;
    let others_best = at_budget
        .iter()
        .filter(|(n, _)| *n != "CoVG+CoVS")
        .map(|&(_, a)| a)
        .fold(0.0f32, f32::max);
    println!("\nCoVG+CoVS {full:.4} vs best other combo {others_best:.4}");
    assert!(
        full >= others_best - 0.02,
        "the full combination should lead the ablation"
    );
    println!("shape check passed: both components together work best");
}
