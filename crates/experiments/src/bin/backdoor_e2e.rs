//! Extension — the backdoor-detection group operation exercised end to end.
//!
//! The paper charges for backdoor detection in every group round but never
//! shows it firing. This binary injects actual malicious clients (scaled
//! sign-flipped updates) into one group's aggregation and shows the
//! `gfl-defense` pipeline (pairwise cosine clustering + norm clipping)
//! excluding them, at the quadratic cost the model assumes.

use gfl_defense::{filter_updates, scale_attack, sign_flip_attack, DefenseConfig};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_tensor::{init, ops};

fn main() {
    let dim = 4096;
    let header = [
        "group_size",
        "attackers",
        "detected",
        "false_pos",
        "sim_evals",
        "agg_error_defended",
        "agg_error_undefended",
    ];
    let mut rows = Vec::new();

    for &(g, attackers) in &[(8usize, 1usize), (12, 2), (20, 4), (32, 6)] {
        let mut rng = init::rng(g as u64 * 31 + attackers as u64);
        // Benign updates: common descent direction + small noise.
        let mut base = vec![0.0f32; dim];
        init::fill_normal(&mut rng, 1.0, &mut base);
        let honest = g - attackers;
        let mut updates: Vec<Vec<f32>> = Vec::with_capacity(g);
        for _ in 0..honest {
            let mut u = base.clone();
            let mut noise = vec![0.0f32; dim];
            init::fill_normal(&mut rng, 0.15, &mut noise);
            ops::add_assign(&noise, &mut u);
            updates.push(u);
        }
        for _ in 0..attackers {
            let mut u = base.clone();
            sign_flip_attack(&mut u);
            scale_attack(&mut u, 8.0);
            updates.push(u);
        }
        // Ground-truth benign mean.
        let mut truth = vec![0.0f32; dim];
        for u in &updates[..honest] {
            ops::add_assign(u, &mut truth);
        }
        ops::scale(1.0 / honest as f32, &mut truth);

        // Undefended aggregate (plain mean of everyone).
        let mut undefended = vec![0.0f32; dim];
        for u in &updates {
            ops::add_assign(u, &mut undefended);
        }
        ops::scale(1.0 / g as f32, &mut undefended);

        // Defended aggregate.
        let mut defended_updates = updates.clone();
        let report = filter_updates(&mut defended_updates, &DefenseConfig::default());
        let mut defended = vec![0.0f32; dim];
        for &i in &report.accepted {
            ops::add_assign(&defended_updates[i], &mut defended);
        }
        ops::scale(1.0 / report.accepted.len().max(1) as f32, &mut defended);

        let detected = report.rejected.iter().filter(|&&i| i >= honest).count();
        let false_pos = report.rejected.len() - detected;
        let err = |agg: &[f32]| {
            let mut d = agg.to_vec();
            ops::sub_assign(&truth, &mut d);
            f64::from(ops::norm(&d) / ops::norm(&truth).max(1e-9))
        };
        rows.push(vec![
            g.to_string(),
            attackers.to_string(),
            format!("{detected}/{attackers}"),
            false_pos.to_string(),
            report.cost.similarity_evals.to_string(),
            f(err(&defended), 3),
            f(err(&undefended), 3),
        ]);
        assert_eq!(detected, attackers, "g={g}: all attackers must be caught");
        assert_eq!(false_pos, 0, "g={g}: no honest client may be excluded");
        assert!(
            err(&defended) < err(&undefended),
            "defense must reduce aggregation error"
        );
        assert_eq!(
            report.cost.similarity_evals,
            (g * (g - 1) / 2) as u64,
            "pairwise work must be quadratic"
        );
    }

    print_series(
        "Backdoor defense end-to-end: detection, error reduction, quadratic cost",
        &header,
        &rows,
    );
    let path = write_csv("backdoor_e2e", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());
    println!("all defense checks passed");
}
