//! Fig. 10 — accuracy vs *cost*, all seven methods, CIFAR-like task.
//!
//! The paper's headline comparison: measured against total learning cost
//! (Eq. 5), Group-FEL's advantage widens beyond Fig. 9's per-round view,
//! because FedProx/SCAFFOLD pay more per round and OUEA/SHARE form costly
//! oversized groups.

use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::methods::{run_method, GroupingKnobs, Method};
use gfl_experiments::world::{ExpScale, World};

fn main() {
    let scale = ExpScale::from_env();
    let world = World::vision(0.1, 42, scale);
    let knobs = GroupingKnobs::default();

    let header = ["method", "cost", "accuracy"];
    let mut rows = Vec::new();
    let mut at_budget = Vec::new();
    for method in Method::ALL {
        let history = run_method(method, &world, knobs);
        for r in history.records() {
            rows.push(vec![
                method.name().to_string(),
                f(r.cost, 1),
                f(f64::from(r.accuracy), 4),
            ]);
        }
        let acc = history.accuracy_within_cost(scale.budget);
        println!(
            "{:10} accuracy within budget {:.0}: {acc:.4}",
            method.name(),
            scale.budget
        );
        at_budget.push((method, acc));
    }

    print_series("Fig 10: accuracy vs cost (CIFAR-like)", &header, &rows);
    let path = write_csv("fig10", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    let groupfel = at_budget
        .iter()
        .find(|(m, _)| *m == Method::GroupFel)
        .unwrap()
        .1;
    let best_baseline = at_budget
        .iter()
        .filter(|(m, _)| *m != Method::GroupFel)
        .map(|&(_, a)| a)
        .fold(0.0f32, f32::max);
    println!("\nGroup-FEL {groupfel:.4} vs best baseline {best_baseline:.4} at equal cost");
    assert!(
        groupfel >= best_baseline,
        "Group-FEL must win the accuracy-per-cost comparison"
    );
    println!("shape check passed: Group-FEL dominates at equal cost");
}
