//! Ablation (§5.1) — CoV vs raw variance as the grouping criterion.
//!
//! The paper argues variance "is susceptible to the scale of data number":
//! a small skewed group can out-score a large balanced one. This binary
//! quantifies the argument three ways:
//!
//! 1. the §5.1 pathology on explicit histograms,
//! 2. grouping quality (mean CoV, data dispersion γ) of the two greedy
//!    variants on a Dirichlet federation,
//! 3. downstream federated accuracy under identical sampling.

use gfl_core::cov::{group_cov, mean_group_cov};
use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::{CovGrouping, GroupingAlgorithm, VarianceGrouping};
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_core::theory;
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};

fn main() {
    let mut scale = ExpScale::from_env();
    scale.global_rounds = scale.global_rounds.min(40);
    let world = World::vision(0.1, 42, scale);

    let header = ["criterion", "groups", "mean_cov", "mean_gamma", "accuracy"];
    let mut rows = Vec::new();
    let mut results = Vec::new();

    let algos: Vec<(&str, Box<dyn GroupingAlgorithm>)> = vec![
        (
            "CoV",
            Box::new(CovGrouping {
                min_group_size: 5,
                max_cov: 0.5,
            }),
        ),
        (
            // max_variance tuned to produce a comparable group count.
            "variance",
            Box::new(VarianceGrouping {
                min_group_size: 5,
                max_variance: 60.0,
            }),
        ),
    ];
    for (name, algo) in algos {
        let groups = form_groups_per_edge(
            algo.as_ref(),
            &world.topology,
            &world.partition.label_matrix,
            world.seed,
        );
        let mean_cov = mean_group_cov(&world.partition.label_matrix, &groups);
        let mean_gamma = groups
            .iter()
            .map(|g| {
                let sizes: Vec<usize> = g
                    .iter()
                    .map(|&c| world.partition.indices[c].len())
                    .collect();
                theory::gamma(&sizes)
            })
            .sum::<f64>()
            / groups.len() as f64;
        let trainer = world.trainer(world.config(AggregationWeighting::Standard));
        let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        let acc = history.accuracy_within_cost(scale.budget);
        println!(
            "{name:9} {:3} groups  mean CoV {mean_cov:.3}  mean gamma {mean_gamma:.3}  accuracy {acc:.4}",
            groups.len()
        );
        rows.push(vec![
            name.to_string(),
            groups.len().to_string(),
            f(f64::from(mean_cov), 3),
            f(mean_gamma, 3),
            f(f64::from(acc), 4),
        ]);
        results.push((name, mean_cov, acc, groups));
    }

    print_series(
        "Ablation: CoV vs variance grouping criterion",
        &header,
        &rows,
    );
    let path = write_csv("ablation_criterion", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    // The pathology check on the worst groups formed: the variance greedy
    // must admit a group whose CoV exceeds anything the CoV greedy keeps.
    let worst = |groups: &Vec<Vec<usize>>| {
        groups
            .iter()
            .map(|g| group_cov(&world.partition.label_matrix, g))
            .fold(0.0f32, f32::max)
    };
    let cov_worst = worst(&results[0].3);
    let var_worst = worst(&results[1].3);
    println!("\nworst group CoV: CoV-greedy {cov_worst:.3} vs variance-greedy {var_worst:.3}");
    assert!(
        results[0].1 <= results[1].1,
        "CoV criterion must form lower-CoV groups on average"
    );
    assert!(
        results[0].2 >= results[1].2 - 0.02,
        "CoV criterion must not lose accuracy to variance"
    );
    println!("shape checks passed: CoV dominates raw variance as the criterion");
}
