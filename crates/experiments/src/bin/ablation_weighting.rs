//! Ablation (§6.2) — aggregation weighting under prioritized sampling:
//! Standard (Line 15) vs Unbiased (Eq. 4) vs Stabilized (Eq. 35).
//!
//! The paper warns that raw unbiased correction with an aggressive w()
//! "extremely amplifies the gradient and ruins all previous training
//! results". This binary demonstrates the instability and shows Eq. 35's
//! normalization restores it.

use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_experiments::emit::{f, print_series, to_csv, write_csv};
use gfl_experiments::world::{ExpScale, World};

fn main() {
    let mut scale = ExpScale::from_env();
    scale.global_rounds = scale.global_rounds.min(40);
    let world = World::vision(0.1, 42, scale);
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 5,
            max_cov: 0.5,
        },
        &world.topology,
        &world.partition.label_matrix,
        world.seed,
    );

    let header = ["weighting", "round", "accuracy", "loss"];
    let mut rows = Vec::new();
    let mut finals = Vec::new();
    for (name, weighting) in [
        ("standard", AggregationWeighting::Standard),
        ("unbiased", AggregationWeighting::Unbiased),
        ("stabilized", AggregationWeighting::Stabilized),
    ] {
        let trainer = world.trainer(world.config(weighting));
        // ESRCoV makes some p_g minuscule — the stress case of §6.2.
        let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        for r in history.records() {
            rows.push(vec![
                name.to_string(),
                r.round.to_string(),
                f(f64::from(r.accuracy), 4),
                f(f64::from(r.loss), 4),
            ]);
        }
        let acc = history.final_accuracy();
        let loss = history.records().last().map(|r| r.loss).unwrap_or(0.0);
        println!("{name:10} final accuracy {acc:.4}, final loss {loss:.4}");
        finals.push((name, acc, loss));
    }

    print_series(
        "Ablation: aggregation weighting under ESRCoV sampling",
        &header,
        &rows,
    );
    let path = write_csv("ablation_weighting", &to_csv(&header, &rows));
    println!("\nwrote {}", path.display());

    let stabilized = finals[2].1;
    let unbiased = finals[1].1;
    println!(
        "\nstabilized {stabilized:.4} vs raw unbiased {unbiased:.4} \
         (raw unbiased is expected to trail or diverge)"
    );
    assert!(
        stabilized >= unbiased - 0.02,
        "Eq. 35 normalization must not lose to raw Eq. 4"
    );
    println!("shape check passed");
}
