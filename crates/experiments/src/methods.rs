//! The seven methods of Fig. 9–11, expressed as (grouping, sampling,
//! local-update) combinations over the shared engine.

use gfl_baselines::{FedClarConfig, FedClarRunner, FedProx, Scaffold};
use gfl_core::engine::form_groups_per_edge;
use gfl_core::grouping::{
    CdgGrouping, CovGrouping, GroupingAlgorithm, KldGrouping, RandomGrouping,
};
use gfl_core::history::RunHistory;
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_core::Group;

use crate::world::World;

/// A method from the paper's comparison (§7.1 "Baselines").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Classical FedAvg: random grouping, uniform sampling.
    FedAvg,
    /// FedProx (μ=0.1): random grouping, uniform sampling.
    FedProx,
    /// SCAFFOLD: random grouping, uniform sampling, costlier SecAgg.
    Scaffold,
    /// The paper's method: CoV grouping + ESRCoV sampling + stabilized
    /// aggregation.
    GroupFel,
    /// OUEA port: CDG grouping + uniform sampling + FedAvg.
    Ouea,
    /// SHARE port: KLD grouping + uniform sampling + FedAvg.
    Share,
    /// FedCLAR: random grouping, clusters at one third of the horizon.
    FedClar,
}

impl Method {
    pub const ALL: [Method; 7] = [
        Method::FedAvg,
        Method::FedProx,
        Method::Scaffold,
        Method::GroupFel,
        Method::Ouea,
        Method::Share,
        Method::FedClar,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Method::FedAvg => "FedAvg",
            Method::FedProx => "FedProx",
            Method::Scaffold => "SCAFFOLD",
            Method::GroupFel => "Group-FEL",
            Method::Ouea => "OUEA",
            Method::Share => "SHARE",
            Method::FedClar => "FedCLAR",
        }
    }
}

/// Group-size / CoV knobs shared across methods so that "all grouping
/// algorithms ... tend to generate similar group sizes" (§7.1).
#[derive(Debug, Clone, Copy)]
pub struct GroupingKnobs {
    pub target_size: usize,
    pub min_group_size: usize,
    pub max_cov: f32,
}

impl Default for GroupingKnobs {
    fn default() -> Self {
        Self {
            target_size: 6,
            min_group_size: 5,
            max_cov: 0.5,
        }
    }
}

/// Forms this method's groups on every edge server.
pub fn groups_for(method: Method, world: &World, knobs: GroupingKnobs) -> Vec<Group> {
    let algo: Box<dyn GroupingAlgorithm> = match method {
        Method::FedAvg | Method::FedProx | Method::Scaffold | Method::FedClar => {
            Box::new(RandomGrouping {
                group_size: knobs.target_size,
            })
        }
        Method::GroupFel => Box::new(CovGrouping {
            min_group_size: knobs.min_group_size,
            max_cov: knobs.max_cov,
        }),
        Method::Ouea => Box::new(CdgGrouping {
            group_size: knobs.target_size,
            kmeans_iters: 10,
        }),
        Method::Share => Box::new(KldGrouping {
            group_size: knobs.target_size,
        }),
    };
    form_groups_per_edge(
        algo.as_ref(),
        &world.topology,
        &world.partition.label_matrix,
        world.seed,
    )
}

/// Runs one method end to end and returns its trajectory.
pub fn run_method(method: Method, world: &World, knobs: GroupingKnobs) -> RunHistory {
    let groups = groups_for(method, world, knobs);
    match method {
        Method::GroupFel => {
            // The paper's default is *biased* prioritized sampling (Line 15
            // weighting); Eq. 4/35 corrections are studied separately in
            // the ablation_weighting binary.
            let trainer = world.trainer(world.config(AggregationWeighting::Standard));
            trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov)
        }
        Method::FedAvg | Method::Ouea | Method::Share => {
            let trainer = world.trainer(world.config(AggregationWeighting::Standard));
            trainer.run(&groups, &FedAvg, SamplingStrategy::Random)
        }
        Method::FedProx => {
            let trainer = world.trainer(world.config(AggregationWeighting::Standard));
            trainer.run(&groups, &FedProx { mu: 0.1 }, SamplingStrategy::Random)
        }
        Method::Scaffold => {
            let trainer = world.trainer(world.config(AggregationWeighting::Standard));
            let strategy = Scaffold::new(world.model.param_len(), world.partition.num_clients());
            trainer.run(&groups, &strategy, SamplingStrategy::Random)
        }
        Method::FedClar => {
            let trainer = world.trainer(world.config(AggregationWeighting::Standard));
            let fc = FedClarConfig {
                cluster_at_round: world.scale.global_rounds / 3,
                num_clusters: 4,
                kmeans_iters: 10,
            };
            FedClarRunner::run(&trainer, &groups, &fc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{ExpScale, World};

    fn tiny_world() -> World {
        World::vision(
            0.3,
            5,
            ExpScale {
                clients: 12,
                edges: 2,
                dataset: 1500,
                global_rounds: 2,
                sampled_groups: 2,
                eval_every: 1,
                budget: 1e9,
            },
        )
    }

    #[test]
    fn every_method_has_a_distinct_name() {
        let mut names: Vec<&str> = Method::ALL.iter().map(Method::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Method::ALL.len());
    }

    #[test]
    fn groups_for_every_method_partition_the_world() {
        let world = tiny_world();
        let knobs = GroupingKnobs {
            target_size: 3,
            min_group_size: 2,
            max_cov: 0.8,
        };
        for method in Method::ALL {
            let groups = groups_for(method, &world, knobs);
            let total: usize = groups.iter().map(Vec::len).sum();
            assert_eq!(total, 12, "{} lost clients", method.name());
        }
    }

    #[test]
    fn run_method_completes_for_all_methods() {
        let world = tiny_world();
        let knobs = GroupingKnobs {
            target_size: 3,
            min_group_size: 2,
            max_cov: 0.8,
        };
        for method in Method::ALL {
            let h = run_method(method, &world, knobs);
            assert!(
                !h.records().is_empty(),
                "{} produced no history",
                method.name()
            );
            assert!(h.records().last().unwrap().accuracy.is_finite());
        }
    }
}
