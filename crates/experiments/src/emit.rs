//! Output helpers: aligned text tables to stdout, CSV files to `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Writes `contents` to `results/<name>.csv`, creating the directory.
/// Returns the path written.
pub fn write_csv(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, contents).expect("write results csv");
    path
}

/// Prints a header line followed by aligned numeric rows.
///
/// `header` and each row must have the same arity.
pub fn print_series(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), header.len(), "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ");
    }
    println!("{line}");
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ");
        }
        println!("{line}");
    }
}

/// Turns rows into CSV text with the given header.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a float at fixed precision (convenience for rows).
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let rows = vec![
            vec!["1".to_string(), "0.5".to_string()],
            vec!["2".to_string(), "0.75".to_string()],
        ];
        let csv = to_csv(&["x", "y"], &rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["x,y", "1,0.5", "2,0.75"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(-0.5, 3), "-0.500");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn print_series_checks_arity() {
        print_series("t", &["a", "b"], &[vec!["1".to_string()]]);
    }

    #[test]
    fn write_csv_creates_file() {
        let path = write_csv("emit_test_artifact", "a,b\n1,2\n");
        assert!(path.exists());
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("a,b"));
        let _ = std::fs::remove_file(path);
    }
}
