//! Federation worlds mirroring the paper's experimental setups (§7.1–§7.2).

use gfl_core::engine::{GroupFelConfig, Trainer};
use gfl_core::sampling::AggregationWeighting;
use gfl_data::{ClientPartition, Dataset, PartitionSpec, SyntheticSpec};
use gfl_nn::sgd::LrSchedule;
use gfl_nn::Network;
use gfl_sim::{Task, Topology};

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExpScale {
    /// Total clients across all edge servers (paper: 300).
    pub clients: usize,
    /// Edge servers (paper: 3).
    pub edges: usize,
    /// Generated dataset size before the train/test split.
    pub dataset: usize,
    /// Global rounds `T`.
    pub global_rounds: usize,
    /// Groups sampled per round `S` (paper: 12 of ~60).
    pub sampled_groups: usize,
    /// Evaluation cadence.
    pub eval_every: usize,
    /// Cost budget (paper: 10⁶ emulated seconds for Table 1).
    pub budget: f64,
}

impl ExpScale {
    /// Reduced scale: every qualitative shape in minutes.
    pub fn small() -> Self {
        Self {
            clients: 120,
            edges: 3,
            dataset: 22_000,
            global_rounds: 60,
            sampled_groups: 4,
            eval_every: 2,
            budget: 1.2e5,
        }
    }

    /// The paper's full §7.2 scale. The budget is scaled so that, like the
    /// paper's plots, it ends in the pre-saturation regime of our (easier)
    /// synthetic task — at 10⁶ every method saturates and the efficiency
    /// comparison degenerates.
    pub fn paper() -> Self {
        Self {
            clients: 300,
            edges: 3,
            dataset: 48_000,
            global_rounds: 200,
            sampled_groups: 12,
            eval_every: 2,
            budget: 4.0e5,
        }
    }

    /// Reads `GFL_SCALE` (`small` | `paper`), defaulting to small.
    pub fn from_env() -> Self {
        match std::env::var("GFL_SCALE").as_deref() {
            Ok("paper") => Self::paper(),
            _ => Self::small(),
        }
    }
}

/// A fully materialized federation: data, partition, topology, model.
pub struct World {
    pub train: Dataset,
    pub test: Dataset,
    pub partition: ClientPartition,
    pub topology: Topology,
    pub model: Network,
    pub task: Task,
    pub scale: ExpScale,
    pub seed: u64,
}

impl World {
    /// The CIFAR-10-like world of §7.2: Dirichlet(α) skew, 20–200 samples
    /// per client, vision model.
    pub fn vision(alpha: f64, seed: u64, scale: ExpScale) -> Self {
        let spec = SyntheticSpec::vision_like();
        let data = spec.generate(scale.dataset, seed);
        let (train, test) = data.split_holdout(6);
        let pspec = PartitionSpec {
            num_clients: scale.clients,
            alpha,
            min_size: 20,
            max_size: 200,
            seed,
        };
        let partition = ClientPartition::dirichlet(&train, &pspec);
        let topology = Topology::even_split(scale.edges, partition.sizes());
        Self {
            train,
            test,
            partition,
            topology,
            model: gfl_nn::zoo::vision_model(),
            task: Task::Vision,
            scale,
            seed,
        }
    }

    /// The Speech-Commands-like world of §7.3.2: 35 classes, extreme skew
    /// (α=0.01 means each client holds ≤5 label types).
    pub fn speech(alpha: f64, seed: u64, scale: ExpScale) -> Self {
        let spec = SyntheticSpec::speech_like();
        let data = spec.generate(scale.dataset, seed);
        let (train, test) = data.split_holdout(6);
        let pspec = PartitionSpec {
            num_clients: scale.clients,
            alpha,
            min_size: 20,
            max_size: 200,
            seed,
        };
        let partition = ClientPartition::dirichlet(&train, &pspec);
        let topology = Topology::even_split(scale.edges, partition.sizes());
        Self {
            train,
            test,
            partition,
            topology,
            model: gfl_nn::zoo::speech_model(),
            task: Task::Speech,
            scale,
            seed,
        }
    }

    /// The paper's training hyperparameters (K=5, E=2) at this world's
    /// scale, with a weighting override per method.
    pub fn config(&self, weighting: AggregationWeighting) -> GroupFelConfig {
        GroupFelConfig {
            global_rounds: self.scale.global_rounds,
            group_rounds: 5,
            local_rounds: 2,
            sampled_groups: self.scale.sampled_groups,
            batch_size: 32,
            lr: LrSchedule::Constant(0.025),
            weighting,
            eval_every: self.scale.eval_every,
            seed: self.seed,
            task: self.task,
            cost_budget: Some(self.scale.budget),
            secure_aggregation: false,
            dropout_prob: 0.0,
        }
    }

    /// Builds a trainer over clones of this world's data.
    pub fn trainer(&self, config: GroupFelConfig) -> Trainer {
        Trainer::new(
            config,
            self.model.clone(),
            self.train.clone(),
            self.partition.clone(),
            self.test.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExpScale {
        ExpScale {
            clients: 12,
            edges: 2,
            dataset: 1200,
            global_rounds: 2,
            sampled_groups: 2,
            eval_every: 1,
            budget: 1e9,
        }
    }

    #[test]
    fn vision_world_matches_paper_shape() {
        let w = World::vision(0.1, 1, tiny_scale());
        assert_eq!(w.train.num_classes(), 10);
        assert_eq!(w.model.input_dim(), w.train.feature_dim());
        assert_eq!(w.partition.num_clients(), 12);
        assert_eq!(w.topology.num_edges(), 2);
        assert!(matches!(w.task, Task::Vision));
    }

    #[test]
    fn speech_world_has_35_classes() {
        let w = World::speech(0.05, 2, tiny_scale());
        assert_eq!(w.train.num_classes(), 35);
        assert_eq!(w.model.num_classes(), 35);
        assert!(matches!(w.task, Task::Speech));
    }

    #[test]
    fn config_carries_paper_hyperparameters() {
        let w = World::vision(0.1, 3, tiny_scale());
        let cfg = w.config(gfl_core::sampling::AggregationWeighting::Standard);
        assert_eq!(cfg.group_rounds, 5, "K=5 per §7.2");
        assert_eq!(cfg.local_rounds, 2, "E=2 per §7.2");
        assert_eq!(cfg.sampled_groups, 2);
        assert_eq!(cfg.cost_budget, Some(1e9));
    }

    #[test]
    fn scale_from_env_defaults_small() {
        // (Does not set the env var to avoid cross-test interference.)
        let s = ExpScale::small();
        assert!(s.clients < ExpScale::paper().clients);
        assert!(s.budget < ExpScale::paper().budget + 1.0);
    }

    #[test]
    fn worlds_are_deterministic_in_seed() {
        let a = World::vision(0.1, 9, tiny_scale());
        let b = World::vision(0.1, 9, tiny_scale());
        assert_eq!(a.partition.indices, b.partition.indices);
        assert_eq!(a.train.features().as_slice(), b.train.features().as_slice());
    }
}
