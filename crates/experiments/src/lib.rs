//! Shared machinery for the experiment binaries — one binary per table /
//! figure of the paper's §7 (see DESIGN.md §3 for the index).
//!
//! Every binary:
//! 1. builds a *world* (synthetic federation mirroring the paper's setup),
//! 2. runs one or more methods through the Algorithm-1 engine,
//! 3. prints the same rows/series the paper plots, and
//! 4. writes a CSV under `results/`.
//!
//! Scale is controlled by `GFL_SCALE`:
//! * `small` (default) — a reduced federation that reproduces every *shape*
//!   in minutes on a laptop (120 clients, 3 edges, shortened horizon).
//! * `paper` — the paper's full §7.2 scale (300 clients, 10⁶ budget).

pub mod emit;
pub mod methods;
pub mod world;

pub use emit::{print_series, write_csv};
pub use methods::{run_method, Method};
pub use world::{ExpScale, World};
