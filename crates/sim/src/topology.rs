//! The cloud–edge–client hierarchy of Fig. 1.
//!
//! A [`Topology`] records which clients each edge server manages and how
//! many samples each client holds. Group formation is *scoped per edge
//! server* (Algorithm 1, Lines 2–3: each edge server groups only its own
//! clients), so the trainer iterates edges and hands each one's client
//! roster to the grouping algorithm.

use serde::{Deserialize, Serialize};

/// Global client identifier.
pub type ClientId = usize;
/// Edge-server identifier.
pub type EdgeId = usize;

/// Static description of the client–edge–cloud hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// `edge_clients[j]` = client ids managed by edge server `j`.
    edge_clients: Vec<Vec<ClientId>>,
    /// `samples[i]` = number of training samples on client `i` (`n_i`).
    samples: Vec<usize>,
}

impl Topology {
    /// Builds a topology from explicit edge rosters and client sample counts.
    ///
    /// # Panics
    /// Panics if a client appears on two edges, an id is out of range, or
    /// some client is unassigned.
    pub fn new(edge_clients: Vec<Vec<ClientId>>, samples: Vec<usize>) -> Self {
        let n = samples.len();
        let mut owner = vec![usize::MAX; n];
        for (j, clients) in edge_clients.iter().enumerate() {
            for &c in clients {
                assert!(c < n, "client id {c} out of range");
                assert_eq!(owner[c], usize::MAX, "client {c} assigned to two edges");
                owner[c] = j;
            }
        }
        assert!(
            owner.iter().all(|&o| o != usize::MAX),
            "every client must be assigned to an edge server"
        );
        Self {
            edge_clients,
            samples,
        }
    }

    /// Splits `samples.len()` clients evenly across `num_edges` edge servers
    /// in id order — the paper's setup ("three edge servers and each of them
    /// has 100 clients").
    pub fn even_split(num_edges: usize, samples: Vec<usize>) -> Self {
        assert!(num_edges > 0, "need at least one edge server");
        let n = samples.len();
        let mut edge_clients = vec![Vec::new(); num_edges];
        for c in 0..n {
            edge_clients[c * num_edges / n.max(1)].push(c);
        }
        Self::new(edge_clients, samples)
    }

    /// Number of edge servers.
    pub fn num_edges(&self) -> usize {
        self.edge_clients.len()
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.samples.len()
    }

    /// The clients managed by edge server `j`.
    pub fn clients_of(&self, j: EdgeId) -> &[ClientId] {
        &self.edge_clients[j]
    }

    /// Sample count `n_i` of client `i`.
    pub fn samples_of(&self, i: ClientId) -> usize {
        self.samples[i]
    }

    /// Total samples across all clients (`n`).
    pub fn total_samples(&self) -> usize {
        self.samples.iter().sum()
    }

    /// All sample counts.
    pub fn all_samples(&self) -> &[usize] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_partitions_everyone() {
        let t = Topology::even_split(3, vec![10; 300]);
        assert_eq!(t.num_edges(), 3);
        let total: usize = (0..3).map(|j| t.clients_of(j).len()).sum();
        assert_eq!(total, 300);
        for j in 0..3 {
            assert_eq!(t.clients_of(j).len(), 100);
        }
    }

    #[test]
    fn uneven_split_is_balanced() {
        let t = Topology::even_split(3, vec![1; 10]);
        let sizes: Vec<usize> = (0..3).map(|j| t.clients_of(j).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn totals() {
        let t = Topology::even_split(2, vec![5, 10, 15, 20]);
        assert_eq!(t.total_samples(), 50);
        assert_eq!(t.samples_of(2), 15);
    }

    #[test]
    #[should_panic(expected = "assigned to two edges")]
    fn duplicate_assignment_panics() {
        Topology::new(vec![vec![0, 1], vec![1]], vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "must be assigned")]
    fn unassigned_client_panics() {
        Topology::new(vec![vec![0]], vec![1, 1]);
    }
}
