//! The cost model of §3.2, calibrated to the shapes of Fig. 8.
//!
//! Two parametric families cover everything the paper charges for:
//!
//! * `H_i(n_i) = a·n_i + b` — time for client `i` to iterate its trainset
//!   once (linear in data volume; §3.2).
//! * `O_g(|g|) = c₂·|g|² + c₁·|g| + c₀` — per-client group-operation
//!   overhead (quadratic in group size; §3.2, citing Bonawitz'17/FLAME).
//!
//! The [`rpi`] tables encode coefficients for the eight Fig. 8 series
//! ({CIFAR, SC} × {training, backdoor detection, SecAgg, SCAFFOLD SecAgg}).
//! Absolute values are chosen to land in the same 0–50 s range the paper
//! plots over `x ∈ [0, 50]`; the *orderings* (SCAFFOLD SecAgg > SecAgg >
//! backdoor > training; CIFAR > SC) are the behaviour the experiments
//! depend on. Validation that real protocol work scales the same way lives
//! in this module's tests, which compare against `gfl-secagg` /
//! `gfl-defense` operation counters.

use serde::{Deserialize, Serialize};

/// `f(n) = a·n + b`, in emulated seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearCost {
    pub a: f64,
    pub b: f64,
}

impl LinearCost {
    pub fn eval(&self, n: usize) -> f64 {
        self.a * n as f64 + self.b
    }
}

/// `f(g) = c2·g² + c1·g + c0`, in emulated seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadraticCost {
    pub c2: f64,
    pub c1: f64,
    pub c0: f64,
}

impl QuadraticCost {
    pub fn eval(&self, group_size: usize) -> f64 {
        let g = group_size as f64;
        self.c2 * g * g + self.c1 * g + self.c0
    }
}

/// The two evaluation tasks of §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// CIFAR-10 stand-in — "relatively heavy load tasks" (3-block ResNet).
    Vision,
    /// Speech-Commands stand-in — "lightweight tasks" (5-layer CNN).
    Speech,
}

/// The group operations measured in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupOpKind {
    /// Bonawitz-style pairwise-mask secure aggregation.
    SecureAggregation,
    /// SecAgg under SCAFFOLD, which ships both the model delta and the
    /// control-variate delta → roughly double the masked payload.
    ScaffoldSecureAggregation,
    /// FLAME-style backdoor detection.
    BackdoorDetection,
}

/// Calibrated per-task cost tables (see [`rpi`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    pub task: Task,
    pub training: LinearCost,
    pub secagg: QuadraticCost,
    pub scaffold_secagg: QuadraticCost,
    pub backdoor: QuadraticCost,
}

impl CostModel {
    /// The calibrated model for a task.
    pub fn for_task(task: Task) -> Self {
        match task {
            Task::Vision => rpi::VISION,
            Task::Speech => rpi::SPEECH,
        }
    }

    /// Per-client group-operation cost `O_g(|g|)` for one group round.
    pub fn group_op(&self, kind: GroupOpKind, group_size: usize) -> f64 {
        match kind {
            GroupOpKind::SecureAggregation => self.secagg.eval(group_size),
            GroupOpKind::ScaffoldSecureAggregation => self.scaffold_secagg.eval(group_size),
            GroupOpKind::BackdoorDetection => self.backdoor.eval(group_size),
        }
    }

    /// Training cost `H_i(n_i)` for one local epoch over `n_i` samples.
    pub fn training(&self, samples: usize) -> f64 {
        self.training.eval(samples)
    }

    /// Emulated seconds for *measured* defense work — the operation
    /// counters `gfl-defense` reports when the FLAME-style filter actually
    /// runs (as opposed to the static per-group-round `BackdoorDetection`
    /// charge, which emulates the op whether or not it fires). Rates are
    /// anchored to the calibrated backdoor quadratic's coefficients: a
    /// pairwise similarity evaluation costs `8·c₂` and a norm pass `c₁`,
    /// so the measured total stays quadratic in group size like `O_g` and
    /// keeps the Vision > Speech ordering.
    pub fn defense_seconds(&self, similarity_evals: u64, norm_passes: u64) -> f64 {
        8.0 * self.backdoor.c2 * similarity_evals as f64 + self.backdoor.c1 * norm_passes as f64
    }

    /// Cost charged to one *group round* for one group (the inner term of
    /// Eq. 5): `Σ_{c_i∈g} (O_g(|g|) + E·H_i(n_i))`, where `ops` lists the
    /// group operations performed each group round.
    pub fn group_round_cost(
        &self,
        client_samples: &[usize],
        local_rounds: usize,
        ops: &[GroupOpKind],
    ) -> f64 {
        let g = client_samples.len();
        let per_client_ops: f64 = ops.iter().map(|&k| self.group_op(k, g)).sum();
        client_samples
            .iter()
            .map(|&n_i| per_client_ops + local_rounds as f64 * self.training(n_i))
            .sum()
    }
}

/// Raspberry-Pi-4 calibrated coefficient tables (Fig. 8 shapes).
pub mod rpi {
    use super::*;

    /// CIFAR-10-like task on RPi 4.
    pub const VISION: CostModel = CostModel {
        task: Task::Vision,
        // ~15 s to train one epoch over 50 samples.
        training: LinearCost { a: 0.30, b: 0.5 },
        // ~42 s of SecAgg overhead per client in a 50-client group.
        secagg: QuadraticCost {
            c2: 0.016,
            c1: 0.04,
            c0: 0.1,
        },
        // SCAFFOLD doubles the masked payload → steepest curve (~52 s @ 50).
        scaffold_secagg: QuadraticCost {
            c2: 0.020,
            c1: 0.04,
            c0: 0.1,
        },
        // Backdoor detection sits between training and SecAgg (~23 s @ 50).
        backdoor: QuadraticCost {
            c2: 0.008,
            c1: 0.05,
            c0: 0.1,
        },
    };

    /// Speech-Commands-like task on RPi 4 (lighter model ⇒ every curve is
    /// proportionally lower).
    pub const SPEECH: CostModel = CostModel {
        task: Task::Speech,
        training: LinearCost { a: 0.10, b: 0.2 },
        secagg: QuadraticCost {
            c2: 0.008,
            c1: 0.03,
            c0: 0.05,
        },
        scaffold_secagg: QuadraticCost {
            c2: 0.011,
            c1: 0.03,
            c0: 0.05,
        },
        backdoor: QuadraticCost {
            c2: 0.004,
            c1: 0.03,
            c0: 0.05,
        },
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_keep_paper_ordering_over_fig8_range() {
        for model in [rpi::VISION, rpi::SPEECH] {
            for g in 5..=50usize {
                let train = model.training(g); // Fig 8 x-axis doubles as data size
                let backdoor = model.group_op(GroupOpKind::BackdoorDetection, g);
                let secagg = model.group_op(GroupOpKind::SecureAggregation, g);
                let scaffold = model.group_op(GroupOpKind::ScaffoldSecureAggregation, g);
                assert!(
                    scaffold > secagg && secagg > backdoor,
                    "ordering broken at g={g} for {:?}",
                    model.task
                );
                // Group ops overtake training for large groups (the paper's
                // central motivation).
                if g >= 40 {
                    assert!(
                        secagg > train,
                        "SecAgg must dominate training at g={g} ({:?})",
                        model.task
                    );
                }
            }
        }
    }

    #[test]
    fn vision_costs_exceed_speech() {
        for g in [5usize, 20, 50] {
            assert!(rpi::VISION.training(g) > rpi::SPEECH.training(g));
            assert!(
                rpi::VISION.group_op(GroupOpKind::SecureAggregation, g)
                    > rpi::SPEECH.group_op(GroupOpKind::SecureAggregation, g)
            );
        }
    }

    #[test]
    fn group_round_cost_implements_eq5_inner_term() {
        let m = CostModel::for_task(Task::Vision);
        let samples = [10usize, 20, 30];
        let e = 2;
        let ops = [GroupOpKind::SecureAggregation];
        let got = m.group_round_cost(&samples, e, &ops);
        let og = m.group_op(GroupOpKind::SecureAggregation, 3);
        let want: f64 = samples.iter().map(|&n| og + e as f64 * m.training(n)).sum();
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn empty_group_costs_nothing() {
        let m = CostModel::for_task(Task::Speech);
        assert_eq!(
            m.group_round_cost(&[], 5, &[GroupOpKind::SecureAggregation]),
            0.0
        );
    }

    #[test]
    fn quadratic_shape_matches_real_secagg_work() {
        // The analytic model assumes per-client SecAgg work grows linearly
        // with |g| (total quadratic). Verify against the real protocol's
        // operation counters.
        let d = 16;
        let mut per_client = Vec::new();
        for &n in &[4usize, 8, 16, 32] {
            let session = gfl_secagg::SecAggSession::new((0..n as u32).collect(), d, 1);
            let update = vec![0.5f32; d];
            let (_, cost) = session.mask(0, &update);
            per_client.push(cost.prg_expansions as f64);
        }
        // Doubling |g| should roughly double per-client mask work.
        for w in per_client.windows(2) {
            let ratio = w[1] / w[0];
            assert!(
                (1.8..=2.4).contains(&ratio),
                "per-client SecAgg growth ratio {ratio}"
            );
        }
    }

    #[test]
    fn quadratic_shape_matches_real_defense_work() {
        let mut totals = Vec::new();
        for &n in &[4usize, 8, 16] {
            let mut updates = vec![vec![1.0f32, 0.5]; n];
            let report =
                gfl_defense::filter_updates(&mut updates, &gfl_defense::DefenseConfig::default());
            totals.push(report.cost.similarity_evals as f64);
        }
        // Total pairwise work quadruples when the group doubles.
        for w in totals.windows(2) {
            let ratio = w[1] / w[0];
            assert!(
                (3.0..=5.0).contains(&ratio),
                "total defense growth ratio {ratio}"
            );
        }
    }
}
