//! Deterministic discrete-event scheduling for the semi-async runtime.
//!
//! The semi-async engine path (ROADMAP item 2; HierFAVG, Liu et al.
//! 1905.06641) replaces the lockstep round barrier with events on an
//! emulated clock: client reports, group-round closes, and edge→cloud
//! arrivals are all timed by the [`crate::cost`] / [`crate::comm`] models
//! and popped in time order. Determinism is non-negotiable, so the queue
//! never consults the wall clock or an RNG:
//!
//! * time is an `f64` ordered via `total_cmp` (every value the cost model
//!   produces is finite; `total_cmp` makes even pathological inputs
//!   totally ordered instead of panicking),
//! * ties are broken by the stable identity triple
//!   `(round, edge-or-group, client)` — two events at the same instant
//!   always pop in the same order, on every thread count and across
//!   checkpoint resume.
//!
//! The queue is a plain binary min-heap over that composite key; payloads
//! are generic so the engine can schedule whatever it likes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Stable identity of an event, used only for tie-breaking at equal time.
/// Fields are ordered most- to least-significant: global round, then the
/// edge or group index, then the client index (0 for non-client events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    pub round: u64,
    pub actor: u64,
    pub client: u64,
}

impl EventId {
    pub fn new(round: usize, actor: usize, client: usize) -> Self {
        Self {
            round: round as u64,
            actor: actor as u64,
            client: client as u64,
        }
    }
}

/// One scheduled event: fires at `time`, identity breaks ties.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<T> {
    pub time: f64,
    pub id: EventId,
    pub payload: T,
}

// BinaryHeap is a max-heap; reverse the comparison to pop earliest-first.
// Equal (time, id) pairs are genuinely interchangeable for scheduling, so
// payloads do not participate in the order.
impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal && self.id == other.id
    }
}

impl<T> Eq for ScheduledEvent<T> {}

impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Deterministic priority queue of timed events.
///
/// `pop` returns events in non-decreasing `time`; events at identical
/// times pop in ascending [`EventId`] order. Scheduling order never
/// affects pop order, so producers may push from any traversal.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }

    /// Schedules `payload` at `time` with the given tie-break identity.
    pub fn push(&mut self, time: f64, id: EventId, payload: T) {
        self.heap.push(ScheduledEvent { time, id, payload });
    }

    /// Removes and returns the earliest event (stable-tie-broken).
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        self.heap.pop()
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains every pending event in pop order.
    pub fn drain_ordered(&mut self) -> Vec<ScheduledEvent<T>> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(round: usize, actor: usize, client: usize) -> EventId {
        EventId::new(round, actor, client)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, id(0, 0, 0), "c");
        q.push(1.0, id(0, 0, 1), "a");
        q.push(2.0, id(0, 0, 2), "b");
        let order: Vec<_> = q.drain_ordered().iter().map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_break_ties_by_id() {
        let mut q = EventQueue::new();
        // Push in scrambled order; the (round, actor, client) triple must
        // decide, lexicographically.
        q.push(5.0, id(1, 0, 0), "round1");
        q.push(5.0, id(0, 2, 0), "actor2");
        q.push(5.0, id(0, 0, 7), "client7");
        q.push(5.0, id(0, 0, 3), "client3");
        let order: Vec<_> = q.drain_ordered().iter().map(|e| e.payload).collect();
        assert_eq!(order, vec!["client3", "client7", "actor2", "round1"]);
    }

    #[test]
    fn insertion_order_never_matters() {
        let events = [
            (2.0, id(0, 1, 0)),
            (2.0, id(0, 0, 5)),
            (1.5, id(3, 0, 0)),
            (2.0, id(0, 0, 2)),
            (0.5, id(9, 9, 9)),
        ];
        // Try several permutations; pop order must be identical.
        let reference: Vec<_> = {
            let mut q = EventQueue::new();
            for (i, &(t, eid)) in events.iter().enumerate() {
                q.push(t, eid, i);
            }
            q.drain_ordered().iter().map(|e| (e.time, e.id)).collect()
        };
        for rot in 1..events.len() {
            let mut q = EventQueue::new();
            for (i, &(t, eid)) in events.iter().enumerate().skip(rot) {
                q.push(t, eid, i);
            }
            for (i, &(t, eid)) in events.iter().enumerate().take(rot) {
                q.push(t, eid, i);
            }
            let got: Vec<_> = q.drain_ordered().iter().map(|e| (e.time, e.id)).collect();
            assert_eq!(got, reference, "rotation {rot} changed pop order");
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(4.0, id(0, 0, 0), ());
        q.push(2.0, id(0, 0, 1), ());
        assert_eq!(q.peek_time(), Some(2.0));
        q.pop();
        assert_eq!(q.peek_time(), Some(4.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn total_cmp_orders_non_finite_times_without_panicking() {
        // The engine only schedules finite times, but the queue must stay
        // totally ordered even if a pathological config sneaks an ∞ in
        // (e.g. a disabled deadline modelled as +inf).
        let mut q = EventQueue::new();
        q.push(f64::INFINITY, id(0, 0, 0), "inf");
        q.push(1.0, id(0, 0, 1), "one");
        q.push(0.0, id(0, 0, 2), "zero");
        let order: Vec<_> = q.drain_ordered().iter().map(|e| e.payload).collect();
        assert_eq!(order, vec!["zero", "one", "inf"]);
    }
}
