//! Communication and wall-clock modelling — the §2.3 measurement axes the
//! paper's related work optimizes (training time [24], traffic [26, 27]).
//!
//! The emulated-seconds cost of [`crate::cost`] charges *device effort*
//! (Eq. 5). This module adds the orthogonal axes a deployment also cares
//! about: bytes moved per link and synchronous wall-clock time including
//! stragglers. Hierarchy matters here: the client↔edge hop is cheap and
//! parallel across groups, while the edge↔cloud hop only carries one group
//! model per sampled group per global round — which is exactly the
//! scalability argument for HFL (§1).

use serde::{Deserialize, Serialize};

/// One directed network link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkModel {
    /// Sustained throughput, bytes per second.
    pub bytes_per_s: f64,
    /// Per-message latency, seconds.
    pub latency_s: f64,
}

impl LinkModel {
    /// Seconds to move `bytes` over this link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bytes_per_s
    }
}

/// Link pair for the two hops of the Fig. 1 hierarchy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CommModel {
    /// Client ↔ edge (both directions assumed symmetric): WiFi-class.
    pub client_edge: LinkModel,
    /// Edge ↔ cloud: WAN-class.
    pub edge_cloud: LinkModel,
}

impl CommModel {
    /// Edge-deployment defaults: 20 MB/s WiFi at 5 ms, 5 MB/s WAN at 40 ms.
    pub fn edge_default() -> Self {
        Self {
            client_edge: LinkModel {
                bytes_per_s: 20e6,
                latency_s: 0.005,
            },
            edge_cloud: LinkModel {
                bytes_per_s: 5e6,
                latency_s: 0.040,
            },
        }
    }

    /// Serialized size of a model with `params` f32 parameters.
    pub fn model_bytes(params: usize) -> u64 {
        4 * params as u64
    }

    /// Bytes a single client moves in one *global* round: one global-model
    /// download plus `K` masked-update uploads (`payload_factor` = 2.0 for
    /// SCAFFOLD's variate-carrying uploads).
    pub fn client_bytes_per_round(
        &self,
        params: usize,
        group_rounds: usize,
        payload_factor: f64,
    ) -> u64 {
        let model = Self::model_bytes(params) as f64;
        // download x_t once + download x_g per group round after the first,
        // + upload per group round.
        let downloads = model * group_rounds as f64;
        let uploads = model * payload_factor * group_rounds as f64;
        (downloads + uploads) as u64
    }

    /// Bytes one *group* moves over the edge↔cloud link per global round:
    /// one group-model upload + one global-model download.
    pub fn group_cloud_bytes(&self, params: usize) -> u64 {
        2 * Self::model_bytes(params)
    }

    /// Synchronous wall-clock time of one global round.
    ///
    /// Per group: `K` rounds of (slowest client's compute + up/down link
    /// transfer); groups run in parallel so the round takes the slowest
    /// group, then one edge→cloud exchange.
    ///
    /// `client_compute[g][i]` is the per-group-round compute time of client
    /// `i` of group `g` (already including straggler slowdowns).
    pub fn global_round_wall_clock(
        &self,
        client_compute: &[Vec<f64>],
        params: usize,
        group_rounds: usize,
        payload_factor: f64,
    ) -> f64 {
        let model_bytes = (Self::model_bytes(params) as f64 * payload_factor) as u64;
        let per_group = client_compute.iter().map(|clients| {
            let slowest = clients.iter().copied().fold(0.0f64, f64::max);
            let hop = self.client_edge.transfer_time(model_bytes)
                + self.client_edge.transfer_time(Self::model_bytes(params));
            group_rounds as f64 * (slowest + hop)
        });
        let slowest_group = per_group.fold(0.0f64, f64::max);
        slowest_group
            + self
                .edge_cloud
                .transfer_time(self.group_cloud_bytes(params))
    }
}

/// Accounting of one edge→cloud upload under retries (see
/// [`CommModel::upload_with_retries`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryOutcome {
    /// Transfer attempts made (initial + retries), successful or not.
    pub attempts: u32,
    /// Total wall-clock charged: every attempt's transfer time plus the
    /// exponential backoff waits between attempts.
    pub seconds: f64,
    /// Total bytes put on the wire (failed attempts still move bytes).
    pub bytes: u64,
    /// Whether the payload eventually arrived. `false` means the retry
    /// budget was exhausted and the upload is lost — the caller still owes
    /// the wall-clock and bytes above.
    pub delivered: bool,
}

impl CommModel {
    /// Charges an edge→cloud upload that fails `failed_attempts` times
    /// before succeeding (or is lost once failures exceed `max_retries`).
    ///
    /// Each attempt pays the full transfer over the edge↔cloud link; after
    /// the i-th failure the sender backs off `backoff_base_s · 2^i` seconds
    /// before retrying, with every individual wait clamped to
    /// `max_backoff_s` so pathological fault rates cannot charge unbounded
    /// emulated time. Lost uploads (every retry failed) thus charge
    /// realistic wall-clock and traffic for nothing — the failure mode a
    /// deployment actually pays for.
    pub fn upload_with_retries(
        &self,
        payload: u64,
        failed_attempts: u32,
        max_retries: u32,
        backoff_base_s: f64,
        max_backoff_s: f64,
    ) -> RetryOutcome {
        let delivered = failed_attempts <= max_retries;
        let failures = failed_attempts.min(max_retries + 1);
        let attempts = if delivered { failures + 1 } else { failures };
        let transfer = self.edge_cloud.transfer_time(payload);
        let mut seconds = f64::from(attempts) * transfer;
        // One backoff wait precedes each retry (attempts − 1 of them).
        for i in 0..attempts.saturating_sub(1) {
            seconds += (backoff_base_s * f64::from(1u32 << i.min(16))).min(max_backoff_s);
        }
        RetryOutcome {
            attempts,
            seconds,
            bytes: u64::from(attempts) * payload,
            delivered,
        }
    }
}

/// Multiplicative compute slowdowns per client (device heterogeneity).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StragglerModel {
    slowdowns: Vec<f64>,
}

impl StragglerModel {
    /// No heterogeneity: every client at 1.0×.
    pub fn uniform(clients: usize) -> Self {
        Self {
            slowdowns: vec![1.0; clients],
        }
    }

    /// Deterministic heavy-tailed slowdowns: a `fraction` of clients run at
    /// `factor`× (e.g. 10% of devices 4× slower — the classic straggler
    /// profile). Client assignment is seeded.
    pub fn heavy_tail(clients: usize, fraction: f64, factor: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        assert!(factor >= 1.0);
        let mut slowdowns = vec![1.0; clients];
        // Simple multiplicative-hash selection keeps this dependency-free.
        let slow_count = (clients as f64 * fraction).round() as usize;
        let mut order: Vec<usize> = (0..clients).collect();
        order.sort_by_key(|&c| (c as u64 ^ seed).wrapping_mul(0x9E3779B97F4A7C15));
        for &c in order.iter().take(slow_count) {
            slowdowns[c] = factor;
        }
        Self { slowdowns }
    }

    pub fn slowdown(&self, client: usize) -> f64 {
        self.slowdowns[client]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency_and_throughput() {
        let link = LinkModel {
            bytes_per_s: 1e6,
            latency_s: 0.01,
        };
        assert!((link.transfer_time(1_000_000) - 1.01).abs() < 1e-9);
        assert!((link.transfer_time(0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn model_bytes_is_4_per_param() {
        assert_eq!(CommModel::model_bytes(1000), 4000);
    }

    #[test]
    fn scaffold_payload_doubles_uplink() {
        let m = CommModel::edge_default();
        let plain = m.client_bytes_per_round(10_000, 5, 1.0);
        let scaffold = m.client_bytes_per_round(10_000, 5, 2.0);
        assert!(scaffold > plain);
        // uploads double, downloads unchanged.
        let model = CommModel::model_bytes(10_000) as f64;
        assert_eq!((scaffold - plain) as f64, model * 5.0);
    }

    #[test]
    fn wall_clock_is_dominated_by_slowest_group_and_client() {
        let m = CommModel::edge_default();
        let fast = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let straggling = vec![vec![1.0, 10.0], vec![1.0, 1.0]];
        let t_fast = m.global_round_wall_clock(&fast, 10_000, 5, 1.0);
        let t_slow = m.global_round_wall_clock(&straggling, 10_000, 5, 1.0);
        assert!(t_slow > t_fast + 40.0, "{t_fast} -> {t_slow}");
    }

    #[test]
    fn hierarchy_beats_flat_cloud_upload() {
        // The HFL scalability argument: per global round only |S_t| group
        // models cross the WAN, not every client model.
        let m = CommModel::edge_default();
        let params = 20_000;
        let clients_per_group = 6;
        let groups = 4;
        let hierarchical_wan = groups as u64 * m.group_cloud_bytes(params);
        let flat_wan = (groups * clients_per_group) as u64 * 2 * CommModel::model_bytes(params);
        assert!(hierarchical_wan < flat_wan / 2);
    }

    #[test]
    fn retry_free_upload_charges_one_transfer() {
        let m = CommModel::edge_default();
        let out = m.upload_with_retries(5_000_000, 0, 3, 0.5, 60.0);
        assert_eq!(out.attempts, 1);
        assert!(out.delivered);
        assert_eq!(out.bytes, 5_000_000);
        assert!((out.seconds - m.edge_cloud.transfer_time(5_000_000)).abs() < 1e-12);
    }

    #[test]
    fn retries_back_off_exponentially() {
        let m = CommModel::edge_default();
        let transfer = m.edge_cloud.transfer_time(1_000_000);
        let out = m.upload_with_retries(1_000_000, 2, 3, 0.5, 60.0);
        assert_eq!(out.attempts, 3);
        assert!(out.delivered);
        assert_eq!(out.bytes, 3_000_000);
        // 3 transfers + backoffs of 0.5 and 1.0 seconds.
        assert!((out.seconds - (3.0 * transfer + 0.5 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn exhausted_retries_lose_the_upload_but_charge_for_it() {
        let m = CommModel::edge_default();
        let out = m.upload_with_retries(1_000_000, 4, 3, 0.5, 60.0);
        assert!(!out.delivered);
        // Initial attempt + 3 retries, all failed; no success transfer.
        assert_eq!(out.attempts, 4);
        assert_eq!(out.bytes, 4_000_000);
        // Same wire activity as a delivery on the final retry — only the
        // outcome of the last attempt differs.
        let lossless = m.upload_with_retries(1_000_000, 3, 3, 0.5, 60.0);
        assert!(lossless.delivered);
        assert_eq!(lossless.attempts, out.attempts);
        assert!((lossless.seconds - out.seconds).abs() < 1e-12);
    }

    #[test]
    fn backoff_waits_are_capped_at_max_backoff() {
        let m = CommModel::edge_default();
        let transfer = m.edge_cloud.transfer_time(1_000_000);
        // Base 0.5: waits would be 0.5, 1.0, 2.0, 4.0... — cap at 1.5 turns
        // the 3rd and later waits into exactly 1.5.
        let out = m.upload_with_retries(1_000_000, 4, 5, 0.5, 1.5);
        assert_eq!(out.attempts, 5);
        let expected = 5.0 * transfer + 0.5 + 1.0 + 1.5 + 1.5;
        assert!((out.seconds - expected).abs() < 1e-9, "{}", out.seconds);
    }

    #[test]
    fn high_attempt_counts_charge_bounded_time() {
        // Regression: before the cap, 40 failed attempts charged
        // ~2^16 · base seconds of backoff — pathological fault rates could
        // dominate the entire emulated budget. With the cap, total time is
        // bounded by attempts · (transfer + max_backoff_s).
        let m = CommModel::edge_default();
        let transfer = m.edge_cloud.transfer_time(1_000_000);
        let max_backoff = 30.0;
        let out = m.upload_with_retries(1_000_000, 64, 64, 0.5, max_backoff);
        assert_eq!(out.attempts, 65);
        let bound = f64::from(out.attempts) * (transfer + max_backoff);
        assert!(
            out.seconds <= bound,
            "charged {} s, cap-implied bound {} s",
            out.seconds,
            bound
        );
        // And the uncapped shape really would have exceeded it.
        let uncapped = m.upload_with_retries(1_000_000, 64, 64, 0.5, f64::INFINITY);
        assert!(uncapped.seconds > bound * 10.0);
    }

    #[test]
    fn straggler_model_marks_expected_fraction() {
        let s = StragglerModel::heavy_tail(100, 0.1, 4.0, 7);
        let slow = (0..100).filter(|&c| s.slowdown(c) > 1.0).count();
        assert_eq!(slow, 10);
        let u = StragglerModel::uniform(5);
        assert!((0..5).all(|c| u.slowdown(c) == 1.0));
    }

    #[test]
    fn straggler_selection_is_seed_deterministic() {
        let a = StragglerModel::heavy_tail(50, 0.2, 3.0, 1);
        let b = StragglerModel::heavy_tail(50, 0.2, 3.0, 1);
        let c = StragglerModel::heavy_tail(50, 0.2, 3.0, 2);
        let picks =
            |s: &StragglerModel| (0..50).filter(|&i| s.slowdown(i) > 1.0).collect::<Vec<_>>();
        assert_eq!(picks(&a), picks(&b));
        assert_ne!(picks(&a), picks(&c));
    }
}
