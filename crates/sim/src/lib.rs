//! Edge-computing simulation substrate: the cloud–edge–client topology and
//! the learning-cost emulation of §3.2 / §7.1.
//!
//! The paper measures per-client costs on Raspberry Pi 4 devices, fits
//! * a **linear** training cost `H_i(n_i) = a·n_i + b` and
//! * a **quadratic** group-operation cost `O_g(|g|) = c₂·|g|² + c₁·|g| + c₀`,
//!
//! and then runs every evaluation on *emulated* cost (accuracy-over-cost
//! plots), not wall-clock. We reproduce exactly that: [`cost`] carries the
//! calibrated coefficient tables (shaped after Fig. 8), [`ledger`]
//! accumulates Eq. 5, and [`topology`] models the client↔edge↔cloud
//! hierarchy of Fig. 1.

pub mod comm;
pub mod cost;
pub mod event;
pub mod ledger;
pub mod topology;

pub use comm::{CommModel, LinkModel, RetryOutcome, StragglerModel};
pub use cost::{CostModel, GroupOpKind, LinearCost, QuadraticCost, Task};
pub use event::{EventId, EventQueue, ScheduledEvent};
pub use ledger::{CostBreakdown, CostLedger};
pub use topology::{ClientId, EdgeId, Topology};
