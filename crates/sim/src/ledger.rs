//! Accumulates the total learning cost of Eq. 5 over a training run.
//!
//! `O = Σ_t Σ_{g∈S_t} K · Σ_{c_i∈g} (O_g(|g|) + E·H_i(n_i))`
//!
//! The trainer charges the ledger once per *(global round, group)*; the
//! ledger applies the `K` group-round multiplier and keeps a
//! training-vs-group-ops breakdown so experiments can report where the
//! budget went (the paper's Fig. 2(a) motivation).

use serde::{Deserialize, Serialize};

use crate::cost::{CostModel, GroupOpKind};

/// Where the emulated seconds went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Local-training seconds (`E·H_i` terms).
    pub training: f64,
    /// Group-operation seconds (`O_g` terms).
    pub group_ops: f64,
    /// Measured defense seconds (actual `gfl-defense` filter work, charged
    /// on top of the emulated `O_g` ops only when the filter really runs).
    pub defense: f64,
}

impl CostBreakdown {
    pub fn total(&self) -> f64 {
        self.training + self.group_ops + self.defense
    }
}

/// Running cost account for one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostLedger {
    model: CostModel,
    /// Group operations performed in every group round.
    ops: Vec<GroupOpKind>,
    breakdown: CostBreakdown,
    /// Total after each completed global round (for accuracy-vs-cost plots).
    round_totals: Vec<f64>,
    /// Bytes moved on client↔edge links (model downloads plus client
    /// uploads within groups), from `CommModel::client_bytes_per_round`.
    client_edge_bytes: u64,
    /// Bytes moved on edge↔cloud links (group uploads including retry
    /// retransmissions, plus broadcast downloads).
    edge_cloud_bytes: u64,
}

impl CostLedger {
    /// Creates a ledger charging with `model`, performing `ops` once per
    /// group round.
    pub fn new(model: CostModel, ops: Vec<GroupOpKind>) -> Self {
        Self {
            model,
            ops,
            breakdown: CostBreakdown::default(),
            round_totals: Vec::new(),
            client_edge_bytes: 0,
            edge_cloud_bytes: 0,
        }
    }

    /// Charges one group's participation in one global round: `K` group
    /// rounds, each with `E` local epochs per client.
    pub fn charge_group(
        &mut self,
        client_samples: &[usize],
        group_rounds: usize,
        local_rounds: usize,
    ) {
        let g = client_samples.len();
        if g == 0 {
            return;
        }
        let per_client_ops: f64 = self.ops.iter().map(|&k| self.model.group_op(k, g)).sum();
        let ops_cost = group_rounds as f64 * g as f64 * per_client_ops;
        let train_cost: f64 = group_rounds as f64
            * local_rounds as f64
            * client_samples
                .iter()
                .map(|&n| self.model.training(n))
                .sum::<f64>();
        self.breakdown.group_ops += ops_cost;
        self.breakdown.training += train_cost;
    }

    /// Charges measured defense work (the `DefenseCost` counters the
    /// FLAME-style filter reports) at the model's calibrated rates, so
    /// running a real defense shows up in the emulated round time.
    pub fn charge_defense(&mut self, similarity_evals: u64, norm_passes: u64) {
        self.breakdown.defense += self.model.defense_seconds(similarity_evals, norm_passes);
    }

    /// Charges bytes moved on client↔edge links (in-group traffic).
    pub fn charge_client_edge_bytes(&mut self, bytes: u64) {
        self.client_edge_bytes += bytes;
    }

    /// Charges bytes moved on edge↔cloud links (group↔server traffic,
    /// including retransmissions of failed uploads).
    pub fn charge_edge_cloud_bytes(&mut self, bytes: u64) {
        self.edge_cloud_bytes += bytes;
    }

    /// Cumulative client↔edge bytes charged so far.
    pub fn client_edge_bytes(&self) -> u64 {
        self.client_edge_bytes
    }

    /// Cumulative edge↔cloud bytes charged so far.
    pub fn edge_cloud_bytes(&self) -> u64 {
        self.edge_cloud_bytes
    }

    /// Marks the end of a global round, snapshotting the running total.
    pub fn end_round(&mut self) {
        self.round_totals.push(self.total());
    }

    /// Total emulated seconds so far.
    pub fn total(&self) -> f64 {
        self.breakdown.total()
    }

    /// The training/group-op split.
    pub fn breakdown(&self) -> CostBreakdown {
        self.breakdown
    }

    /// Cumulative cost after each completed global round.
    pub fn round_totals(&self) -> &[f64] {
        &self.round_totals
    }

    /// The cost model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The group operations charged per group round.
    pub fn ops(&self) -> &[GroupOpKind] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Task;

    #[test]
    fn charge_matches_eq5_manual_computation() {
        let model = CostModel::for_task(Task::Vision);
        let ops = vec![
            GroupOpKind::SecureAggregation,
            GroupOpKind::BackdoorDetection,
        ];
        let mut ledger = CostLedger::new(model, ops.clone());
        let samples = [10usize, 40];
        let (k, e) = (5usize, 2usize);
        ledger.charge_group(&samples, k, e);

        let og: f64 = ops.iter().map(|&o| model.group_op(o, 2)).sum();
        let want: f64 = k as f64
            * samples
                .iter()
                .map(|&n| og + e as f64 * model.training(n))
                .sum::<f64>();
        assert!((ledger.total() - want).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut ledger = CostLedger::new(
            CostModel::for_task(Task::Speech),
            vec![GroupOpKind::SecureAggregation],
        );
        ledger.charge_group(&[5, 6, 7], 3, 2);
        ledger.charge_group(&[20], 3, 2);
        let b = ledger.breakdown();
        assert!((b.total() - ledger.total()).abs() < 1e-12);
        assert!(b.training > 0.0 && b.group_ops > 0.0);
    }

    #[test]
    fn round_totals_are_nondecreasing() {
        let mut ledger = CostLedger::new(
            CostModel::for_task(Task::Vision),
            vec![GroupOpKind::SecureAggregation],
        );
        for r in 0..5 {
            ledger.charge_group(&[10 + r, 20], 2, 1);
            ledger.end_round();
        }
        let totals = ledger.round_totals();
        assert_eq!(totals.len(), 5);
        for w in totals.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn defense_work_is_charged_and_shows_in_the_total() {
        let model = CostModel::for_task(Task::Vision);
        let mut ledger = CostLedger::new(model, vec![GroupOpKind::BackdoorDetection]);
        ledger.charge_group(&[10, 20, 30], 2, 1);
        let before = ledger.total();
        // A real 16-client filter pass: 16·15/2 pairwise sims, 2·16 norms.
        ledger.charge_defense(120, 32);
        let charged = ledger.total() - before;
        assert!((charged - model.defense_seconds(120, 32)).abs() < 1e-12);
        assert!(charged > 0.0);
        assert!((ledger.breakdown().defense - charged).abs() < 1e-12);
        // Vision defense work must stay costlier than Speech, like O_g.
        assert!(
            CostModel::for_task(Task::Vision).defense_seconds(120, 32)
                > CostModel::for_task(Task::Speech).defense_seconds(120, 32)
        );
    }

    #[test]
    fn byte_charges_accumulate_per_link_and_do_not_move_the_cost_total() {
        let mut ledger = CostLedger::new(
            CostModel::for_task(Task::Vision),
            vec![GroupOpKind::SecureAggregation],
        );
        ledger.charge_group(&[10, 20], 2, 1);
        let total_before = ledger.total();
        ledger.charge_client_edge_bytes(4_096);
        ledger.charge_client_edge_bytes(1_024);
        ledger.charge_edge_cloud_bytes(512);
        assert_eq!(ledger.client_edge_bytes(), 5_120);
        assert_eq!(ledger.edge_cloud_bytes(), 512);
        // Byte accounting is bookkeeping, not emulated time: Eq. 5 cost is
        // untouched.
        assert_eq!(ledger.total(), total_before);
    }

    #[test]
    fn empty_group_charges_nothing() {
        let mut ledger = CostLedger::new(CostModel::for_task(Task::Vision), vec![]);
        ledger.charge_group(&[], 5, 5);
        assert_eq!(ledger.total(), 0.0);
    }

    #[test]
    fn larger_groups_pay_superlinear_group_ops() {
        let model = CostModel::for_task(Task::Vision);
        let cost_for = |g: usize| {
            let mut ledger = CostLedger::new(model, vec![GroupOpKind::SecureAggregation]);
            ledger.charge_group(&vec![10; g], 1, 0);
            ledger.breakdown().group_ops
        };
        let c5 = cost_for(5);
        let c20 = cost_for(20);
        // 4× the clients but far more than 4× the group-op cost.
        assert!(c20 > 8.0 * c5, "c5={c5} c20={c20}");
    }
}
