//! FedNova-style normalized averaging [Wang et al., NeurIPS'20 — the
//! paper's reference [15], "Tackling the objective inconsistency problem
//! in heterogeneous federated optimization"].
//!
//! With heterogeneous data volumes, clients take different numbers of
//! local SGD steps (`τ_i = E · ⌈n_i / B⌉`), so plain FedAvg implicitly
//! weights clients by step count and optimizes a *skewed* objective.
//! FedNova divides each client's accumulated update by its own step count
//! and rescales by a common effective step count, restoring consistency:
//!
//! `y_i' = x_start − (τ̄ / τ_i) · (x_start − y_i)`
//!
//! where `τ̄` is the federation-average step count (fixed at construction
//! from the partition — the practical per-client variant; the exact
//! algorithm uses the per-round participant average, which an individual
//! client cannot know).
//!
//! Added as an extension baseline beyond the paper's own comparison set.

use gfl_core::local::{minibatch_sgd, LocalScratch, LocalTask, LocalUpdate};
use gfl_nn::Params;
use gfl_tensor::init::GflRng;
use gfl_tensor::Scalar;

/// FedNova-style local updater.
#[derive(Debug, Clone, Copy)]
pub struct FedNova {
    /// Federation-average local step count τ̄ per training stint.
    pub tau_bar: Scalar,
}

impl FedNova {
    /// Computes τ̄ from the per-client dataset sizes and the training
    /// hyperparameters.
    pub fn from_sizes(sizes: &[usize], epochs: usize, batch: usize) -> Self {
        assert!(!sizes.is_empty() && epochs > 0 && batch > 0);
        let total: f64 = sizes
            .iter()
            .map(|&n| {
                if n == 0 {
                    0.0
                } else {
                    (epochs * n.div_ceil(batch.min(n))) as f64
                }
            })
            .sum();
        Self {
            tau_bar: (total / sizes.len() as f64) as Scalar,
        }
    }

    /// Local step count of a client with `n` samples.
    fn tau(&self, n: usize, epochs: usize, batch: usize) -> Scalar {
        (epochs * n.div_ceil(batch.min(n.max(1)))) as Scalar
    }
}

impl LocalUpdate for FedNova {
    fn name(&self) -> &'static str {
        "FedNova"
    }

    fn train(
        &self,
        task: &LocalTask<'_>,
        params: &mut Params,
        scratch: &mut LocalScratch,
        rng: &mut GflRng,
    ) -> Scalar {
        let n = task.indices.len();
        if n == 0 {
            return 0.0;
        }
        let loss = minibatch_sgd(task, params, scratch, rng, |_, _| {});
        // Normalize the accumulated update to τ̄ effective steps.
        let tau_i = self.tau(n, task.epochs, task.batch_size);
        let scale = self.tau_bar / tau_i.max(1.0);
        for (p, &start) in params.iter_mut().zip(task.group_start.iter()) {
            *p = start - scale * (start - *p);
        }
        loss
    }

    fn training_cost_factor(&self) -> f64 {
        // One extra parameter-sized pass per stint: negligible next to
        // training, but not free.
        1.02
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfl_core::local::FedAvg;
    use gfl_data::SyntheticSpec;
    use gfl_tensor::{init, ops};

    fn drift_norm(strategy: &dyn LocalUpdate, n_samples: usize, epochs: usize) -> f32 {
        let data = SyntheticSpec::tiny().generate(200, 1);
        let model = gfl_nn::zoo::tiny(4, 3);
        let start = model.init_params(&mut init::rng(2));
        let indices: Vec<usize> = (0..n_samples).collect();
        let mut params = start.clone();
        let mut scratch = LocalScratch::new(&model);
        let mut rng = init::rng(3);
        let task = LocalTask {
            client: 0,
            model: &model,
            group_start: &start,
            global_start: &start,
            data: &data,
            indices: &indices,
            epochs,
            batch_size: 10,
            lr: 0.05,
            round: 0,
        };
        strategy.train(&task, &mut params, &mut scratch, &mut rng);
        let mut d = params;
        ops::sub_assign(&start, &mut d);
        ops::norm(&d)
    }

    #[test]
    fn normalization_shrinks_big_client_updates() {
        // A client with 8x the data takes 8x the steps; FedAvg's update is
        // much larger, FedNova's is pulled back toward the small client's.
        let nova = FedNova::from_sizes(&[20, 160], 2, 10);
        let avg_small = drift_norm(&FedAvg, 20, 2);
        let avg_big = drift_norm(&FedAvg, 160, 2);
        let nova_small = drift_norm(&nova, 20, 2);
        let nova_big = drift_norm(&nova, 160, 2);
        let fedavg_ratio = avg_big / avg_small;
        let nova_ratio = nova_big / nova_small;
        assert!(
            nova_ratio < fedavg_ratio * 0.7,
            "FedNova must shrink the step-count disparity: {fedavg_ratio} -> {nova_ratio}"
        );
    }

    #[test]
    fn tau_bar_matches_uniform_population() {
        // All clients identical: τ̄ = τ_i, FedNova degenerates to FedAvg.
        let nova = FedNova::from_sizes(&[50, 50, 50], 2, 10);
        assert!((nova.tau_bar - 10.0).abs() < 1e-6); // 2 epochs × 5 batches
        let avg = drift_norm(&FedAvg, 50, 2);
        let nv = drift_norm(&nova, 50, 2);
        assert!((avg - nv).abs() / avg < 1e-4);
    }

    #[test]
    fn empty_client_is_noop() {
        let nova = FedNova::from_sizes(&[10], 1, 10);
        let data = SyntheticSpec::tiny().generate(10, 4);
        let model = gfl_nn::zoo::tiny(4, 3);
        let start = model.init_params(&mut init::rng(5));
        let mut params = start.clone();
        let mut scratch = LocalScratch::new(&model);
        let task = LocalTask {
            client: 0,
            model: &model,
            group_start: &start,
            global_start: &start,
            data: &data,
            indices: &[],
            epochs: 1,
            batch_size: 8,
            lr: 0.1,
            round: 0,
        };
        let loss = nova.train(&task, &mut params, &mut scratch, &mut init::rng(6));
        assert_eq!(loss, 0.0);
        assert_eq!(params, start);
    }

    #[test]
    fn zero_size_clients_do_not_poison_tau_bar() {
        let nova = FedNova::from_sizes(&[0, 40], 2, 10);
        assert!(nova.tau_bar > 0.0 && nova.tau_bar.is_finite());
    }
}
