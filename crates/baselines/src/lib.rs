//! Baseline FL methods the paper compares against (§7.1):
//!
//! * **FedAvg** [3] — lives in `gfl-core` ([`gfl_core::local::FedAvg`]).
//! * **FedProx** [6] — [`FedProx`]: local objective gains a proximal term
//!   `μ/2·‖w − x_t‖²` anchoring updates to the round's global model.
//! * **SCAFFOLD** [7] — [`Scaffold`]: client/server control variates
//!   redirect each local gradient by `− c_i + c`; ships double payloads,
//!   hence the costlier SecAgg curve in Fig. 8.
//! * **FedCLAR** [12] — [`fedclar::FedClarRunner`]: personalized FL via
//!   clustering; included to show personalization *hurts* the global-model
//!   objective (its accuracy drops after the clustering round in Fig. 9).
//! * **OUEA** [13] / **SHARE** [14] — these are grouping policies, ported
//!   into `gfl-core::grouping` as `CdgGrouping` / `KldGrouping`; the
//!   "methods" in the figures are FedAvg run on their groupings.
//!
//! All local strategies plug into the unchanged Algorithm 1 engine — the
//! paper evaluates every baseline "modified to a hierarchical version ...
//! with uniform group sampling".

pub mod fedclar;
pub mod fednova;
pub mod fedprox;
pub mod scaffold;

pub use fedclar::{FedClarConfig, FedClarRunner};
pub use fednova::FedNova;
pub use fedprox::FedProx;
pub use scaffold::Scaffold;
