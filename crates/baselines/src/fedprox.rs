//! FedProx [Li et al., MLSys'20] — "limits the divergence of local training
//! from the last global model to mitigate inaccurate updates" (§2.1).
//!
//! Each minibatch gradient gains the proximal term `μ·(w − x_t)`, pulling
//! the iterate toward the global model the client downloaded this round.
//! The extra axpy per batch is the "more computation each round" the paper
//! charges FedProx for in the cost model (§7.3.1).

use gfl_core::local::{minibatch_sgd, LocalScratch, LocalTask, LocalUpdate};
use gfl_nn::Params;
use gfl_tensor::init::GflRng;
use gfl_tensor::Scalar;

/// FedProx local updater with proximal coefficient `mu`.
#[derive(Debug, Clone, Copy)]
pub struct FedProx {
    /// Proximal strength μ (typical values 0.01–1.0).
    pub mu: Scalar,
}

impl Default for FedProx {
    fn default() -> Self {
        Self { mu: 0.1 }
    }
}

impl LocalUpdate for FedProx {
    fn name(&self) -> &'static str {
        "FedProx"
    }

    fn train(
        &self,
        task: &LocalTask<'_>,
        params: &mut Params,
        scratch: &mut LocalScratch,
        rng: &mut GflRng,
    ) -> Scalar {
        let mu = self.mu;
        let anchor = task.global_start;
        minibatch_sgd(task, params, scratch, rng, |grad, current| {
            // grad += μ (w − x_t)
            for ((g, &w), &a) in grad.iter_mut().zip(current.iter()).zip(anchor.iter()) {
                *g += mu * (w - a);
            }
        })
    }

    fn training_cost_factor(&self) -> f64 {
        // The proximal pass roughly adds one parameter-sized axpy per
        // forward/backward; measured on RPi-class devices this is ~25%
        // extra wall time per sample for the paper's model sizes.
        1.25
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfl_core::local::FedAvg;
    use gfl_data::SyntheticSpec;
    use gfl_tensor::{init, ops};

    fn run_local(strategy: &dyn LocalUpdate, lr: f32, epochs: usize) -> (Vec<f32>, Vec<f32>) {
        let data = SyntheticSpec::tiny().generate(100, 1);
        let model = gfl_nn::zoo::tiny(4, 3);
        let start = model.init_params(&mut init::rng(2));
        let indices: Vec<usize> = (0..50).collect();
        let mut params = start.clone();
        let mut scratch = LocalScratch::new(&model);
        let mut rng = init::rng(3);
        let task = LocalTask {
            client: 0,
            model: &model,
            group_start: &start,
            global_start: &start,
            data: &data,
            indices: &indices,
            epochs,
            batch_size: 10,
            lr,
            round: 0,
        };
        strategy.train(&task, &mut params, &mut scratch, &mut rng);
        (start, params)
    }

    #[test]
    fn prox_term_limits_divergence_from_global() {
        let (start_avg, end_avg) = run_local(&FedAvg, 0.3, 6);
        let (start_prox, end_prox) = run_local(&FedProx { mu: 5.0 }, 0.3, 6);
        assert_eq!(start_avg, start_prox);
        let mut d_avg = end_avg.clone();
        ops::sub_assign(&start_avg, &mut d_avg);
        let mut d_prox = end_prox.clone();
        ops::sub_assign(&start_prox, &mut d_prox);
        assert!(
            ops::norm(&d_prox) < ops::norm(&d_avg),
            "strong μ must shrink local drift: prox {} vs avg {}",
            ops::norm(&d_prox),
            ops::norm(&d_avg)
        );
    }

    #[test]
    fn zero_mu_matches_fedavg() {
        let (_, end_avg) = run_local(&FedAvg, 0.2, 3);
        let (_, end_prox) = run_local(&FedProx { mu: 0.0 }, 0.2, 3);
        for (a, b) in end_avg.iter().zip(end_prox.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fedprox_still_learns() {
        let data = SyntheticSpec::tiny().generate(150, 4);
        let model = gfl_nn::zoo::tiny(4, 3);
        let start = model.init_params(&mut init::rng(5));
        let indices: Vec<usize> = (0..150).collect();
        let mut params = start.clone();
        let mut scratch = LocalScratch::new(&model);
        let mut rng = init::rng(6);
        let task = LocalTask {
            client: 0,
            model: &model,
            group_start: &start,
            global_start: &start,
            data: &data,
            indices: &indices,
            epochs: 10,
            batch_size: 16,
            lr: 0.3,
            round: 0,
        };
        FedProx { mu: 0.05 }.train(&task, &mut params, &mut scratch, &mut rng);
        let before = model.evaluate(&start, data.features(), data.labels());
        let after = model.evaluate(&params, data.features(), data.labels());
        assert!(after.loss < before.loss);
    }

    #[test]
    fn cost_factor_exceeds_fedavg() {
        assert!(FedProx::default().training_cost_factor() > 1.0);
    }
}
