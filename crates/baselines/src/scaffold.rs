//! SCAFFOLD [Karimireddy et al., ICML'20] — stochastic controlled averaging.
//!
//! "Records the direction of local and global gradient to re-direct updates
//! to an estimated correct direction" (§2.1). Each client holds a control
//! variate `c_i` and the server a global `c`; local steps use the corrected
//! gradient `g − c_i + c`, and after training the client refreshes its
//! variate with option II of the paper:
//!
//! `c_i⁺ = c_i − c + (x − y_i) / (η · steps)`
//!
//! The server then folds `(c_i⁺ − c_i)/N` into `c` at the end of the global
//! round. Because every upload carries both the model and the variate
//! delta, SCAFFOLD's secure aggregation masks twice the payload — the
//! paper's steepest cost curve (Fig. 8, "SCAFFOLD SecAgg").

use gfl_core::local::{minibatch_sgd, LocalScratch, LocalTask, LocalUpdate};
use gfl_nn::Params;
use gfl_sim::GroupOpKind;
use gfl_tensor::init::GflRng;
use gfl_tensor::{ops, Scalar};
use parking_lot::Mutex;

/// SCAFFOLD local updater with persistent control-variate state.
pub struct Scaffold {
    dim: usize,
    num_clients: usize,
    server_c: Mutex<Vec<Scalar>>,
    client_c: Mutex<Vec<Option<Vec<Scalar>>>>,
    /// Σ (c_i⁺ − c_i) accumulated this global round.
    pending: Mutex<Vec<Scalar>>,
}

impl Scaffold {
    /// Creates SCAFFOLD state for a federation of `num_clients` clients and
    /// models of `dim` parameters.
    pub fn new(dim: usize, num_clients: usize) -> Self {
        assert!(num_clients > 0);
        Self {
            dim,
            num_clients,
            server_c: Mutex::new(vec![0.0; dim]),
            client_c: Mutex::new(vec![None; num_clients]),
            pending: Mutex::new(vec![0.0; dim]),
        }
    }

    /// Current server control variate (for tests/diagnostics).
    pub fn server_variate(&self) -> Vec<Scalar> {
        self.server_c.lock().clone()
    }
}

impl LocalUpdate for Scaffold {
    fn name(&self) -> &'static str {
        "SCAFFOLD"
    }

    fn train(
        &self,
        task: &LocalTask<'_>,
        params: &mut Params,
        scratch: &mut LocalScratch,
        rng: &mut GflRng,
    ) -> Scalar {
        assert_eq!(params.len(), self.dim, "model/variate dimension mismatch");
        let n = task.indices.len();
        if n == 0 {
            return 0.0;
        }
        let c = self.server_c.lock().clone();
        let ci = self.client_c.lock()[task.client]
            .clone()
            .unwrap_or_else(|| vec![0.0; self.dim]);

        // Correction applied to every minibatch gradient: + c − c_i.
        let loss = minibatch_sgd(task, params, scratch, rng, |grad, _| {
            for ((g, &cv), &civ) in grad.iter_mut().zip(c.iter()).zip(ci.iter()) {
                *g += cv - civ;
            }
        });

        // Option II variate refresh.
        let batches_per_epoch = n.div_ceil(task.batch_size.clamp(1, n));
        let steps = (task.epochs * batches_per_epoch).max(1);
        let scale = 1.0 / (task.lr * steps as Scalar);
        let mut ci_new = vec![0.0; self.dim];
        for (k, cn) in ci_new.iter_mut().enumerate() {
            *cn = ci[k] - c[k] + scale * (task.group_start[k] - params[k]);
        }

        {
            let mut pending = self.pending.lock();
            for ((p, &new), &old) in pending.iter_mut().zip(ci_new.iter()).zip(ci.iter()) {
                *p += new - old;
            }
        }
        self.client_c.lock()[task.client] = Some(ci_new);
        loss
    }

    fn end_global_round(&self, _participants: &[usize]) {
        let mut pending = self.pending.lock();
        let mut server = self.server_c.lock();
        ops::axpy(1.0 / self.num_clients as Scalar, &pending, &mut server);
        pending.fill(0.0);
    }

    fn group_ops(&self) -> Vec<GroupOpKind> {
        vec![
            GroupOpKind::ScaffoldSecureAggregation,
            GroupOpKind::BackdoorDetection,
        ]
    }

    fn training_cost_factor(&self) -> f64 {
        // Variate correction adds two parameter-sized axpys per batch.
        1.3
    }

    fn upload_payload_factor(&self) -> f64 {
        // Uploads carry the client control variate alongside the model.
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfl_data::{Dataset, SyntheticSpec};
    use gfl_tensor::init;

    fn task_for<'a>(
        model: &'a gfl_nn::Network,
        data: &'a Dataset,
        indices: &'a [usize],
        start: &'a [f32],
        client: usize,
    ) -> LocalTask<'a> {
        LocalTask {
            client,
            model,
            group_start: start,
            global_start: start,
            data,
            indices,
            epochs: 2,
            batch_size: 10,
            lr: 0.1,
            round: 0,
        }
    }

    #[test]
    fn first_round_with_zero_variates_matches_fedavg() {
        let data = SyntheticSpec::tiny().generate(80, 1);
        let model = gfl_nn::zoo::tiny(4, 3);
        let start = model.init_params(&mut init::rng(2));
        let indices: Vec<usize> = (0..40).collect();
        let scaffold = Scaffold::new(model.param_len(), 4);

        let mut p_scaffold = start.clone();
        let mut scratch = LocalScratch::new(&model);
        scaffold.train(
            &task_for(&model, &data, &indices, &start, 0),
            &mut p_scaffold,
            &mut scratch,
            &mut init::rng(3),
        );

        let mut p_avg = start.clone();
        gfl_core::local::FedAvg.train(
            &task_for(&model, &data, &indices, &start, 0),
            &mut p_avg,
            &mut scratch,
            &mut init::rng(3),
        );
        for (a, b) in p_scaffold.iter().zip(p_avg.iter()) {
            assert!((a - b).abs() < 1e-6, "zero variates must be a no-op");
        }
    }

    #[test]
    fn client_variate_reflects_local_drift() {
        let data = SyntheticSpec::tiny().generate(80, 4);
        let model = gfl_nn::zoo::tiny(4, 3);
        let start = model.init_params(&mut init::rng(5));
        let indices: Vec<usize> = (0..40).collect();
        let scaffold = Scaffold::new(model.param_len(), 2);
        let mut p = start.clone();
        let mut scratch = LocalScratch::new(&model);
        scaffold.train(
            &task_for(&model, &data, &indices, &start, 1),
            &mut p,
            &mut scratch,
            &mut init::rng(6),
        );
        let ci = scaffold.client_c.lock()[1].clone().unwrap();
        assert!(ops::norm(&ci) > 0.0, "variate must move after training");
    }

    #[test]
    fn server_variate_updates_after_round() {
        let data = SyntheticSpec::tiny().generate(80, 7);
        let model = gfl_nn::zoo::tiny(4, 3);
        let start = model.init_params(&mut init::rng(8));
        let indices: Vec<usize> = (0..40).collect();
        let scaffold = Scaffold::new(model.param_len(), 2);
        assert!(ops::norm(&scaffold.server_variate()) == 0.0);
        let mut p = start.clone();
        let mut scratch = LocalScratch::new(&model);
        scaffold.train(
            &task_for(&model, &data, &indices, &start, 0),
            &mut p,
            &mut scratch,
            &mut init::rng(9),
        );
        scaffold.end_global_round(&[0]);
        assert!(ops::norm(&scaffold.server_variate()) > 0.0);
        // Pending resets; a second end_global_round changes nothing.
        let after_first = scaffold.server_variate();
        scaffold.end_global_round(&[]);
        assert_eq!(after_first, scaffold.server_variate());
    }

    #[test]
    fn uses_scaffold_secagg_cost_curve() {
        let s = Scaffold::new(4, 1);
        assert!(s
            .group_ops()
            .contains(&GroupOpKind::ScaffoldSecureAggregation));
        assert!(s.training_cost_factor() > 1.0);
    }

    #[test]
    fn empty_client_is_noop() {
        let data = SyntheticSpec::tiny().generate(10, 10);
        let model = gfl_nn::zoo::tiny(4, 3);
        let start = model.init_params(&mut init::rng(11));
        let scaffold = Scaffold::new(model.param_len(), 1);
        let mut p = start.clone();
        let mut scratch = LocalScratch::new(&model);
        let loss = scaffold.train(
            &task_for(&model, &data, &[], &start, 0),
            &mut p,
            &mut scratch,
            &mut init::rng(12),
        );
        assert_eq!(loss, 0.0);
        assert_eq!(p, start);
        assert!(scaffold.client_c.lock()[0].is_none());
    }
}
