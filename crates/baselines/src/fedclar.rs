//! FedCLAR [Presotto et al., PerCom'22] — clustering-based *personalized*
//! FL, included in the paper's evaluation "to show that personalized FL is
//! not suitable for training a good global model" (§2.1, Fig. 9: "the
//! accuracy of FedCLAR drops after clustering").
//!
//! Behaviour reproduced here:
//!
//! 1. Until `cluster_at_round`, train exactly like hierarchical FedAvg with
//!    uniform group sampling.
//! 2. At the trigger round, every client computes a probe update from the
//!    current global model; clients are k-means-clustered on those update
//!    directions (model-similarity clustering).
//! 3. Afterwards each cluster maintains its own model: sampled clients
//!    train from *their cluster's* model and aggregate back into it.
//! 4. The reported "global" accuracy is the data-weighted average of the
//!    cluster models' test accuracies — which degrades on the global task
//!    as each cluster specializes.

use gfl_core::engine::Trainer;
use gfl_core::history::{RoundRecord, RunHistory};
use gfl_core::local::{FedAvg, LocalScratch, LocalTask, LocalUpdate};
use gfl_core::sampling::{sample_without_replacement, SamplingStrategy};
use gfl_core::Group;
use gfl_nn::Params;
use gfl_tensor::init;
use gfl_tensor::{ops, Scalar};

/// FedCLAR hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct FedClarConfig {
    /// Global round at which clustering happens.
    pub cluster_at_round: usize,
    /// Number of personalization clusters.
    pub num_clusters: usize,
    /// Lloyd iterations for update-space k-means.
    pub kmeans_iters: usize,
}

impl Default for FedClarConfig {
    fn default() -> Self {
        Self {
            cluster_at_round: 10,
            num_clusters: 4,
            kmeans_iters: 10,
        }
    }
}

/// Runs FedCLAR over the same hierarchy/cost machinery as Algorithm 1.
pub struct FedClarRunner;

impl FedClarRunner {
    /// Executes the full FedCLAR schedule and returns the trajectory of the
    /// *global-task* metric (weighted cluster accuracy after clustering).
    pub fn run(trainer: &Trainer, groups: &[Group], fc: &FedClarConfig) -> RunHistory {
        let cfg = trainer.config().clone();
        let num_clients = trainer.partition().num_clients();
        let mut rng = init::rng(cfg.seed ^ 0x0FED_C1A5);
        let probs = SamplingStrategy::Random.probabilities(&vec![1.0 as Scalar; groups.len()]);
        let s = cfg.sampled_groups.clamp(1, groups.len());
        let mut ledger = trainer.ledger_for(&FedAvg);
        let mut history = RunHistory::default();

        let model = trainer.model();
        let mut global: Params = model.init_params(&mut init::rng(cfg.seed));
        // After clustering: one model per cluster + client→cluster map.
        let mut cluster_models: Vec<Params> = Vec::new();
        let mut cluster_of: Vec<usize> = vec![0; num_clients];
        let mut clustered = false;

        for t in 0..cfg.global_rounds {
            let lr = cfg.lr.at(t);

            if !clustered && t == fc.cluster_at_round {
                cluster_of = Self::cluster_clients(trainer, &global, fc, lr);
                cluster_models = vec![global.clone(); fc.num_clusters];
                clustered = true;
            }

            let sampled = sample_without_replacement(&mut rng, &probs, s);

            if !clustered {
                // Plain hierarchical FedAvg phase, reusing the engine's
                // group mechanics.
                let outcomes: Vec<_> = gfl_parallel::par_map(&sampled, |&gi| {
                    trainer.train_group(&global, &groups[gi], &FedAvg, t, lr)
                });
                for (&gi, _) in sampled.iter().zip(outcomes.iter()) {
                    let sizes: Vec<usize> = groups[gi]
                        .iter()
                        .map(|&c| trainer.partition().indices[c].len())
                        .collect();
                    ledger.charge_group(&sizes, cfg.group_rounds, cfg.local_rounds);
                }
                let total: usize = outcomes.iter().map(|o| o.samples).sum();
                let weights: Vec<Scalar> = outcomes
                    .iter()
                    .map(|o| o.samples as Scalar / total.max(1) as Scalar)
                    .collect();
                let views: Vec<&[Scalar]> = outcomes.iter().map(|o| o.params.as_slice()).collect();
                ops::weighted_sum_into(&views, &weights, &mut global);
            } else {
                // Personalized phase: per-cluster training and aggregation.
                Self::personalized_round(
                    trainer,
                    groups,
                    &sampled,
                    &cluster_of,
                    &mut cluster_models,
                    t,
                    lr,
                );
                for &gi in &sampled {
                    let sizes: Vec<usize> = groups[gi]
                        .iter()
                        .map(|&c| trainer.partition().indices[c].len())
                        .collect();
                    ledger.charge_group(&sizes, cfg.group_rounds, cfg.local_rounds);
                }
            }
            ledger.end_round();

            let over_budget = cfg.cost_budget.is_some_and(|b| ledger.total() >= b);
            if t % cfg.eval_every == 0 || t + 1 == cfg.global_rounds || over_budget {
                let (accuracy, loss) = if clustered {
                    Self::weighted_cluster_eval(trainer, &cluster_models, &cluster_of)
                } else {
                    let e = trainer.evaluate(&global);
                    (e.accuracy, e.loss)
                };
                history.push(RoundRecord {
                    round: t,
                    cost: ledger.total(),
                    accuracy,
                    loss,
                    train_loss: 0.0,
                });
            }
            if over_budget {
                break;
            }
        }
        history
    }

    /// Probe every client's update direction from `global` and k-means them.
    fn cluster_clients(
        trainer: &Trainer,
        global: &[Scalar],
        fc: &FedClarConfig,
        lr: Scalar,
    ) -> Vec<usize> {
        let cfg = trainer.config();
        let num_clients = trainer.partition().num_clients();
        let clients: Vec<usize> = (0..num_clients).collect();
        let deltas: Vec<Vec<Scalar>> = gfl_parallel::par_map(&clients, |&c| {
            let indices = &trainer.partition().indices[c];
            let mut p = global.to_vec();
            let mut scratch = LocalScratch::new(trainer.model());
            let mut rng = init::rng(cfg.seed ^ (c as u64).wrapping_mul(0xC1AB));
            let task = LocalTask {
                client: c,
                model: trainer.model(),
                group_start: global,
                global_start: global,
                data: trainer.train_data(),
                indices,
                epochs: cfg.local_rounds.max(1),
                batch_size: cfg.batch_size,
                lr,
                round: fc.cluster_at_round,
            };
            FedAvg.train(&task, &mut p, &mut scratch, &mut rng);
            ops::sub_assign(global, &mut p);
            p
        });
        kmeans_assign(&deltas, fc.num_clusters, fc.kmeans_iters, cfg.seed)
    }

    fn personalized_round(
        trainer: &Trainer,
        groups: &[Group],
        sampled: &[usize],
        cluster_of: &[usize],
        cluster_models: &mut [Params],
        t: usize,
        lr: Scalar,
    ) {
        let cfg = trainer.config();
        // Collect participating clients per cluster.
        let k = cluster_models.len();
        let mut per_cluster: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &gi in sampled {
            for &c in &groups[gi] {
                per_cluster[cluster_of[c]].push(c);
            }
        }
        for (ci, members) in per_cluster.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let base = cluster_models[ci].clone();
            let trained: Vec<(Params, usize)> = gfl_parallel::par_map(members, |&c| {
                let indices = &trainer.partition().indices[c];
                let mut p = base.clone();
                let mut scratch = LocalScratch::new(trainer.model());
                let mut rng =
                    init::rng(cfg.seed ^ (t as u64) << 17 ^ (c as u64).wrapping_mul(0x9E37));
                let task = LocalTask {
                    client: c,
                    model: trainer.model(),
                    group_start: &base,
                    global_start: &base,
                    data: trainer.train_data(),
                    indices,
                    epochs: cfg.local_rounds * cfg.group_rounds,
                    batch_size: cfg.batch_size,
                    lr,
                    round: t,
                };
                FedAvg.train(&task, &mut p, &mut scratch, &mut rng);
                (p, indices.len())
            });
            let total: usize = trained.iter().map(|(_, n)| n).sum();
            if total == 0 {
                continue;
            }
            let weights: Vec<Scalar> = trained
                .iter()
                .map(|(_, n)| *n as Scalar / total as Scalar)
                .collect();
            let views: Vec<&[Scalar]> = trained.iter().map(|(p, _)| p.as_slice()).collect();
            ops::weighted_sum_into(&views, &weights, &mut cluster_models[ci]);
        }
    }

    /// Global-task metric after personalization: accuracy of each cluster's
    /// model on the *global* test set, weighted by cluster data volume.
    fn weighted_cluster_eval(
        trainer: &Trainer,
        cluster_models: &[Params],
        cluster_of: &[usize],
    ) -> (Scalar, Scalar) {
        let mut volumes = vec![0usize; cluster_models.len()];
        for (c, &ci) in cluster_of.iter().enumerate() {
            volumes[ci] += trainer.partition().indices[c].len();
        }
        let total: usize = volumes.iter().sum();
        let mut acc = 0.0;
        let mut loss = 0.0;
        for (m, &v) in cluster_models.iter().zip(volumes.iter()) {
            if v == 0 {
                continue;
            }
            let e = trainer.evaluate(m);
            let w = v as Scalar / total.max(1) as Scalar;
            acc += w * e.accuracy;
            loss += w * e.loss;
        }
        (acc, loss)
    }
}

/// k-means over dense vectors, returning assignments.
fn kmeans_assign(points: &[Vec<Scalar>], k: usize, iters: usize, seed: u64) -> Vec<usize> {
    use rand::Rng;
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let mut rng = init::rng(seed ^ 0x5EED);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut centroids: Vec<Vec<Scalar>> = order[..k].iter().map(|&i| points[i].clone()).collect();
    let mut assignment = vec![0usize; n];
    for _ in 0..iters.max(1) {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = Scalar::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d: Scalar = p
                    .iter()
                    .zip(centroid.iter())
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let dim = points[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            ops::add_assign(p, &mut sums[assignment[i]]);
            counts[assignment[i]] += 1;
        }
        for (c, sum) in sums.into_iter().enumerate() {
            if counts[c] > 0 {
                centroids[c] = sum;
                ops::scale(1.0 / counts[c] as Scalar, &mut centroids[c]);
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfl_core::engine::{form_groups_per_edge, GroupFelConfig};
    use gfl_core::grouping::RandomGrouping;
    use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
    use gfl_sim::Topology;

    fn world() -> (Trainer, Vec<Group>) {
        let data = SyntheticSpec::tiny().generate(600, 21);
        let (train, test) = data.split_holdout(5);
        let part = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.3, 21));
        let topo = Topology::even_split(2, part.sizes());
        let groups = form_groups_per_edge(
            &RandomGrouping { group_size: 3 },
            &topo,
            &part.label_matrix,
            21,
        );
        let mut cfg = GroupFelConfig::tiny();
        cfg.global_rounds = 8;
        let trainer = Trainer::new(cfg, gfl_nn::zoo::tiny(4, 3), train, part, test);
        (trainer, groups)
    }

    #[test]
    fn produces_history_spanning_both_phases() {
        let (trainer, groups) = world();
        let fc = FedClarConfig {
            cluster_at_round: 3,
            num_clusters: 3,
            kmeans_iters: 5,
        };
        let h = FedClarRunner::run(&trainer, &groups, &fc);
        assert_eq!(h.records().len(), 8);
        // Cost keeps accruing through both phases.
        let costs: Vec<f64> = h.records().iter().map(|r| r.cost).collect();
        for w in costs.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn clustering_never_improves_global_metric_dramatically() {
        // The defining behaviour: post-clustering global accuracy should
        // not exceed what the pre-clustering trajectory was reaching —
        // personalization fragments the model.
        let (trainer, groups) = world();
        let fc = FedClarConfig {
            cluster_at_round: 5,
            num_clusters: 4,
            kmeans_iters: 5,
        };
        let h = FedClarRunner::run(&trainer, &groups, &fc);
        let pre_best = h
            .records()
            .iter()
            .filter(|r| r.round < 5)
            .map(|r| r.accuracy)
            .fold(0.0f32, f32::max);
        let post_final = h.final_accuracy();
        assert!(
            post_final <= pre_best + 0.25,
            "personalized global accuracy {post_final} should not dominate {pre_best}"
        );
    }

    #[test]
    fn kmeans_assign_basic_separation() {
        let mut points = Vec::new();
        for i in 0..10 {
            let v = if i < 5 { 0.0 } else { 10.0 };
            points.push(vec![v + i as f32 * 0.01, v]);
        }
        let assign = kmeans_assign(&points, 2, 20, 1);
        let first = assign[0];
        assert!(assign[..5].iter().all(|&a| a == first));
        assert!(assign[5..].iter().all(|&a| a != first));
    }

    #[test]
    fn kmeans_handles_k_larger_than_n() {
        let points = vec![vec![0.0], vec![1.0]];
        let assign = kmeans_assign(&points, 10, 5, 2);
        assert_eq!(assign.len(), 2);
    }
}
