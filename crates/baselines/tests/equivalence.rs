//! Baseline-method leg of the virtual ≡ materialized equivalence suite.
//!
//! The core crate pins FedAvg across every engine scenario (see
//! `crates/core/tests/equivalence.rs`); this file pins the baseline local
//! updaters, whose strategies carry extra per-client state — FedNova's
//! normalization constants are precomputed from client *sizes*, exactly
//! the summary a [`VirtualPopulation`] keeps, so the virtual trainer must
//! reproduce the eager FedNova run bit for bit.

use gfl_baselines::{FedNova, FedProx};
use gfl_core::prelude::*;
use gfl_data::{VirtualPopulation, VirtualSpec};
use gfl_sim::Topology;

fn seed_offset() -> u64 {
    std::env::var("GFL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[test]
fn baseline_strategies_are_bitwise_equivalent_on_virtual_populations() {
    for seed in 1..=3u64 {
        let seed = seed + seed_offset();
        let pop = VirtualPopulation::new(VirtualSpec::tiny(24, 0.5, seed));
        let (train, part) = pop.materialize();
        let test = pop.test_set(120);
        let topo = Topology::even_split(2, part.sizes());
        let groups = form_groups_per_edge(
            &CovGrouping {
                min_group_size: 2,
                max_cov: 1.0,
            },
            &topo,
            &part.label_matrix,
            seed,
        );
        let mut cfg = GroupFelConfig::tiny();
        cfg.seed = seed;
        let model = gfl_nn::zoo::tiny(4, 3);
        let sizes: Vec<usize> = (0..pop.num_clients()).map(|c| pop.client_size(c)).collect();
        let nova = FedNova::from_sizes(&sizes, cfg.local_rounds, cfg.batch_size);
        let prox = FedProx { mu: 0.1 };

        let run_nova =
            |t: Trainer| t.run_returning_params(&groups, &nova, SamplingStrategy::ESRCov);
        let run_prox =
            |t: Trainer| t.run_returning_params(&groups, &prox, SamplingStrategy::ESRCov);

        let eager = |cfg: &GroupFelConfig| {
            Trainer::new(
                cfg.clone(),
                model.clone(),
                train.clone(),
                part.clone(),
                test.clone(),
            )
        };
        let virt = |cfg: &GroupFelConfig| {
            Trainer::new_virtual(cfg.clone(), model.clone(), pop.clone(), test.clone())
        };

        assert_eq!(
            run_nova(eager(&cfg)),
            run_nova(virt(&cfg)),
            "seed {seed}: FedNova diverged between eager and virtual"
        );
        assert_eq!(
            run_prox(eager(&cfg)),
            run_prox(virt(&cfg)),
            "seed {seed}: FedProx diverged between eager and virtual"
        );
    }
}
