//! Host package for the cross-crate integration tests in the
//! repository-root `tests/` directory. Run with `cargo test -p
//! gfl-integration` (or `cargo test --workspace`).
