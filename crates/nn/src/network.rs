//! [`Network`] — the unified model type the federated stack trains.
//!
//! The paper evaluates two architectures (a small ResNet and a 5-layer
//! CNN). Rather than making every engine type generic over the model, the
//! workspace-owning call sites dispatch over this small enum: both
//! variants expose identical flat-parameter semantics, so aggregation,
//! SecAgg masking, SCAFFOLD variates, and defenses are oblivious to which
//! architecture is inside.

use gfl_tensor::{Matrix, Scalar};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::conv::{Cnn1d, CnnWorkspace};
use crate::mlp::{EvalResult, Mlp, Workspace as MlpWorkspace};
use crate::Params;

/// A trainable model: fully-connected or 1-D convolutional.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Network {
    Mlp(Mlp),
    Cnn(Cnn1d),
}

/// Per-thread buffers matching the [`Network`] variant.
#[derive(Debug)]
pub enum NetworkWorkspace {
    Mlp(MlpWorkspace),
    // Boxed: the CNN workspace is an order of magnitude larger than the
    // MLP one and would otherwise bloat every enum instance.
    Cnn(Box<CnnWorkspace>),
}

impl From<Mlp> for Network {
    fn from(m: Mlp) -> Self {
        Network::Mlp(m)
    }
}

impl From<Cnn1d> for Network {
    fn from(c: Cnn1d) -> Self {
        Network::Cnn(c)
    }
}

impl Network {
    pub fn input_dim(&self) -> usize {
        match self {
            Network::Mlp(m) => m.input_dim(),
            Network::Cnn(c) => c.input_dim(),
        }
    }

    pub fn num_classes(&self) -> usize {
        match self {
            Network::Mlp(m) => m.num_classes(),
            Network::Cnn(c) => c.num_classes(),
        }
    }

    pub fn param_len(&self) -> usize {
        match self {
            Network::Mlp(m) => m.param_len(),
            Network::Cnn(c) => c.param_len(),
        }
    }

    pub fn init_params(&self, rng: &mut impl Rng) -> Params {
        match self {
            Network::Mlp(m) => m.init_params(rng),
            Network::Cnn(c) => c.init_params(rng),
        }
    }

    pub fn workspace(&self) -> NetworkWorkspace {
        match self {
            Network::Mlp(m) => NetworkWorkspace::Mlp(m.workspace()),
            Network::Cnn(c) => NetworkWorkspace::Cnn(Box::new(c.workspace())),
        }
    }

    /// Mean batch loss; gradient overwritten into `grad`.
    ///
    /// # Panics
    /// Panics if `ws` came from the other variant.
    pub fn loss_and_grad(
        &self,
        params: &[Scalar],
        features: &Matrix,
        labels: &[usize],
        grad: &mut [Scalar],
        ws: &mut NetworkWorkspace,
    ) -> Scalar {
        match (self, ws) {
            (Network::Mlp(m), NetworkWorkspace::Mlp(w)) => {
                m.loss_and_grad(params, features, labels, grad, w)
            }
            (Network::Cnn(c), NetworkWorkspace::Cnn(w)) => {
                c.loss_and_grad(params, features, labels, grad, w)
            }
            _ => panic!("workspace does not match network variant"),
        }
    }

    pub fn predict(
        &self,
        params: &[Scalar],
        features: &Matrix,
        ws: &mut NetworkWorkspace,
    ) -> Vec<usize> {
        match (self, ws) {
            (Network::Mlp(m), NetworkWorkspace::Mlp(w)) => m.predict(params, features, w),
            (Network::Cnn(c), NetworkWorkspace::Cnn(w)) => c.predict(params, features, w),
            _ => panic!("workspace does not match network variant"),
        }
    }

    pub fn evaluate(&self, params: &[Scalar], features: &Matrix, labels: &[usize]) -> EvalResult {
        match self {
            Network::Mlp(m) => m.evaluate(params, features, labels),
            Network::Cnn(c) => c.evaluate(params, features, labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfl_tensor::init::rng;

    #[test]
    fn mlp_variant_delegates() {
        let net: Network = Mlp::new(vec![4, 8, 3]).into();
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.num_classes(), 3);
        let p = net.init_params(&mut rng(1));
        assert_eq!(p.len(), net.param_len());
        let mut ws = net.workspace();
        let features = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.1);
        let mut grad = vec![0.0; net.param_len()];
        let loss = net.loss_and_grad(&p, &features, &[0, 1], &mut grad, &mut ws);
        assert!(loss.is_finite());
        assert_eq!(net.predict(&p, &features, &mut ws).len(), 2);
    }

    #[test]
    fn cnn_variant_delegates() {
        let net: Network = Cnn1d::new(8, 2, 2, 3, 3, 3).into();
        assert_eq!(net.input_dim(), 8);
        let p = net.init_params(&mut rng(2));
        let mut ws = net.workspace();
        let features = Matrix::from_fn(2, 8, |r, c| (r * 8 + c) as f32 * 0.05);
        let mut grad = vec![0.0; net.param_len()];
        let loss = net.loss_and_grad(&p, &features, &[0, 2], &mut grad, &mut ws);
        assert!(loss.is_finite());
        let eval = net.evaluate(&p, &features, &[0, 2]);
        assert_eq!(eval.examples, 2);
    }

    #[test]
    #[should_panic(expected = "workspace does not match")]
    fn mismatched_workspace_panics() {
        let mlp: Network = Mlp::new(vec![4, 3]).into();
        let cnn: Network = Cnn1d::new(8, 2, 2, 3, 3, 3).into();
        let p = mlp.init_params(&mut rng(3));
        let mut ws = cnn.workspace();
        let features = Matrix::zeros(1, 4);
        let mut grad = vec![0.0; mlp.param_len()];
        mlp.loss_and_grad(&p, &features, &[0], &mut grad, &mut ws);
    }
}
