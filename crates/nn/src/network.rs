//! [`Network`] — the unified model type the federated stack trains.
//!
//! The paper evaluates two architectures (a small ResNet and a 5-layer
//! CNN). Rather than making every engine type generic over the model, the
//! workspace-owning call sites dispatch over this small enum: both
//! variants expose identical flat-parameter semantics, so aggregation,
//! SecAgg masking, SCAFFOLD variates, and defenses are oblivious to which
//! architecture is inside.

use std::sync::Mutex;

use gfl_tensor::{Matrix, Scalar};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::conv::{Cnn1d, CnnWorkspace};
use crate::mlp::{EvalResult, Mlp, Workspace as MlpWorkspace};
use crate::Params;

/// A trainable model: fully-connected or 1-D convolutional.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Network {
    Mlp(Mlp),
    Cnn(Cnn1d),
}

/// Per-thread buffers matching the [`Network`] variant.
#[derive(Debug)]
pub enum NetworkWorkspace {
    Mlp(MlpWorkspace),
    // Boxed: the CNN workspace is an order of magnitude larger than the
    // MLP one and would otherwise bloat every enum instance.
    Cnn(Box<CnnWorkspace>),
}

impl From<Mlp> for Network {
    fn from(m: Mlp) -> Self {
        Network::Mlp(m)
    }
}

impl From<Cnn1d> for Network {
    fn from(c: Cnn1d) -> Self {
        Network::Cnn(c)
    }
}

impl Network {
    pub fn input_dim(&self) -> usize {
        match self {
            Network::Mlp(m) => m.input_dim(),
            Network::Cnn(c) => c.input_dim(),
        }
    }

    pub fn num_classes(&self) -> usize {
        match self {
            Network::Mlp(m) => m.num_classes(),
            Network::Cnn(c) => c.num_classes(),
        }
    }

    pub fn param_len(&self) -> usize {
        match self {
            Network::Mlp(m) => m.param_len(),
            Network::Cnn(c) => c.param_len(),
        }
    }

    pub fn init_params(&self, rng: &mut impl Rng) -> Params {
        match self {
            Network::Mlp(m) => m.init_params(rng),
            Network::Cnn(c) => c.init_params(rng),
        }
    }

    pub fn workspace(&self) -> NetworkWorkspace {
        match self {
            Network::Mlp(m) => NetworkWorkspace::Mlp(m.workspace()),
            Network::Cnn(c) => NetworkWorkspace::Cnn(Box::new(c.workspace())),
        }
    }

    /// Mean batch loss; gradient overwritten into `grad`.
    ///
    /// # Panics
    /// Panics if `ws` came from the other variant.
    pub fn loss_and_grad(
        &self,
        params: &[Scalar],
        features: &Matrix,
        labels: &[usize],
        grad: &mut [Scalar],
        ws: &mut NetworkWorkspace,
    ) -> Scalar {
        match (self, ws) {
            (Network::Mlp(m), NetworkWorkspace::Mlp(w)) => {
                m.loss_and_grad(params, features, labels, grad, w)
            }
            (Network::Cnn(c), NetworkWorkspace::Cnn(w)) => {
                c.loss_and_grad(params, features, labels, grad, w)
            }
            _ => panic!("workspace does not match network variant"),
        }
    }

    pub fn predict(
        &self,
        params: &[Scalar],
        features: &Matrix,
        ws: &mut NetworkWorkspace,
    ) -> Vec<usize> {
        match (self, ws) {
            (Network::Mlp(m), NetworkWorkspace::Mlp(w)) => m.predict(params, features, w),
            (Network::Cnn(c), NetworkWorkspace::Cnn(w)) => c.predict(params, features, w),
            _ => panic!("workspace does not match network variant"),
        }
    }

    pub fn evaluate(&self, params: &[Scalar], features: &Matrix, labels: &[usize]) -> EvalResult {
        match self {
            Network::Mlp(m) => m.evaluate(params, features, labels),
            Network::Cnn(c) => c.evaluate(params, features, labels),
        }
    }

    /// [`Network::evaluate`] with workspaces checked out of `pool` instead
    /// of allocated per call — the steady-state path for the trainer's
    /// per-round evaluation. Chunking and fold order are identical to
    /// `evaluate`, so the f32 result is bit-identical.
    pub fn evaluate_pooled(
        &self,
        params: &[Scalar],
        features: &Matrix,
        labels: &[usize],
        pool: &EvalPool,
    ) -> EvalResult {
        assert_eq!(features.rows(), labels.len());
        let n = labels.len();
        if n == 0 {
            return EvalResult {
                loss: 0.0,
                accuracy: 0.0,
                examples: 0,
            };
        }
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(crate::EVAL_CHUNK)
            .map(|s| (s, (s + crate::EVAL_CHUNK).min(n)))
            .collect();
        let partials = gfl_parallel::par_map_init(
            &ranges,
            || pool.acquire(self),
            |guard, &(s, e)| {
                let (ws, probs) = guard.parts();
                match (self, ws) {
                    (Network::Mlp(m), NetworkWorkspace::Mlp(w)) => {
                        m.eval_chunk(params, features, labels, s, e, w, probs)
                    }
                    (Network::Cnn(c), NetworkWorkspace::Cnn(w)) => {
                        c.eval_chunk(params, features, labels, s, e, w, probs)
                    }
                    _ => panic!("eval pool does not match network variant"),
                }
            },
        );
        let (loss_sum, correct) = partials
            .into_iter()
            .fold((0.0f32, 0usize), |(l, c), (pl, pc)| (l + pl, c + pc));
        EvalResult {
            loss: loss_sum / n as Scalar,
            accuracy: correct as Scalar / n as Scalar,
            examples: n,
        }
    }
}

/// Pool of evaluation scratch — a [`NetworkWorkspace`] plus a probability
/// buffer per worker. Buffers are checked out by
/// [`Network::evaluate_pooled`] and returned on guard drop, so repeated
/// evaluations stop allocating once every worker has been seeded.
#[derive(Debug, Default)]
pub struct EvalPool {
    pool: Mutex<Vec<(NetworkWorkspace, Vec<Scalar>)>>,
}

impl EvalPool {
    pub fn new() -> Self {
        Self::default()
    }

    fn acquire(&self, net: &Network) -> EvalScratchGuard<'_> {
        let item = self
            .pool
            .lock()
            .expect("eval pool poisoned")
            .pop()
            .unwrap_or_else(|| (net.workspace(), vec![0.0; net.num_classes()]));
        EvalScratchGuard {
            pool: self,
            item: Some(item),
        }
    }
}

/// RAII checkout from an [`EvalPool`]; returns the scratch on drop.
struct EvalScratchGuard<'p> {
    pool: &'p EvalPool,
    item: Option<(NetworkWorkspace, Vec<Scalar>)>,
}

impl EvalScratchGuard<'_> {
    fn parts(&mut self) -> (&mut NetworkWorkspace, &mut [Scalar]) {
        let (ws, probs) = self.item.as_mut().expect("guard holds scratch");
        (ws, probs.as_mut_slice())
    }
}

impl Drop for EvalScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.pool.lock_put(item);
        }
    }
}

impl EvalPool {
    fn lock_put(&self, item: (NetworkWorkspace, Vec<Scalar>)) {
        // Poisoned on a panicking eval worker — drop the scratch instead
        // of double-panicking in a Drop impl.
        if let Ok(mut pool) = self.pool.lock() {
            pool.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfl_tensor::init::rng;

    #[test]
    fn mlp_variant_delegates() {
        let net: Network = Mlp::new(vec![4, 8, 3]).into();
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.num_classes(), 3);
        let p = net.init_params(&mut rng(1));
        assert_eq!(p.len(), net.param_len());
        let mut ws = net.workspace();
        let features = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.1);
        let mut grad = vec![0.0; net.param_len()];
        let loss = net.loss_and_grad(&p, &features, &[0, 1], &mut grad, &mut ws);
        assert!(loss.is_finite());
        assert_eq!(net.predict(&p, &features, &mut ws).len(), 2);
    }

    #[test]
    fn cnn_variant_delegates() {
        let net: Network = Cnn1d::new(8, 2, 2, 3, 3, 3).into();
        assert_eq!(net.input_dim(), 8);
        let p = net.init_params(&mut rng(2));
        let mut ws = net.workspace();
        let features = Matrix::from_fn(2, 8, |r, c| (r * 8 + c) as f32 * 0.05);
        let mut grad = vec![0.0; net.param_len()];
        let loss = net.loss_and_grad(&p, &features, &[0, 2], &mut grad, &mut ws);
        assert!(loss.is_finite());
        let eval = net.evaluate(&p, &features, &[0, 2]);
        assert_eq!(eval.examples, 2);
    }

    #[test]
    fn pooled_evaluate_matches_unpooled_bitwise() {
        for net in [
            Network::from(Mlp::new(vec![6, 10, 4])),
            Network::from(Cnn1d::new(8, 2, 2, 3, 3, 4)),
        ] {
            let p = net.init_params(&mut rng(7));
            let rows = 300; // several EVAL_CHUNK-sized chunks worth
            let dim = net.input_dim();
            let features = Matrix::from_fn(rows, dim, |r, c| ((r * dim + c) % 17) as f32 * 0.1);
            let labels: Vec<usize> = (0..rows).map(|i| i % net.num_classes()).collect();
            let want = net.evaluate(&p, &features, &labels);
            let pool = EvalPool::new();
            // Twice through the pool: first seeds the scratch, second reuses it.
            for pass in 0..2 {
                let got = net.evaluate_pooled(&p, &features, &labels, &pool);
                assert_eq!(got.loss.to_bits(), want.loss.to_bits(), "pass {pass}");
                assert_eq!(
                    got.accuracy.to_bits(),
                    want.accuracy.to_bits(),
                    "pass {pass}"
                );
                assert_eq!(got.examples, want.examples, "pass {pass}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "workspace does not match")]
    fn mismatched_workspace_panics() {
        let mlp: Network = Mlp::new(vec![4, 3]).into();
        let cnn: Network = Cnn1d::new(8, 2, 2, 3, 3, 3).into();
        let p = mlp.init_params(&mut rng(3));
        let mut ws = cnn.workspace();
        let features = Matrix::zeros(1, 4);
        let mut grad = vec![0.0; mlp.param_len()];
        mlp.loss_and_grad(&p, &features, &[0], &mut grad, &mut ws);
    }
}
