//! 1-D convolutional network — the faithful stand-in for the paper's
//! "5-layer CNN that is easy to train on RPi" (§7.1, Speech Commands).
//!
//! Architecture of [`Cnn1d`] (5 parameterized/pooling stages):
//!
//! ```text
//! input (1×L) → Conv1d(c1, k1, same-pad) → ReLU → MaxPool(2)
//!            → Conv1d(c1→c2, k2, same-pad) → ReLU → MaxPool(2)
//!            → Flatten → Linear(c2·L/4 → classes)
//! ```
//!
//! Parameters live in one flat vector (conv1 W,b | conv2 W,b | fc W,b) so
//! the model drops into the same aggregation/masking/defense machinery as
//! the MLP. Backprop is implemented manually and validated against finite
//! differences in the tests.

use gfl_tensor::{init, ops, Matrix, Scalar};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::mlp::EvalResult;
use crate::Params;

/// Configuration of the 2-conv-block 1-D CNN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnn1d {
    /// Input signal length `L` (must be divisible by 4).
    input_len: usize,
    /// Channels after the first conv block.
    c1: usize,
    /// Channels after the second conv block.
    c2: usize,
    /// Kernel size of the first conv (odd, same-padded).
    k1: usize,
    /// Kernel size of the second conv (odd, same-padded).
    k2: usize,
    /// Output classes.
    classes: usize,
}

/// Reusable per-thread buffers for [`Cnn1d`] forward/backward.
#[derive(Debug, Default)]
pub struct CnnWorkspace {
    /// conv1 pre-pool activations: `c1 × L` (post-ReLU).
    a1: Vec<Scalar>,
    /// pool1 output: `c1 × L/2` and argmax offsets.
    p1: Vec<Scalar>,
    p1_idx: Vec<usize>,
    /// conv2 activations: `c2 × L/2` (post-ReLU).
    a2: Vec<Scalar>,
    /// pool2 output: `c2 × L/4` and argmax offsets.
    p2: Vec<Scalar>,
    p2_idx: Vec<usize>,
    /// logits: `classes`.
    logits: Vec<Scalar>,
    /// backprop deltas, same shapes as the activations.
    d_a1: Vec<Scalar>,
    d_p1: Vec<Scalar>,
    d_a2: Vec<Scalar>,
    d_p2: Vec<Scalar>,
}

impl Cnn1d {
    /// Creates the network.
    ///
    /// # Panics
    /// Panics unless `input_len % 4 == 0`, kernels are odd, and all sizes
    /// are positive.
    pub fn new(
        input_len: usize,
        c1: usize,
        c2: usize,
        k1: usize,
        k2: usize,
        classes: usize,
    ) -> Self {
        assert!(
            input_len >= 4 && input_len.is_multiple_of(4),
            "L must be ×4"
        );
        assert!(k1 % 2 == 1 && k2 % 2 == 1, "kernels must be odd (same-pad)");
        assert!(c1 > 0 && c2 > 0 && classes > 0);
        Self {
            input_len,
            c1,
            c2,
            k1,
            k2,
            classes,
        }
    }

    pub fn input_dim(&self) -> usize {
        self.input_len
    }

    pub fn num_classes(&self) -> usize {
        self.classes
    }

    fn l2(&self) -> usize {
        self.input_len / 2
    }

    fn l4(&self) -> usize {
        self.input_len / 4
    }

    fn fc_in(&self) -> usize {
        self.c2 * self.l4()
    }

    /// Flat parameter count.
    pub fn param_len(&self) -> usize {
        self.c1 * self.k1 + self.c1            // conv1 W,b (1 input channel)
            + self.c2 * self.c1 * self.k2 + self.c2 // conv2 W,b
            + self.classes * self.fc_in() + self.classes // fc W,b
    }

    /// Offsets of the six parameter blocks.
    fn blocks(&self) -> [usize; 6] {
        let w1 = 0;
        let b1 = w1 + self.c1 * self.k1;
        let w2 = b1 + self.c1;
        let b2 = w2 + self.c2 * self.c1 * self.k2;
        let wf = b2 + self.c2;
        let bf = wf + self.classes * self.fc_in();
        [w1, b1, w2, b2, wf, bf]
    }

    /// He-style initialization (biases zero).
    pub fn init_params(&self, rng: &mut impl Rng) -> Params {
        let mut p = vec![0.0; self.param_len()];
        let [w1, b1, w2, b2, wf, bf] = self.blocks();
        let std1 = (2.0 / self.k1 as Scalar).sqrt();
        init::fill_normal(rng, std1, &mut p[w1..b1]);
        let std2 = (2.0 / (self.c1 * self.k2) as Scalar).sqrt();
        init::fill_normal(rng, std2, &mut p[w2..b2]);
        let stdf = (2.0 / self.fc_in() as Scalar).sqrt();
        init::fill_normal(rng, stdf, &mut p[wf..bf]);
        p
    }

    pub fn workspace(&self) -> CnnWorkspace {
        CnnWorkspace::default()
    }

    fn prepare(&self, ws: &mut CnnWorkspace) {
        let (l, l2, l4) = (self.input_len, self.l2(), self.l4());
        ws.a1.resize(self.c1 * l, 0.0);
        ws.p1.resize(self.c1 * l2, 0.0);
        ws.p1_idx.resize(self.c1 * l2, 0);
        ws.a2.resize(self.c2 * l2, 0.0);
        ws.p2.resize(self.c2 * l4, 0.0);
        ws.p2_idx.resize(self.c2 * l4, 0);
        ws.logits.resize(self.classes, 0.0);
        ws.d_a1.resize(self.c1 * l, 0.0);
        ws.d_p1.resize(self.c1 * l2, 0.0);
        ws.d_a2.resize(self.c2 * l2, 0.0);
        ws.d_p2.resize(self.c2 * l4, 0.0);
    }

    /// Forward pass for one sample; fills the workspace activations.
    fn forward_sample(&self, params: &[Scalar], x: &[Scalar], ws: &mut CnnWorkspace) {
        let [w1, b1, w2, b2, wf, _bf] = self.blocks();
        let (l, l2, l4) = (self.input_len, self.l2(), self.l4());
        let pad1 = self.k1 / 2;
        // conv1 (1 input channel) + ReLU
        for co in 0..self.c1 {
            let w = &params[w1 + co * self.k1..w1 + (co + 1) * self.k1];
            let bias = params[b1 + co];
            for t in 0..l {
                let mut acc = bias;
                for (dk, &wv) in w.iter().enumerate() {
                    let src = t + dk;
                    if src >= pad1 && src - pad1 < l {
                        acc += wv * x[src - pad1];
                    }
                }
                ws.a1[co * l + t] = acc.max(0.0);
            }
        }
        // maxpool 2
        for co in 0..self.c1 {
            for t in 0..l2 {
                let i0 = co * l + 2 * t;
                let (v, off) = if ws.a1[i0] >= ws.a1[i0 + 1] {
                    (ws.a1[i0], 0)
                } else {
                    (ws.a1[i0 + 1], 1)
                };
                ws.p1[co * l2 + t] = v;
                ws.p1_idx[co * l2 + t] = off;
            }
        }
        // conv2 + ReLU
        let pad2 = self.k2 / 2;
        for co in 0..self.c2 {
            let bias = params[b2 + co];
            for t in 0..l2 {
                let mut acc = bias;
                for ci in 0..self.c1 {
                    let w = &params[w2 + (co * self.c1 + ci) * self.k2
                        ..w2 + (co * self.c1 + ci + 1) * self.k2];
                    for (dk, &wv) in w.iter().enumerate() {
                        let src = t + dk;
                        if src >= pad2 && src - pad2 < l2 {
                            acc += wv * ws.p1[ci * l2 + src - pad2];
                        }
                    }
                }
                ws.a2[co * l2 + t] = acc.max(0.0);
            }
        }
        // maxpool 2
        for co in 0..self.c2 {
            for t in 0..l4 {
                let i0 = co * l2 + 2 * t;
                let (v, off) = if ws.a2[i0] >= ws.a2[i0 + 1] {
                    (ws.a2[i0], 0)
                } else {
                    (ws.a2[i0 + 1], 1)
                };
                ws.p2[co * l4 + t] = v;
                ws.p2_idx[co * l4 + t] = off;
            }
        }
        // fc
        let fc_in = self.fc_in();
        for c in 0..self.classes {
            let w = &params[wf + c * fc_in..wf + (c + 1) * fc_in];
            ws.logits[c] = ops::dot(w, &ws.p2) + params[self.blocks()[5] + c];
        }
    }

    /// Mean loss over the batch; accumulates gradient into `grad`
    /// (overwritten). Mirrors [`crate::Mlp::loss_and_grad`].
    pub fn loss_and_grad(
        &self,
        params: &[Scalar],
        features: &Matrix,
        labels: &[usize],
        grad: &mut [Scalar],
        ws: &mut CnnWorkspace,
    ) -> Scalar {
        assert_eq!(features.cols(), self.input_len, "input length mismatch");
        assert_eq!(features.rows(), labels.len(), "batch misaligned");
        assert_eq!(grad.len(), self.param_len(), "grad length mismatch");
        let batch = labels.len();
        assert!(batch > 0, "empty batch");
        self.prepare(ws);
        grad.fill(0.0);
        let [w1, b1, w2, b2, wf, bf] = self.blocks();
        let (l, l2, l4) = (self.input_len, self.l2(), self.l4());
        let fc_in = self.fc_in();
        let inv_b = 1.0 / batch as Scalar;
        let mut loss = 0.0;
        let mut probs = vec![0.0; self.classes];

        for (r, &label) in labels.iter().enumerate() {
            let x = features.row(r);
            self.forward_sample(params, x, ws);
            probs.copy_from_slice(&ws.logits);
            ops::softmax(&mut probs);
            loss += ops::cross_entropy(&probs, label);
            // δ_logits = (p − y)/B
            probs[label] -= 1.0;
            ops::scale(inv_b, &mut probs);

            // fc backward: ∇Wf += δ ⊗ p2, ∇bf += δ, d_p2 = Wfᵀ δ
            ws.d_p2.fill(0.0);
            for c in 0..self.classes {
                let d = probs[c];
                if d != 0.0 {
                    ops::axpy(d, &ws.p2, &mut grad[wf + c * fc_in..wf + (c + 1) * fc_in]);
                    ops::axpy(
                        d,
                        &params[wf + c * fc_in..wf + (c + 1) * fc_in],
                        &mut ws.d_p2,
                    );
                }
                grad[bf + c] += d;
            }

            // unpool2 + ReLU' → d_a2
            ws.d_a2.fill(0.0);
            for co in 0..self.c2 {
                for t in 0..l4 {
                    let d = ws.d_p2[co * l4 + t];
                    if d != 0.0 {
                        let src = co * l2 + 2 * t + ws.p2_idx[co * l4 + t];
                        if ws.a2[src] > 0.0 {
                            ws.d_a2[src] = d;
                        }
                    }
                }
            }

            // conv2 backward: ∇W2, ∇b2, d_p1
            let pad2 = self.k2 / 2;
            ws.d_p1.fill(0.0);
            for co in 0..self.c2 {
                for t in 0..l2 {
                    let d = ws.d_a2[co * l2 + t];
                    if d == 0.0 {
                        continue;
                    }
                    grad[b2 + co] += d;
                    for ci in 0..self.c1 {
                        let wbase = w2 + (co * self.c1 + ci) * self.k2;
                        for dk in 0..self.k2 {
                            let src = t + dk;
                            if src >= pad2 && src - pad2 < l2 {
                                let s = ci * l2 + src - pad2;
                                grad[wbase + dk] += d * ws.p1[s];
                                ws.d_p1[s] += d * params[wbase + dk];
                            }
                        }
                    }
                }
            }

            // unpool1 + ReLU' → d_a1
            ws.d_a1.fill(0.0);
            for co in 0..self.c1 {
                for t in 0..l2 {
                    let d = ws.d_p1[co * l2 + t];
                    if d != 0.0 {
                        let src = co * l + 2 * t + ws.p1_idx[co * l2 + t];
                        if ws.a1[src] > 0.0 {
                            ws.d_a1[src] = d;
                        }
                    }
                }
            }

            // conv1 backward: ∇W1, ∇b1 (input gradient not needed)
            let pad1 = self.k1 / 2;
            for co in 0..self.c1 {
                for t in 0..l {
                    let d = ws.d_a1[co * l + t];
                    if d == 0.0 {
                        continue;
                    }
                    grad[b1 + co] += d;
                    let wbase = w1 + co * self.k1;
                    for dk in 0..self.k1 {
                        let src = t + dk;
                        if src >= pad1 && src - pad1 < l {
                            grad[wbase + dk] += d * x[src - pad1];
                        }
                    }
                }
            }
        }
        loss / batch as Scalar
    }

    /// Predicted labels for a feature matrix.
    pub fn predict(
        &self,
        params: &[Scalar],
        features: &Matrix,
        ws: &mut CnnWorkspace,
    ) -> Vec<usize> {
        self.prepare(ws);
        (0..features.rows())
            .map(|r| {
                self.forward_sample(params, features.row(r), ws);
                ops::argmax(&ws.logits)
            })
            .collect()
    }

    /// Mean loss and accuracy over a labeled set (parallel over fixed-size
    /// chunks, so the f32 reduction order — and hence the result — is
    /// bit-identical for any thread count; see [`crate::EVAL_CHUNK`]).
    pub fn evaluate(&self, params: &[Scalar], features: &Matrix, labels: &[usize]) -> EvalResult {
        assert_eq!(features.rows(), labels.len());
        let n = labels.len();
        if n == 0 {
            return EvalResult {
                loss: 0.0,
                accuracy: 0.0,
                examples: 0,
            };
        }
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(crate::EVAL_CHUNK)
            .map(|s| (s, (s + crate::EVAL_CHUNK).min(n)))
            .collect();
        let partials = gfl_parallel::par_map_init(
            &ranges,
            || {
                let mut ws = self.workspace();
                self.prepare(&mut ws);
                (ws, vec![0.0; self.classes])
            },
            |(ws, probs), &(s, e)| self.eval_chunk(params, features, labels, s, e, ws, probs),
        );
        let (loss, correct) = partials
            .into_iter()
            .fold((0.0f32, 0usize), |(l, c), (pl, pc)| (l + pl, c + pc));
        EvalResult {
            loss: loss / n as Scalar,
            accuracy: correct as Scalar / n as Scalar,
            examples: n,
        }
    }

    /// Loss sum and correct count over rows `s..e` — the shared inner loop
    /// of [`Cnn1d::evaluate`] and the pooled
    /// [`crate::network::Network::evaluate_pooled`] path. Re-`prepare`s the
    /// workspace, which is free once it is sized (resize is a no-op).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_chunk(
        &self,
        params: &[Scalar],
        features: &Matrix,
        labels: &[usize],
        s: usize,
        e: usize,
        ws: &mut CnnWorkspace,
        probs: &mut [Scalar],
    ) -> (Scalar, usize) {
        self.prepare(ws);
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        for (r, &label) in labels.iter().enumerate().take(e).skip(s) {
            self.forward_sample(params, features.row(r), ws);
            probs.copy_from_slice(&ws.logits);
            let pred = ops::argmax(probs);
            ops::softmax(probs);
            loss += ops::cross_entropy(probs, label);
            correct += usize::from(pred == label);
        }
        (loss, correct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfl_tensor::init::rng;

    fn tiny_cnn() -> Cnn1d {
        Cnn1d::new(8, 3, 4, 3, 3, 3)
    }

    #[test]
    fn param_len_matches_blocks() {
        let c = tiny_cnn();
        // conv1: 3*3+3=12, conv2: 4*3*3+4=40, fc: 3*(4*2)+3=27
        assert_eq!(c.param_len(), 12 + 40 + 27);
        let p = c.init_params(&mut rng(1));
        assert_eq!(p.len(), c.param_len());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let c = tiny_cnn();
        let mut r = rng(2);
        let params = c.init_params(&mut r);
        let features = Matrix::from_fn(4, 8, |_, _| init::normal(&mut r, 0.0, 1.0));
        let labels = vec![0usize, 1, 2, 1];
        let mut grad = vec![0.0; c.param_len()];
        let mut ws = c.workspace();
        c.loss_and_grad(&params, &features, &labels, &mut grad, &mut ws);

        let eps = 1e-3f32;
        let mut worst = 0.0f32;
        for k in 0..c.param_len() {
            let mut pp = params.clone();
            pp[k] += eps;
            let mut pm = params.clone();
            pm[k] -= eps;
            let mut dummy = vec![0.0; c.param_len()];
            let lp = c.loss_and_grad(&pp, &features, &labels, &mut dummy, &mut ws);
            let lm = c.loss_and_grad(&pm, &features, &labels, &mut dummy, &mut ws);
            let fd = (lp - lm) / (2.0 * eps);
            let diff = (grad[k] - fd).abs();
            let rel = diff / (1e-3 + fd.abs().max(grad[k].abs()));
            worst = worst.max(rel.min(diff));
        }
        assert!(worst < 0.08, "worst grad error {worst}");
    }

    #[test]
    fn learns_a_separable_task() {
        use gfl_data::SyntheticSpec;
        let spec = SyntheticSpec {
            num_classes: 3,
            feature_dim: 8,
            separation: 2.5,
            noise: 0.4,
        };
        let data = spec.generate(240, 3);
        let c = tiny_cnn();
        let mut r = rng(4);
        let mut params = c.init_params(&mut r);
        let mut grad = vec![0.0; c.param_len()];
        let mut ws = c.workspace();
        let before = c.evaluate(&params, data.features(), data.labels());
        for _ in 0..150 {
            let loss = c.loss_and_grad(&params, data.features(), data.labels(), &mut grad, &mut ws);
            assert!(loss.is_finite());
            ops::axpy(-0.1, &grad, &mut params);
        }
        let after = c.evaluate(&params, data.features(), data.labels());
        assert!(
            after.accuracy > 0.8 && after.accuracy > before.accuracy,
            "cnn failed to learn: {} -> {}",
            before.accuracy,
            after.accuracy
        );
    }

    #[test]
    fn predict_matches_evaluate() {
        use gfl_data::SyntheticSpec;
        let data = SyntheticSpec {
            num_classes: 3,
            feature_dim: 8,
            separation: 2.0,
            noise: 0.5,
        }
        .generate(50, 5);
        let c = tiny_cnn();
        let params = c.init_params(&mut rng(6));
        let mut ws = c.workspace();
        let preds = c.predict(&params, data.features(), &mut ws);
        let manual = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, l)| p == l)
            .count() as f32
            / 50.0;
        let eval = c.evaluate(&params, data.features(), data.labels());
        assert!((manual - eval.accuracy).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "L must be ×4")]
    fn rejects_bad_input_len() {
        Cnn1d::new(10, 2, 2, 3, 3, 2);
    }

    #[test]
    #[should_panic(expected = "kernels must be odd")]
    fn rejects_even_kernel() {
        Cnn1d::new(8, 2, 2, 4, 3, 2);
    }

    #[test]
    fn deterministic_init_and_forward() {
        let c = tiny_cnn();
        let p1 = c.init_params(&mut rng(7));
        let p2 = c.init_params(&mut rng(7));
        assert_eq!(p1, p2);
    }

    #[test]
    fn speech_cnn_gradient_matches_central_differences() {
        // The paper-scale model: conv(1→8,k5) → pool → conv(8→16,k3) →
        // pool → fc(160→35). Sampled coordinates sweep all six parameter
        // blocks (conv1/conv2/fc weights and biases) so the same-padding
        // boundary handling, max-pool argmax routing, and ReLU gating are
        // all exercised against central differences. Tolerance: 1e-4
        // absolute plus a 1% relative guard for f32 rounding in the
        // two-sided loss evaluations.
        let crate::network::Network::Cnn(c) = crate::zoo::speech_cnn() else {
            panic!("speech_cnn must be the Cnn1d variant");
        };
        let mut r = rng(12);
        let params = c.init_params(&mut r);
        let features = Matrix::from_fn(3, c.input_dim(), |_, _| init::normal(&mut r, 0.0, 1.0));
        let labels = vec![0usize, 17, 34];
        let mut grad = vec![0.0; c.param_len()];
        let mut ws = c.workspace();
        c.loss_and_grad(&params, &features, &labels, &mut grad, &mut ws);

        // Every block start (hits channel-0/kernel-0 boundary weights) plus
        // a stride sweep across the whole vector, ~160 coordinates total.
        let mut coords: Vec<usize> = c.blocks().to_vec();
        let stride = (c.param_len() / 150).max(1);
        coords.extend((0..c.param_len()).step_by(stride));
        coords.sort_unstable();
        coords.dedup();

        let eps = 1e-2f32;
        let mut dummy = vec![0.0; c.param_len()];
        let mut worst = 0.0f32;
        for &k in &coords {
            let mut pp = params.clone();
            pp[k] += eps;
            let mut pm = params.clone();
            pm[k] -= eps;
            let lp = c.loss_and_grad(&pp, &features, &labels, &mut dummy, &mut ws);
            let lm = c.loss_and_grad(&pm, &features, &labels, &mut dummy, &mut ws);
            let fd = (lp - lm) / (2.0 * eps);
            let diff = (grad[k] - fd).abs();
            let tol = 1e-4 + 1e-2 * fd.abs().max(grad[k].abs());
            assert!(
                diff <= tol,
                "param {k}: backprop {} vs central diff {fd} (|Δ| {diff} > tol {tol})",
                grad[k]
            );
            worst = worst.max(diff);
        }
        assert!(worst.is_finite());
    }
}
