//! Neural-network substrate for Group-FEL local training.
//!
//! The paper trains a 3-block ResNet (CIFAR-10) and a 5-layer CNN (Speech
//! Commands) with plain SGD. This crate provides the from-scratch
//! replacement: fully-connected ReLU networks with softmax cross-entropy and
//! manual backprop over a *flat parameter vector*. The flat representation
//! is the key design decision — every federated operation (group
//! aggregation, global aggregation, secure-aggregation masking, SCAFFOLD
//! control variates, FedProx proximal terms, cosine-similarity defenses) is
//! a BLAS-1 operation over `&[f32]`, so the whole FL stack composes without
//! ever reflecting on model structure.
//!
//! * [`Mlp`] — architecture descriptor + forward/backward kernels.
//! * [`Workspace`] — caller-owned activation buffers so concurrent clients
//!   never contend and the hot loop never allocates.
//! * [`sgd`] — SGD step and learning-rate schedules.
//! * [`zoo`] — the paper's two task models plus a logistic-regression probe.

pub mod conv;
pub mod mlp;
pub mod network;
pub mod sgd;
pub mod zoo;

pub use conv::Cnn1d;
pub use mlp::{Mlp, Workspace};
pub use network::{EvalPool, Network, NetworkWorkspace};

/// Flat model parameters. All federated aggregation operates on this.
pub type Params = Vec<f32>;

/// Row-chunk size used by the parallel `evaluate` paths.
///
/// Chunk boundaries depend only on this constant — never on the thread
/// count — and chunk partials are folded in chunk order, so evaluation
/// losses are bit-identical for any parallelism degree.
pub(crate) const EVAL_CHUNK: usize = 256;
