//! Fully-connected ReLU network with softmax cross-entropy, flat parameters,
//! and manual backprop.
//!
//! Parameter layout for dims `[d0, d1, ..., dL]`: for each layer `l`, the
//! weight matrix `W_l` (`d_{l+1} × d_l`, row-major) followed by the bias
//! `b_l` (`d_{l+1}`). Forward over a batch `X` (`B × d0`):
//! `A_{l+1} = relu(A_l · W_lᵀ + b_l)` with no ReLU after the last layer.
//!
//! Backward: with `P = softmax(logits)` and one-hot targets `Y`,
//! `Δ_L = (P − Y)/B`, then `∇W_l = Δ_{l+1}ᵀ · A_l`, `∇b_l = colsum(Δ_{l+1})`,
//! `Δ_l = (Δ_{l+1} · W_l) ⊙ relu'(A_l)`.

use gfl_tensor::{init, ops, Matrix, MatrixRef, Scalar};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::Params;

/// Architecture descriptor: layer widths including input and output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mlp {
    dims: Vec<usize>,
}

/// Reusable forward/backward buffers. One per training thread; created by
/// [`Mlp::workspace`] and grown lazily to the largest batch seen. Buffers
/// never shrink, so alternating batch sizes (full minibatch vs. epoch
/// remainder) stop reallocating after the first epoch.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Activations per layer; `acts[0]` is the input batch copy. Sized for
    /// `cap` rows, of which the first `batch` are live.
    acts: Vec<Matrix>,
    /// Backprop deltas per non-input layer.
    deltas: Vec<Matrix>,
    /// Live batch rows of the current pass.
    batch: usize,
    /// Allocated row capacity.
    cap: usize,
}

impl Mlp {
    /// Creates a network with the given layer widths (≥ 2 entries).
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        Self { dims }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output classes.
    pub fn num_classes(&self) -> usize {
        *self.dims.last().unwrap()
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// Total parameter count.
    pub fn param_len(&self) -> usize {
        (0..self.num_layers())
            .map(|l| self.dims[l + 1] * self.dims[l] + self.dims[l + 1])
            .sum()
    }

    /// Flat offset of layer `l`'s weight block.
    fn layer_offset(&self, l: usize) -> usize {
        (0..l)
            .map(|k| self.dims[k + 1] * self.dims[k] + self.dims[k + 1])
            .sum()
    }

    /// Layer `l`'s `(weights, bias)` slices of the flat params.
    ///
    /// Computed from offsets on the fly — no per-call allocation, which
    /// matters because backprop asks for a layer per hidden level on every
    /// minibatch (this used to be the dominant steady-state alloc site).
    fn layer<'a>(&self, params: &'a [Scalar], l: usize) -> (&'a [Scalar], &'a [Scalar]) {
        let (o, i) = (self.dims[l + 1], self.dims[l]);
        let off = self.layer_offset(l);
        (
            &params[off..off + o * i],
            &params[off + o * i..off + o * i + o],
        )
    }

    /// He-initialized parameters (biases zero), deterministic in the RNG.
    pub fn init_params(&self, rng: &mut impl Rng) -> Params {
        let mut params = vec![0.0; self.param_len()];
        for l in 0..self.num_layers() {
            let (o, i) = (self.dims[l + 1], self.dims[l]);
            let w = init::he_matrix(rng, o, i);
            let off = self.layer_offset(l);
            params[off..off + o * i].copy_from_slice(w.as_slice());
            // biases stay zero
        }
        params
    }

    /// Creates an empty workspace for this architecture.
    pub fn workspace(&self) -> Workspace {
        Workspace::default()
    }

    fn prepare_workspace(&self, ws: &mut Workspace, batch: usize) {
        if ws.acts.len() != self.dims.len() || ws.cap < batch {
            let cap = batch.max(ws.cap);
            ws.acts = self.dims.iter().map(|&d| Matrix::zeros(cap, d)).collect();
            ws.deltas = self.dims[1..]
                .iter()
                .map(|&d| Matrix::zeros(cap, d))
                .collect();
            ws.cap = cap;
        }
        ws.batch = batch;
    }

    /// Runs the forward pass over a borrowed row view; afterwards the first
    /// `x.rows()` rows of `ws.acts.last()` hold the logits.
    fn forward_into(&self, params: &[Scalar], x: MatrixRef<'_>, ws: &mut Workspace) {
        assert_eq!(x.cols(), self.input_dim(), "input dim mismatch");
        let batch = x.rows();
        self.prepare_workspace(ws, batch);
        assert_eq!(params.len(), self.param_len(), "param length mismatch");
        ws.acts[0].as_mut_slice()[..batch * self.dims[0]].copy_from_slice(x.as_slice());
        let mut off = 0;
        for l in 0..self.num_layers() {
            let (o, i) = (self.dims[l + 1], self.dims[l]);
            let w = &params[off..off + o * i];
            let b = &params[off + o * i..off + o * i + o];
            off += o * i + o;
            // acts[l+1] = acts[l] · Wᵀ + b  (+ relu except last layer)
            let (before, after) = ws.acts.split_at_mut(l + 1);
            let input = &before[l].as_slice()[..batch * i];
            let out = &mut after[0].as_mut_slice()[..batch * o];
            ops::gemm_nt(input, w, out, batch, o, i);
            for r in 0..batch {
                ops::add_assign(b, &mut out[r * o..(r + 1) * o]);
            }
            if l != self.num_layers() - 1 {
                ops::relu(out);
            }
        }
    }

    /// Computes average loss over the batch and accumulates the gradient
    /// into `grad` (which is fully overwritten). Returns the mean
    /// cross-entropy loss. `grad.len()` must equal [`Mlp::param_len`].
    pub fn loss_and_grad(
        &self,
        params: &[Scalar],
        features: &Matrix,
        labels: &[usize],
        grad: &mut [Scalar],
        ws: &mut Workspace,
    ) -> Scalar {
        assert_eq!(features.rows(), labels.len(), "batch misaligned");
        assert_eq!(grad.len(), self.param_len(), "grad length mismatch");
        let batch = labels.len();
        assert!(batch > 0, "empty batch");
        self.forward_into(params, features.as_view(), ws);

        // Softmax + CE on the last activation; Δ_L = (P − Y)/B in place.
        let num_layers = self.num_layers();
        let logits_idx = num_layers;
        let nc = self.num_classes();
        let mut loss = 0.0;
        {
            let last_delta = ws.deltas.last_mut().unwrap();
            last_delta.as_mut_slice()[..batch * nc]
                .copy_from_slice(&ws.acts[logits_idx].as_slice()[..batch * nc]);
            let inv_b = 1.0 / batch as Scalar;
            for (r, &label) in labels.iter().enumerate() {
                let row = last_delta.row_mut(r);
                ops::softmax(row);
                loss += ops::cross_entropy(row, label);
                row[label] -= 1.0;
                ops::scale(inv_b, row);
            }
            loss /= batch as Scalar;
        }

        grad.fill(0.0);
        // Walk layers backwards.
        for l in (0..num_layers).rev() {
            let (o, i) = (self.dims[l + 1], self.dims[l]);
            let off = self.layer_offset(l);
            // Split grad into this layer's W and b destinations.
            let (gw, rest) = grad[off..].split_at_mut(o * i);
            let gb = &mut rest[..o];

            // ∇W_l = Δ_{l+1}ᵀ · A_l (cache-blocked, ascending-row
            // accumulation) ; ∇b_l = colsum(Δ_{l+1}).
            let delta = &ws.deltas[l];
            let act = &ws.acts[l];
            ops::gemm_tn(
                &delta.as_slice()[..batch * o],
                &act.as_slice()[..batch * i],
                gw,
                batch,
                o,
                i,
            );
            for r in 0..batch {
                ops::add_assign(delta.row(r), gb);
            }

            // Δ_l = (Δ_{l+1} · W_l) ⊙ relu'(A_l), skipped for the input.
            if l > 0 {
                let w = self.layer(params, l).0;
                let wview = MatrixRef::new(o, i, w);
                let (lower, upper) = ws.deltas.split_at_mut(l);
                let next_delta = &upper[0];
                let this_delta = &mut lower[l - 1];
                for r in 0..batch {
                    let src = next_delta.row(r);
                    let dst = this_delta.row_mut(r);
                    dst.fill(0.0);
                    for (j, &dj) in src.iter().enumerate() {
                        if dj != 0.0 {
                            ops::axpy(dj, wview.row(j), dst);
                        }
                    }
                    ops::relu_backward(ws.acts[l].row(r), dst);
                }
            }
        }
        loss
    }

    /// Predicts class labels for a feature matrix.
    pub fn predict(&self, params: &[Scalar], features: &Matrix, ws: &mut Workspace) -> Vec<usize> {
        if features.rows() == 0 {
            return Vec::new();
        }
        self.forward_into(params, features.as_view(), ws);
        let logits = ws.acts.last().unwrap();
        (0..features.rows())
            .map(|r| ops::argmax(logits.row(r)))
            .collect()
    }

    /// Mean loss and accuracy over a labeled set. Parallelized over
    /// fixed-size row chunks via `gfl-parallel`; each worker reuses one
    /// workspace across all the chunks it processes.
    ///
    /// Chunk boundaries and the reduction order are independent of the
    /// thread count (chunks are [`crate::EVAL_CHUNK`] rows and partial
    /// losses are folded in chunk order), so the f32 result is bit-identical
    /// for any parallelism degree. Each chunk is forwarded over a row-range
    /// view of `features` — no index buffer, no gather copy.
    pub fn evaluate(&self, params: &[Scalar], features: &Matrix, labels: &[usize]) -> EvalResult {
        assert_eq!(features.rows(), labels.len());
        let n = labels.len();
        if n == 0 {
            return EvalResult {
                loss: 0.0,
                accuracy: 0.0,
                examples: 0,
            };
        }
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(crate::EVAL_CHUNK)
            .map(|s| (s, (s + crate::EVAL_CHUNK).min(n)))
            .collect();
        let partials = gfl_parallel::par_map_init(
            &ranges,
            || (self.workspace(), vec![0.0f32; self.num_classes()]),
            |(ws, probs), &(s, e)| self.eval_chunk(params, features, labels, s, e, ws, probs),
        );
        let (loss_sum, correct) = partials
            .into_iter()
            .fold((0.0f32, 0usize), |(l, c), (pl, pc)| (l + pl, c + pc));
        EvalResult {
            loss: loss_sum / n as Scalar,
            accuracy: correct as Scalar / n as Scalar,
            examples: n,
        }
    }

    /// Loss sum and correct count over rows `s..e` — the shared inner loop
    /// of [`Mlp::evaluate`] and the pooled
    /// [`crate::network::Network::evaluate_pooled`] path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_chunk(
        &self,
        params: &[Scalar],
        features: &Matrix,
        labels: &[usize],
        s: usize,
        e: usize,
        ws: &mut Workspace,
        probs: &mut [Scalar],
    ) -> (Scalar, usize) {
        self.forward_into(params, features.view_rows(s, e), ws);
        let logits = ws.acts.last().unwrap();
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        for (r, &label) in labels[s..e].iter().enumerate() {
            probs.copy_from_slice(logits.row(r));
            let pred = ops::argmax(probs);
            ops::softmax(probs);
            loss += ops::cross_entropy(probs, label);
            correct += usize::from(pred == label);
        }
        (loss, correct)
    }
}

/// Result of [`Mlp::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Mean cross-entropy loss.
    pub loss: Scalar,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: Scalar,
    /// Number of evaluated examples.
    pub examples: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfl_tensor::init::rng;

    fn finite_difference_check(mlp: &Mlp, batch: usize, seed: u64) -> (f32, f32) {
        let mut r = rng(seed);
        let params = mlp.init_params(&mut r);
        let features = Matrix::from_fn(batch, mlp.input_dim(), |_, _| {
            init::normal(&mut r, 0.0, 1.0)
        });
        let labels: Vec<usize> = (0..batch).map(|i| i % mlp.num_classes()).collect();
        let mut grad = vec![0.0; mlp.param_len()];
        let mut ws = mlp.workspace();
        mlp.loss_and_grad(&params, &features, &labels, &mut grad, &mut ws);

        // Check a handful of coordinates against central differences.
        let eps = 1e-3f32;
        let mut max_rel = 0.0f32;
        let mut max_abs = 0.0f32;
        let stride = (mlp.param_len() / 37).max(1);
        for k in (0..mlp.param_len()).step_by(stride) {
            let mut p_plus = params.clone();
            p_plus[k] += eps;
            let mut p_minus = params.clone();
            p_minus[k] -= eps;
            let mut dummy = vec![0.0; mlp.param_len()];
            let lp = mlp.loss_and_grad(&p_plus, &features, &labels, &mut dummy, &mut ws);
            let lm = mlp.loss_and_grad(&p_minus, &features, &labels, &mut dummy, &mut ws);
            let fd = (lp - lm) / (2.0 * eps);
            let diff = (grad[k] - fd).abs();
            max_abs = max_abs.max(diff);
            max_rel = max_rel.max(diff / (1e-4 + fd.abs().max(grad[k].abs())));
        }
        (max_abs, max_rel)
    }

    #[test]
    fn gradient_matches_finite_differences_single_layer() {
        let mlp = Mlp::new(vec![5, 3]);
        let (abs, rel) = finite_difference_check(&mlp, 4, 1);
        assert!(abs < 2e-2 && rel < 0.05, "abs {abs} rel {rel}");
    }

    #[test]
    fn gradient_matches_finite_differences_deep() {
        let mlp = Mlp::new(vec![6, 8, 7, 4]);
        let (abs, rel) = finite_difference_check(&mlp, 5, 2);
        assert!(abs < 2e-2 && rel < 0.08, "abs {abs} rel {rel}");
    }

    #[test]
    fn param_len_matches_layout() {
        let mlp = Mlp::new(vec![4, 5, 3]);
        assert_eq!(mlp.param_len(), 4 * 5 + 5 + 5 * 3 + 3);
        let mut r = rng(0);
        assert_eq!(mlp.init_params(&mut r).len(), mlp.param_len());
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        use gfl_data::SyntheticSpec;
        let spec = SyntheticSpec::tiny();
        let data = spec.generate(200, 3);
        let mlp = Mlp::new(vec![spec.feature_dim, 16, spec.num_classes]);
        let mut r = rng(4);
        let mut params = mlp.init_params(&mut r);
        let mut grad = vec![0.0; mlp.param_len()];
        let mut ws = mlp.workspace();
        let initial = mlp.evaluate(&params, data.features(), data.labels()).loss;
        for _ in 0..60 {
            let loss =
                mlp.loss_and_grad(&params, data.features(), data.labels(), &mut grad, &mut ws);
            assert!(loss.is_finite());
            ops::axpy(-0.5, &grad, &mut params);
        }
        let result = mlp.evaluate(&params, data.features(), data.labels());
        assert!(
            result.loss < initial * 0.5,
            "loss {initial} -> {}",
            result.loss
        );
        assert!(result.accuracy > 0.8, "accuracy {}", result.accuracy);
    }

    #[test]
    fn predict_agrees_with_evaluate_accuracy() {
        use gfl_data::SyntheticSpec;
        let data = SyntheticSpec::tiny().generate(60, 8);
        let mlp = Mlp::new(vec![4, 3]);
        let mut r = rng(5);
        let params = mlp.init_params(&mut r);
        let mut ws = mlp.workspace();
        let preds = mlp.predict(&params, data.features(), &mut ws);
        let manual_acc = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, l)| p == l)
            .count() as f32
            / data.len() as f32;
        let eval = mlp.evaluate(&params, data.features(), data.labels());
        assert!((manual_acc - eval.accuracy).abs() < 1e-6);
    }

    #[test]
    fn workspace_reuse_across_batch_sizes() {
        let mlp = Mlp::new(vec![3, 4, 2]);
        let mut r = rng(6);
        let params = mlp.init_params(&mut r);
        let mut ws = mlp.workspace();
        for batch in [1usize, 7, 3, 7] {
            let f = Matrix::from_fn(batch, 3, |r_, c| (r_ + c) as f32 * 0.1);
            let labels = vec![0usize; batch];
            let mut grad = vec![0.0; mlp.param_len()];
            let loss = mlp.loss_and_grad(&params, &f, &labels, &mut grad, &mut ws);
            assert!(loss.is_finite());
        }
    }

    #[test]
    fn deterministic_init() {
        let mlp = Mlp::new(vec![4, 4]);
        let a = mlp.init_params(&mut rng(9));
        let b = mlp.init_params(&mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let mlp = Mlp::new(vec![2, 2]);
        let params = vec![0.0; mlp.param_len()];
        let mut grad = vec![0.0; mlp.param_len()];
        let mut ws = mlp.workspace();
        mlp.loss_and_grad(&params, &Matrix::zeros(0, 2), &[], &mut grad, &mut ws);
    }

    #[test]
    fn evaluate_empty_set_is_safe() {
        let mlp = Mlp::new(vec![2, 2]);
        let params = vec![0.0; mlp.param_len()];
        let r = mlp.evaluate(&params, &Matrix::zeros(0, 2), &[]);
        assert_eq!(r.examples, 0);
    }

    #[test]
    fn batched_forward_matches_per_sample_forward_bitwise() {
        // The chunked evaluate path relies on this: each output row of a
        // batched forward must be the bit-exact result of forwarding that
        // row alone, because gemm rows are independent full-k dot products.
        // Batch size 33 deliberately exercises a non-round row count.
        let mlp = Mlp::new(vec![6, 16, 9, 5]);
        let mut r = rng(11);
        let params = mlp.init_params(&mut r);
        let batch = 33;
        let features = Matrix::from_fn(batch, mlp.input_dim(), |_, _| {
            init::normal(&mut r, 0.0, 1.0)
        });

        let mut batched_ws = mlp.workspace();
        mlp.forward_into(&params, features.as_view(), &mut batched_ws);
        let batched = batched_ws.acts.last().unwrap().clone();

        let mut single_ws = mlp.workspace();
        for row in 0..batch {
            mlp.forward_into(&params, features.view_rows(row, row + 1), &mut single_ws);
            let single = single_ws.acts.last().unwrap().row(0);
            for (c, (&b, &s)) in batched.row(row).iter().zip(single.iter()).enumerate() {
                assert_eq!(
                    b.to_bits(),
                    s.to_bits(),
                    "logit ({row}, {c}) differs: batched {b} vs per-sample {s}"
                );
            }
        }
    }
}
