//! The model zoo: architectures standing in for the paper's two tasks.
//!
//! §7.1 uses a 3-block ResNet for CIFAR-10 ("relatively heavy load tasks")
//! and a 5-layer CNN for Speech Commands ("lightweight tasks ... easy to
//! train on RPi"). We mirror the *relative* scale: the vision model has
//! several times the parameters and per-sample FLOPs of the speech models,
//! so cost-model ratios (training time vs group-operation time) stay
//! faithful. Two speech variants are provided: the default dense model
//! (fast, used by the figure reproductions) and a true 5-layer 1-D CNN
//! ([`speech_cnn`]) matching the paper's architecture class.

use crate::conv::Cnn1d;
use crate::mlp::Mlp;
use crate::network::Network;

/// Vision-task model (CIFAR-10 stand-in): 64-d input, two hidden layers,
/// 10 classes. This is the "heavy" model of the cost model.
pub fn vision_model() -> Network {
    Mlp::new(vec![64, 128, 64, 10]).into()
}

/// Speech-task model (Speech-Commands stand-in): 40-d input, one hidden
/// layer, 35 classes. This is the "light" model of the cost model.
pub fn speech_model() -> Network {
    Mlp::new(vec![40, 48, 35]).into()
}

/// The paper-faithful 5-layer CNN for the speech task:
/// Conv(1→8,k5) → pool → Conv(8→16,k3) → pool → FC(160→35).
pub fn speech_cnn() -> Network {
    Cnn1d::new(40, 8, 16, 5, 3, 35).into()
}

/// Multinomial logistic regression probe for fast tests and examples.
pub fn logistic(input_dim: usize, classes: usize) -> Network {
    Mlp::new(vec![input_dim, classes]).into()
}

/// A deliberately tiny model for unit tests.
pub fn tiny(input_dim: usize, classes: usize) -> Network {
    Mlp::new(vec![input_dim, 8, classes]).into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vision_is_heavier_than_speech() {
        let v = vision_model().param_len();
        let s = speech_model().param_len();
        assert!(
            v as f64 / s as f64 > 3.0,
            "vision {v} should be several times speech {s}"
        );
    }

    #[test]
    fn shapes_match_tasks() {
        assert_eq!(vision_model().input_dim(), 64);
        assert_eq!(vision_model().num_classes(), 10);
        assert_eq!(speech_model().input_dim(), 40);
        assert_eq!(speech_model().num_classes(), 35);
        assert_eq!(speech_cnn().input_dim(), 40);
        assert_eq!(speech_cnn().num_classes(), 35);
    }

    #[test]
    fn logistic_has_single_layer() {
        let m = logistic(5, 3);
        assert_eq!(m.param_len(), 5 * 3 + 3);
    }

    #[test]
    fn speech_cnn_is_a_cnn() {
        assert!(matches!(speech_cnn(), Network::Cnn(_)));
        assert!(speech_cnn().param_len() > 0);
    }
}
