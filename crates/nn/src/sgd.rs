//! SGD update rules and learning-rate schedules.
//!
//! Line 13 of Algorithm 1 is a plain SGD step; FedProx and SCAFFOLD modify
//! the *gradient*, not the step, so a single step kernel serves every
//! method. Schedules are evaluated per *global round* `t` — the paper keeps
//! η constant within a round.

use gfl_tensor::{ops, Scalar};
use serde::{Deserialize, Serialize};

/// Applies `params -= lr * grad`.
pub fn sgd_step(params: &mut [Scalar], grad: &[Scalar], lr: Scalar) {
    ops::axpy(-lr, grad, params);
}

/// Applies SGD with optional weight decay: `params -= lr*(grad + wd*params)`.
pub fn sgd_step_decayed(params: &mut [Scalar], grad: &[Scalar], lr: Scalar, weight_decay: Scalar) {
    assert_eq!(params.len(), grad.len());
    if weight_decay == 0.0 {
        return sgd_step(params, grad, lr);
    }
    for (p, &g) in params.iter_mut().zip(grad.iter()) {
        *p -= lr * (g + weight_decay * *p);
    }
}

/// Learning-rate schedule over global rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant η.
    Constant(Scalar),
    /// `η₀ / (1 + decay · t)` — the classic Robbins–Monro style decay.
    InverseTime { base: Scalar, decay: Scalar },
    /// Multiplies by `factor` every `every` rounds.
    Step {
        base: Scalar,
        factor: Scalar,
        every: usize,
    },
}

impl LrSchedule {
    /// Learning rate at global round `t` (0-based).
    pub fn at(&self, t: usize) -> Scalar {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::InverseTime { base, decay } => base / (1.0 + decay * t as Scalar),
            LrSchedule::Step {
                base,
                factor,
                every,
            } => base * factor.powi((t / every.max(1)) as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut p = vec![1.0, 2.0];
        sgd_step(&mut p, &[10.0, -10.0], 0.1);
        assert_eq!(p, vec![0.0, 3.0]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut p = vec![1.0];
        sgd_step_decayed(&mut p, &[0.0], 0.1, 0.5);
        assert!((p[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn zero_decay_matches_plain() {
        let mut a = vec![1.0, -2.0];
        let mut b = a.clone();
        let g = [0.3, 0.4];
        sgd_step(&mut a, &g, 0.2);
        sgd_step_decayed(&mut b, &g, 0.2, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn schedules() {
        assert_eq!(LrSchedule::Constant(0.1).at(100), 0.1);
        let inv = LrSchedule::InverseTime {
            base: 1.0,
            decay: 1.0,
        };
        assert_eq!(inv.at(0), 1.0);
        assert_eq!(inv.at(1), 0.5);
        let step = LrSchedule::Step {
            base: 1.0,
            factor: 0.5,
            every: 10,
        };
        assert_eq!(step.at(9), 1.0);
        assert_eq!(step.at(10), 0.5);
        assert_eq!(step.at(25), 0.25);
    }

    #[test]
    fn schedules_are_nonincreasing() {
        for sched in [
            LrSchedule::Constant(0.3),
            LrSchedule::InverseTime {
                base: 0.3,
                decay: 0.01,
            },
            LrSchedule::Step {
                base: 0.3,
                factor: 0.9,
                every: 5,
            },
        ] {
            let mut prev = f32::INFINITY;
            for t in 0..100 {
                let lr = sched.at(t);
                assert!(lr > 0.0 && lr <= prev, "{sched:?} at {t}");
                prev = lr;
            }
        }
    }
}

/// SGD with classical momentum: `v = β·v + g; params -= lr·v`.
///
/// Owns its velocity buffer; create one per optimization stream (per
/// client when used federatedly — velocity must not leak across clients).
#[derive(Debug, Clone)]
pub struct Momentum {
    beta: Scalar,
    velocity: Vec<Scalar>,
}

impl Momentum {
    /// Creates a momentum state for `dim` parameters.
    pub fn new(dim: usize, beta: Scalar) -> Self {
        assert!((0.0..1.0).contains(&beta), "beta must be in [0, 1)");
        Self {
            beta,
            velocity: vec![0.0; dim],
        }
    }

    /// Applies one update.
    pub fn step(&mut self, params: &mut [Scalar], grad: &[Scalar], lr: Scalar) {
        assert_eq!(params.len(), self.velocity.len());
        assert_eq!(grad.len(), self.velocity.len());
        for ((v, &g), p) in self
            .velocity
            .iter_mut()
            .zip(grad.iter())
            .zip(params.iter_mut())
        {
            *v = self.beta * *v + g;
            *p -= lr * *v;
        }
    }

    /// Resets the velocity (e.g. when a client receives a fresh model).
    pub fn reset(&mut self) {
        self.velocity.fill(0.0);
    }
}

#[cfg(test)]
mod momentum_tests {
    use super::*;

    #[test]
    fn zero_beta_matches_plain_sgd() {
        let mut a = vec![1.0, -1.0];
        let mut b = a.clone();
        let g = [0.5, 0.25];
        let mut m = Momentum::new(2, 0.0);
        m.step(&mut a, &g, 0.1);
        sgd_step(&mut b, &g, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn momentum_accumulates_along_constant_gradient() {
        let mut p_plain = vec![0.0f32];
        let mut p_mom = vec![0.0f32];
        let mut m = Momentum::new(1, 0.9);
        for _ in 0..10 {
            sgd_step(&mut p_plain, &[1.0], 0.1);
            m.step(&mut p_mom, &[1.0], 0.1);
        }
        assert!(
            p_mom[0] < p_plain[0] - 0.5,
            "momentum must travel further: {} vs {}",
            p_mom[0],
            p_plain[0]
        );
    }

    #[test]
    fn reset_clears_velocity() {
        let mut m = Momentum::new(1, 0.9);
        let mut p = vec![0.0f32];
        m.step(&mut p, &[1.0], 0.1);
        m.reset();
        let mut q = vec![0.0f32];
        let mut fresh = Momentum::new(1, 0.9);
        fresh.step(&mut q, &[1.0], 0.1);
        let before = p[0];
        m.step(&mut p, &[1.0], 0.1);
        assert!((p[0] - before - (q[0])).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn invalid_beta_panics() {
        Momentum::new(1, 1.0);
    }
}
