//! Property tests for the chunked `evaluate` paths.
//!
//! Both network variants evaluate in fixed 256-row chunks
//! (`EVAL_CHUNK`) whose partial losses are folded in chunk order. These
//! tests pin that contract down to the bit: the chunked fold must equal
//! a sequential per-row reference folded the same way, and the result
//! must not move with the worker-thread count.

use std::sync::Mutex;

use gfl_nn::{Cnn1d, Mlp, Network};
use gfl_tensor::Matrix;

/// `set_default_parallelism` is process-global; serialize pinning tests.
static THREAD_PIN: Mutex<()> = Mutex::new(());

const CHUNK: usize = 256;

fn synthetic(rows: usize, net: &Network, seed: u64) -> (Matrix, Vec<usize>) {
    let spec = gfl_data::SyntheticSpec {
        num_classes: net.num_classes(),
        feature_dim: net.input_dim(),
        separation: 2.0,
        noise: 0.5,
    };
    let data = spec.generate(rows, seed);
    (data.features().clone(), data.labels().to_vec())
}

/// Per-row mean loss via a single-row `loss_and_grad` call. For a batch of
/// one, the engine's loss path (softmax + cross-entropy, `inv_b = 1`) runs
/// the exact same float operations as `evaluate`'s per-row loss, so this
/// reference is bitwise-comparable.
fn row_loss(net: &Network, params: &[f32], features: &Matrix, row: usize, label: usize) -> f32 {
    let single = Matrix::from_fn(1, features.cols(), |_, c| features.row(row)[c]);
    let mut grad = vec![0.0; net.param_len()];
    let mut ws = net.workspace();
    net.loss_and_grad(params, &single, &[label], &mut grad, &mut ws)
}

/// Folds per-row losses exactly the way `evaluate` does: f32 sum within
/// each 256-row chunk, chunk partials added in chunk order, one final
/// division by `n`.
fn chunked_reference_loss(
    net: &Network,
    params: &[f32],
    features: &Matrix,
    labels: &[usize],
) -> f32 {
    let n = labels.len();
    let mut total = 0.0f32;
    for start in (0..n).step_by(CHUNK) {
        let end = (start + CHUNK).min(n);
        let mut partial = 0.0f32;
        for (row, &label) in labels.iter().enumerate().take(end).skip(start) {
            partial += row_loss(net, params, features, row, label);
        }
        total += partial;
    }
    total / n as f32
}

fn assert_chunked_fold_matches(net: Network, seed: u64) {
    let _guard = THREAD_PIN.lock().unwrap_or_else(|e| e.into_inner());
    // 600 rows → chunks of 256, 256, 88: two full chunks plus a remainder.
    let (features, labels) = synthetic(600, &net, seed);
    let params = net.init_params(&mut gfl_tensor::init::rng(seed + 1));

    let reference = chunked_reference_loss(&net, &params, &features, &labels);
    for threads in [1usize, 2, 8] {
        gfl_parallel::set_default_parallelism(threads);
        let eval = net.evaluate(&params, &features, &labels);
        assert_eq!(eval.examples, 600);
        assert_eq!(
            eval.loss.to_bits(),
            reference.to_bits(),
            "chunked evaluate loss {} != per-row chunk-fold reference {} at {threads} threads",
            eval.loss,
            reference
        );
    }
    gfl_parallel::set_default_parallelism(0);
}

#[test]
fn mlp_chunked_evaluate_equals_per_row_fold_bitwise() {
    assert_chunked_fold_matches(Mlp::new(vec![4, 8, 3]).into(), 21);
}

#[test]
fn cnn_chunked_evaluate_equals_per_row_fold_bitwise() {
    assert_chunked_fold_matches(Cnn1d::new(8, 3, 4, 3, 3, 3).into(), 22);
}

#[test]
fn evaluate_is_thread_count_invariant_bitwise() {
    let _guard = THREAD_PIN.lock().unwrap_or_else(|e| e.into_inner());
    for (net, seed) in [
        (Network::from(Mlp::new(vec![4, 8, 3])), 23u64),
        (Network::from(Cnn1d::new(8, 3, 4, 3, 3, 3)), 24),
    ] {
        let (features, labels) = synthetic(521, &net, seed);
        let params = net.init_params(&mut gfl_tensor::init::rng(seed));
        gfl_parallel::set_default_parallelism(1);
        let base = net.evaluate(&params, &features, &labels);
        for threads in [2usize, 8] {
            gfl_parallel::set_default_parallelism(threads);
            let eval = net.evaluate(&params, &features, &labels);
            assert_eq!(base.loss.to_bits(), eval.loss.to_bits());
            assert_eq!(base.accuracy.to_bits(), eval.accuracy.to_bits());
        }
    }
    gfl_parallel::set_default_parallelism(0);
}
