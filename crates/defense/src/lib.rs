//! Backdoor detection over client updates — the second group operation whose
//! quadratic cost Fig. 2(a)/Fig. 8 measure.
//!
//! The paper's testbed runs a FLAME-style defense [Nguyen et al. 2021]
//! during group aggregation. We implement the same pipeline in its
//! honest-but-curious essence:
//!
//! 1. **Pairwise cosine similarity** between all |g| client updates —
//!    the O(|g|²·d) step that dominates and gives the quadratic shape.
//! 2. **Clustering**: single-linkage agglomerative clustering on cosine
//!    distance until two clusters remain; the minority cluster is flagged
//!    as suspicious (backdoored updates point in a coherent, atypical
//!    direction).
//! 3. **Norm clipping**: every accepted update is clipped to the median
//!    norm, bounding what any single client can inject.
//!
//! The module also ships the attacker side ([`scale_attack`],
//! [`sign_flip_attack`]) so the defense can be exercised end to end in the
//! simulator's extension experiments.

pub mod robust;

use gfl_tensor::{ops, Scalar};
use serde::{Deserialize, Serialize};

/// Work counters to validate the quadratic cost shape empirically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefenseCost {
    /// Pairwise similarity evaluations (each O(d)).
    pub similarity_evals: u64,
    /// Norm computations / clip passes (each O(d)).
    pub norm_passes: u64,
}

/// Outcome of running the defense over one group's updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseReport {
    /// Indices of updates admitted to aggregation.
    pub accepted: Vec<usize>,
    /// Indices flagged as suspicious and excluded.
    pub rejected: Vec<usize>,
    /// The clip threshold applied (median accepted norm).
    pub clip_norm: Scalar,
    /// Work performed.
    pub cost: DefenseCost,
}

/// Configuration for [`filter_updates`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Reject the minority cluster only if its relative size is below this
    /// fraction (a 50/50 split is ambiguous, not an attack signature).
    pub max_reject_fraction: f64,
    /// Minimum cosine *distance* between the two final clusters for the
    /// split to be considered meaningful.
    pub min_separation: Scalar,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        Self {
            max_reject_fraction: 0.45,
            min_separation: 0.25,
        }
    }
}

/// Runs detection + clipping over a group's updates (in place for clipping).
///
/// Groups of fewer than 3 updates are passed through (no statistical basis
/// for an outlier call), but still pay the norm-clipping passes.
pub fn filter_updates(updates: &mut [Vec<Scalar>], config: &DefenseConfig) -> DefenseReport {
    let n = updates.len();
    let mut cost = DefenseCost::default();
    if n == 0 {
        return DefenseReport {
            accepted: Vec::new(),
            rejected: Vec::new(),
            clip_norm: 0.0,
            cost,
        };
    }

    let mut accepted: Vec<usize> = (0..n).collect();
    let mut rejected: Vec<usize> = Vec::new();

    if n >= 3 {
        // 1. Pairwise cosine distance matrix (condensed storage).
        let mut dist = vec![0.0f32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let sim = ops::cosine_similarity(&updates[i], &updates[j]);
                cost.similarity_evals += 1;
                let d = 1.0 - sim;
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }

        // 2. Single-linkage agglomerative clustering down to 2 clusters.
        let clusters = single_linkage_two_clusters(n, &dist);
        let (a, b) = clusters;
        let (minority, majority) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let frac = minority.len() as f64 / n as f64;
        let sep = cluster_separation(&minority, &majority, &dist, n);
        if !minority.is_empty()
            && frac <= config.max_reject_fraction
            && sep >= config.min_separation
        {
            rejected = minority;
            rejected.sort_unstable();
            accepted = majority;
            accepted.sort_unstable();
        }
    }

    // 3. Norm clipping to the median accepted norm.
    let mut norms: Vec<Scalar> = accepted
        .iter()
        .map(|&i| {
            cost.norm_passes += 1;
            ops::norm(&updates[i])
        })
        .collect();
    let clip = median(&mut norms);
    if clip > 0.0 {
        for &i in &accepted {
            ops::clip_norm(&mut updates[i], clip);
            cost.norm_passes += 1;
        }
    }

    DefenseReport {
        accepted,
        rejected,
        clip_norm: clip,
        cost,
    }
}

/// Minimum pairwise distance between two clusters (single-linkage gap).
fn cluster_separation(a: &[usize], b: &[usize], dist: &[Scalar], n: usize) -> Scalar {
    let mut min = Scalar::INFINITY;
    for &i in a {
        for &j in b {
            min = min.min(dist[i * n + j]);
        }
    }
    if min.is_finite() {
        min
    } else {
        0.0
    }
}

/// Single-linkage agglomerative clustering stopping at two clusters.
/// O(n³) worst case, fine for group sizes ≤ a few dozen.
fn single_linkage_two_clusters(n: usize, dist: &[Scalar]) -> (Vec<usize>, Vec<usize>) {
    let mut cluster_of: Vec<usize> = (0..n).collect();
    let mut num_clusters = n;
    while num_clusters > 2 {
        // Find the closest pair of distinct clusters.
        let mut best = (0usize, 0usize, Scalar::INFINITY);
        for i in 0..n {
            for j in (i + 1)..n {
                if cluster_of[i] != cluster_of[j] && dist[i * n + j] < best.2 {
                    best = (cluster_of[i], cluster_of[j], dist[i * n + j]);
                }
            }
        }
        let (keep, merge, _) = best;
        for c in cluster_of.iter_mut() {
            if *c == merge {
                *c = keep;
            }
        }
        num_clusters -= 1;
    }
    let first = cluster_of[0];
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (i, &c) in cluster_of.iter().enumerate() {
        if c == first {
            a.push(i);
        } else {
            b.push(i);
        }
    }
    (a, b)
}

/// Median of a mutable slice (averages the middle pair for even lengths).
fn median(xs: &mut [Scalar]) -> Scalar {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        0.5 * (xs[mid - 1] + xs[mid])
    }
}

/// Whether every parameter of an update is finite — the NaN/±Inf gate the
/// training engine applies before both aggregation levels. A single
/// non-finite weight poisons any weighted sum it enters, so corrupt
/// updates must be rejected wholesale, not clipped.
pub fn is_update_finite(update: &[Scalar]) -> bool {
    update.iter().all(|w| w.is_finite())
}

/// Partitions update indices into `(finite, non_finite)`, preserving
/// order — the batch form of [`is_update_finite`] for aggregators that
/// need both the survivors and an audit trail of what was rejected.
pub fn split_non_finite(updates: &[Vec<Scalar>]) -> (Vec<usize>, Vec<usize>) {
    let mut finite = Vec::with_capacity(updates.len());
    let mut non_finite = Vec::new();
    for (i, u) in updates.iter().enumerate() {
        if is_update_finite(u) {
            finite.push(i);
        } else {
            non_finite.push(i);
        }
    }
    (finite, non_finite)
}

/// Attacker: scales an update by `factor` (model-replacement style boost).
pub fn scale_attack(update: &mut [Scalar], factor: Scalar) {
    ops::scale(factor, update);
}

/// Attacker: flips the sign of an update (directed poisoning).
pub fn sign_flip_attack(update: &mut [Scalar]) {
    ops::scale(-1.0, update);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Benign updates share a direction plus noise; attackers point elsewhere.
    fn benign_and_attacked(benign: usize, attackers: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut updates = Vec::new();
        for _ in 0..benign {
            let u: Vec<f32> = base
                .iter()
                .map(|&b| b + rng.gen_range(-0.1f32..0.1))
                .collect();
            updates.push(u);
        }
        for _ in 0..attackers {
            let mut u: Vec<f32> = base
                .iter()
                .map(|&b| -b + rng.gen_range(-0.1f32..0.1))
                .collect();
            scale_attack(&mut u, 10.0);
            updates.push(u);
        }
        updates
    }

    #[test]
    fn detects_coherent_attackers() {
        let mut updates = benign_and_attacked(8, 2, 32, 1);
        let report = filter_updates(&mut updates, &DefenseConfig::default());
        assert_eq!(report.rejected, vec![8, 9], "attackers sit at the tail");
        assert_eq!(report.accepted.len(), 8);
    }

    #[test]
    fn all_benign_accepts_everyone() {
        let mut updates = benign_and_attacked(10, 0, 16, 2);
        let report = filter_updates(&mut updates, &DefenseConfig::default());
        assert!(report.rejected.is_empty(), "rejected {:?}", report.rejected);
        assert_eq!(report.accepted.len(), 10);
    }

    #[test]
    fn clipping_bounds_all_accepted_norms() {
        let mut updates = benign_and_attacked(6, 0, 8, 3);
        // Inflate one benign update's magnitude (not direction).
        scale_attack(&mut updates[0], 50.0);
        let report = filter_updates(&mut updates, &DefenseConfig::default());
        for &i in &report.accepted {
            let n = ops::norm(&updates[i]);
            assert!(
                n <= report.clip_norm * 1.0001,
                "update {i} norm {n} exceeds clip {}",
                report.clip_norm
            );
        }
    }

    #[test]
    fn tiny_groups_pass_through() {
        let mut updates = vec![vec![1.0, 0.0], vec![-1.0, 0.0]];
        let report = filter_updates(&mut updates, &DefenseConfig::default());
        assert_eq!(report.accepted, vec![0, 1]);
        assert!(report.rejected.is_empty());
        assert_eq!(report.cost.similarity_evals, 0);
    }

    #[test]
    fn empty_input_is_safe() {
        let mut updates: Vec<Vec<f32>> = Vec::new();
        let report = filter_updates(&mut updates, &DefenseConfig::default());
        assert!(report.accepted.is_empty() && report.rejected.is_empty());
    }

    #[test]
    fn cost_is_quadratic_in_group_size() {
        for &n in &[4usize, 8, 16] {
            let mut updates = benign_and_attacked(n, 0, 8, 4);
            let report = filter_updates(&mut updates, &DefenseConfig::default());
            assert_eq!(
                report.cost.similarity_evals,
                (n * (n - 1) / 2) as u64,
                "n={n}"
            );
        }
    }

    #[test]
    fn never_rejects_majority() {
        // Even with an adversarial 50/50 split, the defense must not reject
        // half the group (max_reject_fraction gate).
        let mut updates = benign_and_attacked(5, 5, 16, 5);
        let report = filter_updates(&mut updates, &DefenseConfig::default());
        assert!(report.rejected.len() < updates.len() / 2 + 1);
        assert!(report.rejected.is_empty(), "50/50 split must be ambiguous");
    }

    #[test]
    fn sign_flip_is_involution() {
        let mut u = vec![1.0, -2.0, 3.0];
        sign_flip_attack(&mut u);
        assert_eq!(u, vec![-1.0, 2.0, -3.0]);
        sign_flip_attack(&mut u);
        assert_eq!(u, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn finite_gate_accepts_normal_updates() {
        assert!(is_update_finite(&[1.0, -2.5, 0.0, f32::MIN, f32::MAX]));
        assert!(is_update_finite(&[]));
    }

    #[test]
    fn finite_gate_rejects_nan_and_infinities() {
        assert!(!is_update_finite(&[1.0, f32::NAN, 2.0]));
        assert!(!is_update_finite(&[f32::INFINITY]));
        assert!(!is_update_finite(&[0.0, f32::NEG_INFINITY]));
    }

    #[test]
    fn split_non_finite_partitions_in_order() {
        let updates = vec![
            vec![1.0, 2.0],
            vec![f32::NAN, 0.0],
            vec![3.0],
            vec![f32::INFINITY],
            vec![-1.0],
        ];
        let (finite, bad) = split_non_finite(&updates);
        assert_eq!(finite, vec![0, 2, 4]);
        assert_eq!(bad, vec![1, 3]);
        let (all, none) = split_non_finite(&[]);
        assert!(all.is_empty() && none.is_empty());
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }
}
