//! Robust aggregation rules — the classic alternatives to filtering that a
//! group aggregator can run instead of (or after) backdoor detection.
//!
//! The paper's cost model charges one "backdoor detection" per group round
//! but is agnostic about which defense runs; these rules let the simulator
//! explore the defense design space:
//!
//! * [`coordinate_median`] — per-coordinate median; breakdown point 1/2.
//! * [`trimmed_mean`] — per-coordinate mean after dropping the `b` largest
//!   and smallest values; the standard Byzantine-robust estimator.
//! * [`krum`] — selects the update closest to its `n − f − 2` nearest
//!   neighbours (Blanchard et al., NeurIPS'17); `multi_krum` averages the
//!   top `m` selections.
//!
//! All rules take plain `&[Vec<f32>]` updates, matching the flat-parameter
//! convention of the rest of the stack.

use gfl_tensor::Scalar;

/// Per-coordinate median of the updates.
///
/// # Panics
/// Panics on empty input or ragged dimensions.
pub fn coordinate_median(updates: &[Vec<Scalar>]) -> Vec<Scalar> {
    assert!(!updates.is_empty(), "no updates to aggregate");
    let dim = updates[0].len();
    let mut out = vec![0.0; dim];
    let mut column = vec![0.0; updates.len()];
    for (j, o) in out.iter_mut().enumerate() {
        for (c, u) in column.iter_mut().zip(updates.iter()) {
            assert_eq!(u.len(), dim, "ragged updates");
            *c = u[j];
        }
        column.sort_by(Scalar::total_cmp);
        let mid = column.len() / 2;
        *o = if column.len() % 2 == 1 {
            column[mid]
        } else {
            0.5 * (column[mid - 1] + column[mid])
        };
    }
    out
}

/// Per-coordinate mean after trimming the `trim` smallest and `trim`
/// largest values.
///
/// # Panics
/// Panics unless `2·trim < updates.len()`.
pub fn trimmed_mean(updates: &[Vec<Scalar>], trim: usize) -> Vec<Scalar> {
    assert!(!updates.is_empty(), "no updates to aggregate");
    assert!(
        2 * trim < updates.len(),
        "trim {trim} too large for {} updates",
        updates.len()
    );
    let dim = updates[0].len();
    let keep = updates.len() - 2 * trim;
    let mut out = vec![0.0; dim];
    let mut column = vec![0.0; updates.len()];
    for (j, o) in out.iter_mut().enumerate() {
        for (c, u) in column.iter_mut().zip(updates.iter()) {
            assert_eq!(u.len(), dim, "ragged updates");
            *c = u[j];
        }
        column.sort_by(Scalar::total_cmp);
        *o = column[trim..updates.len() - trim].iter().sum::<Scalar>() / keep as Scalar;
    }
    out
}

/// Krum score of every update: sum of its `n − f − 2` smallest squared
/// distances to other updates.
fn krum_scores(updates: &[Vec<Scalar>], byzantine: usize) -> Vec<Scalar> {
    let n = updates.len();
    let closest = n.saturating_sub(byzantine + 2).max(1);
    let mut scores = Vec::with_capacity(n);
    let mut dists = vec![0.0; n];
    for (i, ui) in updates.iter().enumerate() {
        for (j, uj) in updates.iter().enumerate() {
            dists[j] = if i == j {
                Scalar::INFINITY
            } else {
                ui.iter()
                    .zip(uj.iter())
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum()
            };
        }
        dists.sort_by(Scalar::total_cmp);
        scores.push(dists[..closest].iter().sum());
    }
    scores
}

/// Krum: index of the update with the smallest score, tolerating up to
/// `byzantine` malicious updates.
///
/// # Panics
/// Panics on empty input.
pub fn krum(updates: &[Vec<Scalar>], byzantine: usize) -> usize {
    assert!(!updates.is_empty(), "no updates to aggregate");
    let scores = krum_scores(updates, byzantine);
    // `total_cmp` orders NaN scores after every finite score, so a single
    // non-finite update cannot panic the aggregator — it just loses.
    scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap()
}

/// Multi-Krum: averages the `m` best-scored updates.
pub fn multi_krum(updates: &[Vec<Scalar>], byzantine: usize, m: usize) -> Vec<Scalar> {
    assert!(!updates.is_empty(), "no updates to aggregate");
    let m = m.clamp(1, updates.len());
    let scores = krum_scores(updates, byzantine);
    let mut order: Vec<usize> = (0..updates.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let dim = updates[0].len();
    let mut out = vec![0.0; dim];
    for &i in &order[..m] {
        gfl_tensor::ops::add_assign(&updates[i], &mut out);
    }
    gfl_tensor::ops::scale(1.0 / m as Scalar, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_outlier() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 1.0],
            vec![1.1, 0.9],
            vec![0.9, 1.1],
            vec![1.05, 0.95],
            vec![100.0, -100.0], // attacker
        ]
    }

    #[test]
    fn median_ignores_the_outlier() {
        let m = coordinate_median(&with_outlier());
        assert!((m[0] - 1.05).abs() < 1e-6);
        assert!((m[1] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn median_even_count_averages_middle_pair() {
        let m = coordinate_median(&[vec![1.0], vec![3.0], vec![2.0], vec![4.0]]);
        assert!((m[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn trimmed_mean_removes_extremes() {
        let t = trimmed_mean(&with_outlier(), 1);
        // drops 100 and the smallest; stays near 1.0
        assert!((t[0] - 1.05).abs() < 0.1, "{t:?}");
        assert!((t[1] - 0.95).abs() < 0.1, "{t:?}");
    }

    #[test]
    fn trimmed_mean_zero_trim_is_plain_mean() {
        let ups = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let t = trimmed_mean(&ups, 0);
        assert_eq!(t, vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "trim 2 too large")]
    fn over_trim_panics() {
        trimmed_mean(&[vec![1.0], vec![2.0], vec![3.0]], 2);
    }

    #[test]
    fn krum_picks_a_central_honest_update() {
        let picked = krum(&with_outlier(), 1);
        assert!(picked < 4, "krum must not pick the attacker, got {picked}");
    }

    #[test]
    fn multi_krum_average_is_near_honest_mean() {
        let agg = multi_krum(&with_outlier(), 1, 3);
        assert!((agg[0] - 1.0).abs() < 0.15, "{agg:?}");
        assert!((agg[1] - 1.0).abs() < 0.15, "{agg:?}");
    }

    #[test]
    fn krum_single_update_is_trivial() {
        assert_eq!(krum(&[vec![5.0]], 0), 0);
    }

    #[test]
    fn robust_rules_match_mean_on_clean_identical_updates() {
        let ups = vec![vec![2.0, -1.0]; 6];
        assert_eq!(coordinate_median(&ups), vec![2.0, -1.0]);
        assert_eq!(trimmed_mean(&ups, 1), vec![2.0, -1.0]);
        assert_eq!(multi_krum(&ups, 1, 3), vec![2.0, -1.0]);
    }

    #[test]
    fn nan_bearing_update_cannot_panic_any_rule() {
        // Regression: krum/multi-krum used `partial_cmp().unwrap()`, so one
        // non-finite coordinate panicked the aggregator mid-round.
        let mut ups = with_outlier();
        ups[4] = vec![Scalar::NAN, Scalar::NAN];
        let picked = krum(&ups, 1);
        assert!(picked < 4, "krum must avoid the NaN update, got {picked}");
        let mk = multi_krum(&ups, 1, 3);
        assert!(mk.iter().all(|v| v.is_finite()), "{mk:?}");
        // NaN sorts last under total_cmp: a minority of NaN values cannot
        // reach the median or survive the trim.
        let med = coordinate_median(&ups);
        assert!(med.iter().all(|v| v.is_finite()), "{med:?}");
        let tm = trimmed_mean(&ups, 1);
        assert!(tm.iter().all(|v| v.is_finite()), "{tm:?}");
    }

    fn random_updates(n: usize, dim: usize, seed: u64) -> Vec<Vec<Scalar>> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect()
    }

    fn rotations(ups: &[Vec<Scalar>]) -> Vec<Vec<Vec<Scalar>>> {
        (1..ups.len())
            .map(|s| {
                let mut p = ups.to_vec();
                p.rotate_left(s);
                p
            })
            .collect()
    }

    #[test]
    fn median_and_trimmed_mean_are_permutation_invariant_bitwise() {
        let ups = random_updates(9, 64, 5);
        let med = coordinate_median(&ups);
        let tm = trimmed_mean(&ups, 2);
        for perm in rotations(&ups) {
            // Sorting each coordinate column canonicalizes the summation
            // order, so the result is *bitwise* identical, not just close.
            assert_eq!(coordinate_median(&perm), med);
            assert_eq!(trimmed_mean(&perm, 2), tm);
        }
    }

    #[test]
    fn krum_family_is_permutation_invariant_bitwise() {
        let ups = random_updates(9, 64, 6);
        let selected = ups[krum(&ups, 2)].clone();
        let mk = multi_krum(&ups, 2, 4);
        for perm in rotations(&ups) {
            assert_eq!(perm[krum(&perm, 2)], selected);
            assert_eq!(multi_krum(&perm, 2, 4), mk);
        }
    }
}
