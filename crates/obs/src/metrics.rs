//! Named metrics: counters, gauges, and fixed-bucket histograms.
//!
//! Instruments are registered on first use (`registry.counter("name")`) and
//! shared via `Arc`, so hot paths can hold an instrument directly and update
//! it with a single relaxed atomic — the registry lock is only taken at
//! registration and snapshot time. Snapshots are plain serializable structs
//! sorted by name, suitable for the JSONL summary record and CLI tables.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An invalid instrument registration, caught before the instrument exists.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsError {
    /// A histogram was registered with no bucket bounds: every observation
    /// would land in the overflow bucket and the histogram says nothing.
    EmptyBounds { name: String },
    /// A bucket bound is NaN or infinite (`bounds[index]`): comparisons
    /// against it misbucket silently.
    NonFiniteBound { name: String, index: usize },
    /// Bounds are not strictly increasing at `index` (`bounds[index] >=
    /// bounds[index + 1]`): observations land in the first matching bucket,
    /// so later buckets are unreachable.
    UnsortedBounds { name: String, index: usize },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::EmptyBounds { name } => {
                write!(f, "histogram `{name}`: bucket bounds must be non-empty")
            }
            MetricsError::NonFiniteBound { name, index } => {
                write!(f, "histogram `{name}`: bound {index} is not finite")
            }
            MetricsError::UnsortedBounds { name, index } => write!(
                f,
                "histogram `{name}`: bounds must be strictly increasing (violated at index {index})"
            ),
        }
    }
}

impl std::error::Error for MetricsError {}

/// Validates histogram bucket bounds: non-empty, all finite, strictly
/// increasing.
fn validate_bounds(name: &str, bounds: &[f64]) -> Result<(), MetricsError> {
    if bounds.is_empty() {
        return Err(MetricsError::EmptyBounds { name: name.into() });
    }
    if let Some(index) = bounds.iter().position(|b| !b.is_finite()) {
        return Err(MetricsError::NonFiniteBound {
            name: name.into(),
            index,
        });
    }
    if let Some(index) = bounds.windows(2).position(|w| w[0] >= w[1]) {
        return Err(MetricsError::UnsortedBounds {
            name: name.into(),
            index,
        });
    }
    Ok(())
}

/// Monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins `f64` gauge (stored as bits in an atomic).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram: `bounds` are upper edges; an observation lands in
/// the first bucket whose bound is `>=` the value, or the overflow bucket.
///
/// `counts.len() == bounds.len() + 1`; the last slot is the overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop: atomic f64 accumulate via bit transmutation.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// Get-or-register registry of named instruments.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut list = self.counters.lock().unwrap();
        if let Some((_, c)) = list.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        list.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Returns the gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut list = self.gauges.lock().unwrap();
        if let Some((_, g)) = list.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        list.push((name.to_string(), Arc::clone(&g)));
        g
    }

    /// Returns the histogram named `name`, registering it with the given
    /// bucket bounds on first use (later calls ignore `bounds`).
    ///
    /// # Panics
    /// Panics when the first registration carries malformed bounds — empty,
    /// non-finite, or not strictly increasing. Use
    /// [`MetricsRegistry::try_histogram`] for a typed error instead.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.try_histogram(name, bounds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`MetricsRegistry::histogram`] that validates the bucket bounds at
    /// registration (non-empty, finite, strictly increasing) and returns a
    /// typed [`MetricsError`] instead of silently misbucketing. Bounds of
    /// later calls for an already-registered name are not re-validated —
    /// they are ignored, like in `histogram`.
    pub fn try_histogram(
        &self,
        name: &str,
        bounds: &[f64],
    ) -> Result<Arc<Histogram>, MetricsError> {
        let mut list = self.histograms.lock().unwrap();
        if let Some((_, h)) = list.iter().find(|(n, _)| n == name) {
            return Ok(Arc::clone(h));
        }
        validate_bounds(name, bounds)?;
        let h = Arc::new(Histogram::new(bounds));
        list.push((name.to_string(), Arc::clone(&h)));
        Ok(h)
    }

    /// Serializable snapshot of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| CounterSnapshot {
                name: n.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| GaugeSnapshot {
                name: n.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: n.clone(),
                bounds: h.bounds.clone(),
                counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                count: h.count(),
                sum: h.sum(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    pub name: String,
    pub value: f64,
}

/// Point-in-time state of one histogram. `counts.len() == bounds.len() + 1`
/// (last slot is the overflow bucket).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

/// Snapshot of a whole registry, embedded in the trace summary record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }
}

/// Millisecond-scale bucket bounds used for per-round phase-time histograms.
pub const PHASE_MS_BUCKETS: [f64; 10] = [0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("a.b").get(), 5, "same instrument on reuse");
        reg.gauge("g").set(2.5);
        assert_eq!(reg.gauge("g").get(), 2.5);
    }

    #[test]
    fn histogram_buckets_values() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.counts, vec![1, 1, 1]);
        assert_eq!(hs.count, 3);
        assert!((hs.sum - 55.5).abs() < 1e-9);
    }

    #[test]
    fn gauge_round_trips_negative_and_subnormal_values_through_the_bit_cast() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        // Negative values: the sign bit must survive the u64 transmutation.
        g.set(-273.15);
        assert_eq!(g.get(), -273.15);
        assert_eq!(g.get().to_bits(), (-273.15f64).to_bits());
        // Negative zero is a distinct bit pattern from +0.0.
        g.set(-0.0);
        assert_eq!(g.get().to_bits(), (-0.0f64).to_bits());
        // Subnormals: the smallest positive f64 (5e-324) and a negative
        // subnormal — exponent bits all zero, mantissa non-zero.
        let tiny = f64::from_bits(1);
        assert!(tiny > 0.0 && !tiny.is_normal());
        g.set(tiny);
        assert_eq!(g.get().to_bits(), 1);
        let neg_sub = f64::from_bits((1u64 << 63) | 0xFFF);
        assert!(neg_sub < 0.0 && !neg_sub.is_normal());
        g.set(neg_sub);
        assert_eq!(g.get().to_bits(), neg_sub.to_bits());
        // NaN payload bits survive too (get() returns *some* NaN with the
        // exact stored bits).
        g.set(f64::NAN);
        assert!(g.get().is_nan());
    }

    #[test]
    fn concurrent_counter_adds_under_the_pool_lose_no_increments() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pool.hits");
        const PARTICIPANTS: usize = 8;
        const ADDS_PER_PARTICIPANT: u64 = 10_000;
        gfl_parallel::region(PARTICIPANTS, |p| {
            for i in 0..ADDS_PER_PARTICIPANT {
                // Mix inc() and add() so both entry points are exercised.
                if i % 2 == 0 {
                    c.inc();
                } else {
                    c.add(1 + (p as u64 % 2));
                }
            }
        });
        // Participant p adds 10k/2 ones plus 10k/2 of (1 + p%2):
        let expected: u64 = (0..PARTICIPANTS as u64)
            .map(|p| ADDS_PER_PARTICIPANT / 2 + (ADDS_PER_PARTICIPANT / 2) * (1 + p % 2))
            .sum();
        assert_eq!(c.get(), expected);
    }

    #[test]
    fn try_histogram_rejects_malformed_bounds_with_typed_errors() {
        let reg = MetricsRegistry::new();
        assert_eq!(
            reg.try_histogram("empty", &[]).unwrap_err(),
            MetricsError::EmptyBounds {
                name: "empty".into()
            }
        );
        assert_eq!(
            reg.try_histogram("nan", &[1.0, f64::NAN]).unwrap_err(),
            MetricsError::NonFiniteBound {
                name: "nan".into(),
                index: 1
            }
        );
        assert_eq!(
            reg.try_histogram("inf", &[f64::INFINITY, 2.0]).unwrap_err(),
            MetricsError::NonFiniteBound {
                name: "inf".into(),
                index: 0
            }
        );
        assert_eq!(
            reg.try_histogram("unsorted", &[1.0, 3.0, 2.0]).unwrap_err(),
            MetricsError::UnsortedBounds {
                name: "unsorted".into(),
                index: 1
            }
        );
        assert_eq!(
            reg.try_histogram("dup", &[1.0, 1.0]).unwrap_err(),
            MetricsError::UnsortedBounds {
                name: "dup".into(),
                index: 0
            }
        );
        // A rejected registration leaves nothing behind: the snapshot is
        // empty and a later valid registration under the same name works.
        assert!(reg.snapshot().histograms.is_empty());
        assert!(reg.try_histogram("empty", &[1.0, 2.0]).is_ok());
        // Registered names skip re-validation (bounds are ignored).
        assert!(reg.try_histogram("empty", &[]).is_ok());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_panics_on_malformed_bounds() {
        MetricsRegistry::new().histogram("bad", &[2.0, 1.0]);
    }

    #[test]
    fn snapshot_is_sorted_and_serializable() {
        let reg = MetricsRegistry::new();
        reg.counter("z");
        reg.counter("a");
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "a");
        assert_eq!(snap.counters[1].name, "z");
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
