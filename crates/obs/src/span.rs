//! Span records: timed intervals in the run hierarchy.
//!
//! The span tree mirrors Algorithm 1's structure:
//!
//! ```text
//! round t
//! ├── train                  (sampling + outage filter + all group rounds)
//! │   └── group_round k      (one local-SGD epoch across sampled groups)
//! │       └── client_step    (one client's K_t local steps, worker thread)
//! ├── aggregate              (ledger charge + degradation + Line-15 merge,
//! │   └── upload_retry        excluding retry time, reported as `comm`)
//! ├── eval                   (holdout evaluation, on cadence)
//! └── regroup                (self-healing heal pass, when churn is enabled)
//! ```
//!
//! The four phase spans (`train`, `aggregate`, `eval`, `comm`) are disjoint
//! by construction — `comm` (upload-retry handling) is subtracted from the
//! `aggregate` interval — so their sum is a lower bound on round wall time
//! and per-round coverage can be computed without double counting.

use serde::{Deserialize, Serialize};

/// What a span measured. Serialized as the variant name (e.g. `"Round"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// One global round `t` (whole `round_once` body).
    Round,
    /// Synthetic phase span: sampling + outage filtering + local training.
    Train,
    /// One group-round `k` within a round: all sampled groups' client steps.
    GroupRound,
    /// One client's local-SGD unit, recorded from the worker thread.
    ClientStep,
    /// Cost charging, graceful degradation, and the Line-15 weighted merge.
    Aggregate,
    /// One upload retry burst for a group whose upload initially failed.
    UploadRetry,
    /// Synthetic phase span: total upload-retry (communication) time.
    Comm,
    /// Holdout evaluation.
    Eval,
    /// A self-healing regroup (heal) pass.
    Regroup,
}

impl SpanKind {
    /// All kinds, in schema order (stable for summary tables).
    pub const ALL: [SpanKind; 9] = [
        SpanKind::Round,
        SpanKind::Train,
        SpanKind::GroupRound,
        SpanKind::ClientStep,
        SpanKind::Aggregate,
        SpanKind::UploadRetry,
        SpanKind::Comm,
        SpanKind::Eval,
        SpanKind::Regroup,
    ];

    /// Lower-case label used in summary tables and docs.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Round => "round",
            SpanKind::Train => "train",
            SpanKind::GroupRound => "group_round",
            SpanKind::ClientStep => "client_step",
            SpanKind::Aggregate => "aggregate",
            SpanKind::UploadRetry => "upload_retry",
            SpanKind::Comm => "comm",
            SpanKind::Eval => "eval",
            SpanKind::Regroup => "regroup",
        }
    }
}

/// One recorded span. Timestamps are nanoseconds since collector creation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub kind: SpanKind,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Global round `t`, when the span belongs to one.
    pub round: Option<u64>,
    /// Group-round index `k` within the round.
    pub group_round: Option<u64>,
    /// Group id, for group- and client-scoped spans.
    pub group: Option<u64>,
    /// Client id, for `client_step` spans.
    pub client: Option<u64>,
    /// Bytes moved by this span, for `comm`/`upload_retry` spans (schema
    /// v2; absent in v1 traces).
    pub bytes: Option<u64>,
}

/// The total order [`SpanRecord::sort_key`] sorts by: timestamps first,
/// then every identity attribute.
pub type SpanSortKey = (
    u64,
    u64,
    u8,
    Option<u64>,
    Option<u64>,
    Option<u64>,
    Option<u64>,
    Option<u64>,
);

impl SpanRecord {
    /// Total order used everywhere spans are merged: timestamps first, then
    /// every identity attribute. Two spans with identical timings from
    /// different workers (possible on coarse clocks) still land in one
    /// deterministic order, so streamed shard merges and the in-memory
    /// sort agree byte-for-byte.
    pub fn sort_key(&self) -> SpanSortKey {
        (
            self.start_ns,
            self.dur_ns,
            self.kind as u8,
            self.round,
            self.group_round,
            self.group,
            self.client,
            self.bytes,
        )
    }
}

/// Optional attributes attached to a span (all default to `None`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanAttrs {
    pub round: Option<u64>,
    pub group_round: Option<u64>,
    pub group: Option<u64>,
    pub client: Option<u64>,
    pub bytes: Option<u64>,
}

impl SpanAttrs {
    /// Attributes for a round-scoped span.
    pub fn round(t: usize) -> Self {
        SpanAttrs {
            round: Some(t as u64),
            ..SpanAttrs::default()
        }
    }

    /// Attributes for a group-round span (`round t`, `group_round k`).
    pub fn group_round(t: usize, k: usize) -> Self {
        SpanAttrs {
            round: Some(t as u64),
            group_round: Some(k as u64),
            ..SpanAttrs::default()
        }
    }

    /// Attributes for a group-scoped span within a round.
    pub fn group(t: usize, group: usize) -> Self {
        SpanAttrs {
            round: Some(t as u64),
            group: Some(group as u64),
            ..SpanAttrs::default()
        }
    }

    /// Attributes for a client-step span.
    pub fn client_step(t: usize, k: usize, group: usize, client: usize) -> Self {
        SpanAttrs {
            round: Some(t as u64),
            group_round: Some(k as u64),
            group: Some(group as u64),
            client: Some(client as u64),
            bytes: None,
        }
    }

    /// Attaches a byte count (wire traffic the span accounts for).
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.bytes = Some(bytes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_kind_round_trips_through_json() {
        for kind in SpanKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            let back: SpanKind = serde_json::from_str(&json).unwrap();
            assert_eq!(kind, back);
        }
    }

    #[test]
    fn span_record_round_trips_through_json() {
        let rec = SpanRecord {
            kind: SpanKind::ClientStep,
            start_ns: 123,
            dur_ns: 456,
            round: Some(7),
            group_round: Some(1),
            group: Some(2),
            client: Some(40),
            bytes: Some(4096),
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: SpanRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn sort_key_breaks_timestamp_ties_by_identity() {
        let base = SpanRecord {
            kind: SpanKind::ClientStep,
            start_ns: 10,
            dur_ns: 5,
            round: Some(0),
            group_round: Some(0),
            group: Some(0),
            client: Some(3),
            bytes: None,
        };
        let other = SpanRecord {
            client: Some(1),
            ..base
        };
        // Identical timings, different clients: the key still orders them.
        assert!(other.sort_key() < base.sort_key());
        assert_eq!(base.sort_key(), base.sort_key());
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = SpanKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), SpanKind::ALL.len());
    }
}
