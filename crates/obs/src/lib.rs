//! Deterministic observability for the Group-FEL simulator.
//!
//! `gfl-obs` gives every run a measurement substrate — spans, metrics, and a
//! JSONL trace file — without ever touching simulation state. The design
//! invariant is simple and absolute:
//!
//! > **Timing flows out of the simulation, never back in.** A
//! > [`TraceCollector`] observes wall-clock durations and event tallies, but
//! > no simulated quantity (RNG draws, aggregation order, cost accounting)
//! > depends on anything the collector records. Runs are therefore
//! > bit-identical with tracing on, off, or at any thread count — a property
//! > asserted by the determinism suite in `gfl-core`.
//!
//! Three layers (see `docs/OBSERVABILITY.md` for the full catalog):
//!
//! * [`span::SpanRecord`] — timed intervals in the hierarchy
//!   `round > group_round > client_step`, plus `aggregate`, `eval`,
//!   `regroup`, `upload_retry` and the synthetic `train` / `comm` phase
//!   spans. Timestamps are nanoseconds relative to collector creation
//!   (monotonic clock).
//! * [`metrics::MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms. The engine records per-round phase times, pool utilization
//!   and steal counts (from `gfl_parallel::stats`), allocations per round
//!   (via [`alloc`]), fault/churn/regroup tallies, and simulated cost.
//! * [`trace`] — a versioned JSONL sink ([`trace::Trace::save`]) and the
//!   [`trace::TraceReader`] tests use to assert on runs structurally.
//!
//! The collector is designed for a disabled-by-default world: when no
//! collector is attached the instrumented code paths are `Option::None`
//! checks with zero allocations and zero atomics on the hot loop.

pub mod alloc;
pub mod metrics;
pub mod span;
pub mod trace;

use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanAttrs, SpanKind, SpanRecord};
pub use trace::{
    RoundMetrics, RunSummary, SpanTotal, Trace, TraceError, TraceMeta, TraceReader, SCHEMA_VERSION,
};

/// Collects spans, per-round metrics, and registry metrics for one run.
///
/// Cheap to share (`Arc`), safe to record into from worker threads. All
/// methods take `&self`; interior mutability is a pair of mutex-guarded
/// vectors (span/round records) plus the lock-free [`MetricsRegistry`].
pub struct TraceCollector {
    start: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    rounds: Mutex<Vec<RoundMetrics>>,
    metrics: MetricsRegistry,
}

impl TraceCollector {
    /// Creates a collector; the monotonic clock starts now.
    pub fn new() -> Arc<Self> {
        Arc::new(TraceCollector {
            start: Instant::now(),
            spans: Mutex::new(Vec::new()),
            rounds: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        })
    }

    /// Nanoseconds since the collector was created (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Records a span that started at `start_ns` (from [`Self::now_ns`]) and
    /// ends now.
    pub fn record_span(&self, kind: SpanKind, start_ns: u64, attrs: SpanAttrs) {
        let end = self.now_ns();
        self.record_span_at(kind, start_ns, end, attrs);
    }

    /// Records a span with explicit start and end timestamps.
    pub fn record_span_at(&self, kind: SpanKind, start_ns: u64, end_ns: u64, attrs: SpanAttrs) {
        let rec = SpanRecord {
            kind,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            round: attrs.round,
            group_round: attrs.group_round,
            group: attrs.group,
            client: attrs.client,
        };
        self.spans.lock().unwrap().push(rec);
    }

    /// Appends one round's phase breakdown and tallies.
    pub fn record_round(&self, metrics: RoundMetrics) {
        self.rounds.lock().unwrap().push(metrics);
    }

    /// The named-metric registry (counters / gauges / histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of rounds recorded so far.
    pub fn rounds_recorded(&self) -> usize {
        self.rounds.lock().unwrap().len()
    }

    /// Freezes the collector into a [`Trace`]: spans sorted by start time,
    /// per-round metrics in round order, and a computed [`RunSummary`].
    ///
    /// `threads` is recorded in the trace meta line for reproducibility.
    pub fn finish(&self, threads: usize) -> Trace {
        let mut spans = self.spans.lock().unwrap().clone();
        // Worker threads push client_step spans in nondeterministic order;
        // sort so the serialized trace is stable given identical timings.
        spans.sort_by_key(|s| (s.start_ns, s.dur_ns));
        let rounds = self.rounds.lock().unwrap().clone();
        let summary = trace::summarize(self.now_ns(), &spans, &rounds, self.metrics.snapshot());
        Trace {
            meta: TraceMeta {
                schema_version: SCHEMA_VERSION,
                producer: format!("gfl-obs {}", env!("CARGO_PKG_VERSION")),
                threads: threads as u64,
            },
            spans,
            rounds,
            summary: Some(summary),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_records_spans_and_rounds() {
        let c = TraceCollector::new();
        let t0 = c.now_ns();
        c.record_span(SpanKind::Round, t0, SpanAttrs::round(3));
        c.record_span_at(
            SpanKind::ClientStep,
            10,
            25,
            SpanAttrs::client_step(3, 1, 0, 7),
        );
        c.metrics().counter("events.faults").add(2);
        c.record_round(RoundMetrics::empty(3));
        let trace = c.finish(4);
        assert_eq!(trace.meta.schema_version, SCHEMA_VERSION);
        assert_eq!(trace.meta.threads, 4);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.rounds.len(), 1);
        let summary = trace.summary.as_ref().unwrap();
        assert_eq!(summary.rounds, 1);
        let faults = summary
            .metrics
            .counters
            .iter()
            .find(|c| c.name == "events.faults")
            .unwrap();
        assert_eq!(faults.value, 2);
        // Spans sorted by start.
        assert!(trace.spans[0].start_ns <= trace.spans[1].start_ns);
    }
}
