//! Deterministic observability for the Group-FEL simulator.
//!
//! `gfl-obs` gives every run a measurement substrate — spans, metrics, and a
//! JSONL trace file — without ever touching simulation state. The design
//! invariant is simple and absolute:
//!
//! > **Timing flows out of the simulation, never back in.** A
//! > [`TraceCollector`] observes wall-clock durations and event tallies, but
//! > no simulated quantity (RNG draws, aggregation order, cost accounting)
//! > depends on anything the collector records. Runs are therefore
//! > bit-identical with tracing on, off, or at any thread count — a property
//! > asserted by the determinism suite in `gfl-core`.
//!
//! Three layers (see `docs/OBSERVABILITY.md` for the full catalog):
//!
//! * [`span::SpanRecord`] — timed intervals in the hierarchy
//!   `round > group_round > client_step`, plus `aggregate`, `eval`,
//!   `regroup`, `upload_retry` and the synthetic `train` / `comm` phase
//!   spans. Timestamps are nanoseconds relative to collector creation
//!   (monotonic clock).
//! * [`metrics::MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms. The engine records per-round phase times, pool utilization
//!   and steal counts (from `gfl_parallel::stats`), allocations per round
//!   (via [`alloc`]), fault/churn/regroup tallies, simulated cost, and
//!   cumulative `comm.bytes.*` link traffic.
//! * [`trace`] — a versioned JSONL sink ([`trace::Trace::save`]) and the
//!   [`trace::TraceReader`] tests use to assert on runs structurally.
//!
//! # Collection modes
//!
//! Spans land in one of [`SHARDS`] mutex-guarded buffers keyed by
//! [`gfl_parallel::worker_index`], so pool workers almost never contend on a
//! shared lock. From there:
//!
//! * **In-memory** ([`TraceCollector::new`]): shards grow unbounded and
//!   [`TraceCollector::finish`] freezes everything into a [`Trace`].
//! * **Streaming** ([`TraceCollector::streaming_to`]): shards drain to a
//!   JSONL v2 writer at every round barrier ([`TraceCollector::record_round`])
//!   and spill early if a shard's slice of [`StreamConfig::span_buffer_cap`]
//!   fills, so buffered-span memory stays bounded for arbitrarily long runs.
//!   The streamed file is byte-identical to what the in-memory path would
//!   have serialized for the same run (same barrier layout, same
//!   deterministic [`span::SpanRecord::sort_key`] order within each round).
//!
//! The collector is designed for a disabled-by-default world: when no
//! collector is attached the instrumented code paths are `Option::None`
//! checks with zero allocations and zero atomics on the hot loop.

pub mod alloc;
pub mod diff;
pub mod metrics;
pub mod span;
pub mod stream;
pub mod trace;

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use metrics::{Counter, Gauge, Histogram, MetricsError, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanAttrs, SpanKind, SpanRecord};
pub use stream::StreamConfig;
pub use trace::{
    RoundMetrics, RunSummary, SpanTotal, Trace, TraceError, TraceMeta, TraceReader, SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
};

/// Number of span-buffer shards. Pool worker `i` writes to shard
/// `1 + i % (SHARDS - 1)`; every non-pool thread (the region caller,
/// single-threaded runs) shares shard 0.
pub const SHARDS: usize = 16;

fn shard_index() -> usize {
    match gfl_parallel::worker_index() {
        Some(i) => 1 + i % (SHARDS - 1),
        None => 0,
    }
}

struct StreamState {
    sink: stream::StreamSink,
    /// Per-shard buffered-span cap (`span_buffer_cap / SHARDS`, min 1).
    per_shard_cap: usize,
    /// Thread count frozen into the meta line at construction.
    threads: u64,
    /// Retain streamed spans in memory too (tee mode, for byte-identity
    /// proofs in tests). Defeats the memory bound; not for production runs.
    retain: bool,
}

/// Collects spans, per-round metrics, and registry metrics for one run.
///
/// Cheap to share (`Arc`), safe to record into from worker threads. Spans
/// land in sharded mutex-guarded buffers (shard keyed by pool worker);
/// round records and the lock-free [`MetricsRegistry`] complete the state.
pub struct TraceCollector {
    start: Instant,
    shards: Vec<Mutex<Vec<SpanRecord>>>,
    rounds: Mutex<Vec<RoundMetrics>>,
    metrics: MetricsRegistry,
    /// Running per-kind aggregates (indexed by `SpanKind as usize`), so the
    /// summary never needs the retained span list.
    kind_counts: [AtomicU64; SpanKind::ALL.len()],
    kind_total_ns: [AtomicU64; SpanKind::ALL.len()],
    /// Spans currently buffered across all shards, and the high-water mark
    /// (proves the streaming memory bound in tests).
    buffered: AtomicUsize,
    buffered_high_water: AtomicUsize,
    stream: Option<StreamState>,
    /// Tee-mode copy of everything handed to the stream.
    retained: Mutex<Vec<SpanRecord>>,
}

impl TraceCollector {
    fn build(stream: Option<StreamState>) -> Arc<Self> {
        Arc::new(TraceCollector {
            start: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            rounds: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
            kind_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            kind_total_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            buffered: AtomicUsize::new(0),
            buffered_high_water: AtomicUsize::new(0),
            stream,
            retained: Mutex::new(Vec::new()),
        })
    }

    /// Creates an in-memory collector; the monotonic clock starts now.
    pub fn new() -> Arc<Self> {
        Self::build(None)
    }

    /// Creates a streaming collector writing schema-v2 JSONL to `path`.
    ///
    /// The meta line (recording `threads`) is written and flushed
    /// immediately; spans stream out at round barriers and the summary at
    /// [`Self::finish`]. Buffered spans never exceed
    /// [`Self::span_buffer_bound`].
    pub fn streaming_to(path: &Path, threads: usize, cfg: StreamConfig) -> io::Result<Arc<Self>> {
        let file = File::create(path)?;
        Ok(Self::streaming(Box::new(file), threads, cfg))
    }

    /// Streaming collector over an arbitrary writer (see
    /// [`Self::streaming_to`]).
    pub fn streaming(
        writer: Box<dyn Write + Send>,
        threads: usize,
        cfg: StreamConfig,
    ) -> Arc<Self> {
        Self::build(Some(Self::stream_state(writer, threads, cfg, false)))
    }

    /// Streaming collector that *also* retains every span in memory, so
    /// tests can compare the streamed bytes against the in-memory
    /// serialization of the same run. Defeats the memory bound on purpose.
    pub fn streaming_tee(
        writer: Box<dyn Write + Send>,
        threads: usize,
        cfg: StreamConfig,
    ) -> Arc<Self> {
        Self::build(Some(Self::stream_state(writer, threads, cfg, true)))
    }

    fn stream_state(
        writer: Box<dyn Write + Send>,
        threads: usize,
        cfg: StreamConfig,
        retain: bool,
    ) -> StreamState {
        let threads = threads as u64;
        let meta = TraceMeta {
            schema_version: SCHEMA_VERSION,
            producer: trace::producer(),
            threads,
        };
        StreamState {
            sink: stream::StreamSink::new(writer, &meta, &cfg),
            per_shard_cap: (cfg.span_buffer_cap / SHARDS).max(1),
            threads,
            retain,
        }
    }

    /// Nanoseconds since the collector was created (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Records a span that started at `start_ns` (from [`Self::now_ns`]) and
    /// ends now.
    pub fn record_span(&self, kind: SpanKind, start_ns: u64, attrs: SpanAttrs) {
        let end = self.now_ns();
        self.record_span_at(kind, start_ns, end, attrs);
    }

    /// Records a span with explicit start and end timestamps.
    pub fn record_span_at(&self, kind: SpanKind, start_ns: u64, end_ns: u64, attrs: SpanAttrs) {
        let rec = SpanRecord {
            kind,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            round: attrs.round,
            group_round: attrs.group_round,
            group: attrs.group,
            client: attrs.client,
            bytes: attrs.bytes,
        };
        let ki = rec.kind as usize;
        self.kind_counts[ki].fetch_add(1, Ordering::Relaxed);
        self.kind_total_ns[ki].fetch_add(rec.dur_ns, Ordering::Relaxed);

        let shard = &self.shards[shard_index()];
        let mut buf = shard.lock().unwrap();
        if let Some(stream) = &self.stream {
            if buf.len() >= stream.per_shard_cap {
                // Mid-round overflow: spill this shard straight to the
                // writer so buffered memory stays bounded. Spilled spans
                // leave barrier order but remain schema-valid.
                let mut spill = std::mem::take(&mut *buf);
                self.buffered.fetch_sub(spill.len(), Ordering::Relaxed);
                spill.sort_by_key(SpanRecord::sort_key);
                if stream.retain {
                    self.retained.lock().unwrap().extend(spill.iter().copied());
                }
                stream.sink.write_spans(&spill);
                spill.clear();
                *buf = spill;
            }
        }
        buf.push(rec);
        drop(buf);
        let now = self.buffered.fetch_add(1, Ordering::Relaxed) + 1;
        self.buffered_high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Appends one round's phase breakdown and tallies.
    ///
    /// In streaming mode this is the flush barrier: all buffered spans drain
    /// to the writer in [`SpanRecord::sort_key`] order ahead of the round
    /// record, reproducing the canonical layout of [`Trace::write_jsonl`].
    pub fn record_round(&self, metrics: RoundMetrics) {
        if let Some(stream) = &self.stream {
            let batch = self.drain_shards();
            if stream.retain {
                self.retained.lock().unwrap().extend(batch.iter().copied());
            }
            stream.sink.write_round(&batch, &metrics);
        }
        self.rounds.lock().unwrap().push(metrics);
    }

    /// Drains every shard, returning the batch sorted by
    /// [`SpanRecord::sort_key`].
    fn drain_shards(&self) -> Vec<SpanRecord> {
        let mut batch = Vec::new();
        for shard in &self.shards {
            batch.append(&mut shard.lock().unwrap());
        }
        self.buffered.fetch_sub(batch.len(), Ordering::Relaxed);
        batch.sort_by_key(SpanRecord::sort_key);
        batch
    }

    /// The named-metric registry (counters / gauges / histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of rounds recorded so far.
    pub fn rounds_recorded(&self) -> usize {
        self.rounds.lock().unwrap().len()
    }

    /// Spans currently buffered in the shards (not yet streamed out).
    pub fn buffered_spans(&self) -> usize {
        self.buffered.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::buffered_spans`] over the collector's
    /// lifetime. In streaming mode this never exceeds
    /// [`Self::span_buffer_bound`].
    pub fn max_buffered_spans(&self) -> usize {
        self.buffered_high_water.load(Ordering::Relaxed)
    }

    /// The hard bound on buffered spans: `per-shard cap × SHARDS` when
    /// streaming (the configured [`StreamConfig::span_buffer_cap`] rounded
    /// up to at least one span per shard), `usize::MAX` in-memory.
    pub fn span_buffer_bound(&self) -> usize {
        match &self.stream {
            Some(s) => s.per_shard_cap * SHARDS,
            None => usize::MAX,
        }
    }

    fn span_totals(&self) -> Vec<SpanTotal> {
        SpanKind::ALL
            .iter()
            .filter_map(|&kind| {
                let count = self.kind_counts[kind as usize].load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                Some(SpanTotal {
                    kind,
                    count,
                    total_ns: self.kind_total_ns[kind as usize].load(Ordering::Relaxed),
                })
            })
            .collect()
    }

    /// Freezes the collector into a [`Trace`]: spans in canonical barrier
    /// order, per-round metrics in round order, and a computed
    /// [`RunSummary`].
    ///
    /// `threads` is recorded in the trace meta line for reproducibility; a
    /// streaming collector already froze its thread count at construction
    /// and ignores the argument. In streaming mode this also writes any
    /// trailing spans plus the summary line and flushes the file — the
    /// returned `Trace` carries spans only in tee mode.
    pub fn finish(&self, threads: usize) -> Trace {
        let wall_ns = self.now_ns();
        let rounds = self.rounds.lock().unwrap().clone();
        let summary = trace::summarize_with_totals(
            wall_ns,
            self.span_totals(),
            &rounds,
            self.metrics.snapshot(),
        );
        let drained = self.drain_shards();
        let (threads, spans) = match &self.stream {
            Some(stream) => {
                stream.sink.finalize(&drained, &summary);
                let spans = if stream.retain {
                    let mut spans = std::mem::take(&mut *self.retained.lock().unwrap());
                    spans.extend(drained);
                    trace::canonical_order(&mut spans, &rounds);
                    spans
                } else {
                    Vec::new()
                };
                (stream.threads, spans)
            }
            None => {
                let mut spans = drained;
                trace::canonical_order(&mut spans, &rounds);
                (threads as u64, spans)
            }
        };
        Trace {
            meta: TraceMeta {
                schema_version: SCHEMA_VERSION,
                producer: trace::producer(),
                threads,
            },
            spans,
            rounds,
            summary: Some(summary),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_records_spans_and_rounds() {
        let c = TraceCollector::new();
        let t0 = c.now_ns();
        c.record_span(SpanKind::Round, t0, SpanAttrs::round(3));
        c.record_span_at(
            SpanKind::ClientStep,
            10,
            25,
            SpanAttrs::client_step(3, 1, 0, 7),
        );
        c.metrics().counter("events.faults").add(2);
        c.record_round(RoundMetrics::empty(3));
        let trace = c.finish(4);
        assert_eq!(trace.meta.schema_version, SCHEMA_VERSION);
        assert_eq!(trace.meta.threads, 4);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.rounds.len(), 1);
        let summary = trace.summary.as_ref().unwrap();
        assert_eq!(summary.rounds, 1);
        let faults = summary
            .metrics
            .counters
            .iter()
            .find(|c| c.name == "events.faults")
            .unwrap();
        assert_eq!(faults.value, 2);
        // Spans sorted by start.
        assert!(trace.spans[0].start_ns <= trace.spans[1].start_ns);
    }

    /// Shared in-memory sink for asserting on streamed bytes.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn record_two_rounds(c: &TraceCollector) {
        for round in 0..2usize {
            for client in 0..5usize {
                let t = (round * 100 + client) as u64;
                c.record_span_at(
                    SpanKind::ClientStep,
                    t,
                    t + 10,
                    SpanAttrs::client_step(round, 0, 0, client),
                );
            }
            let t0 = (round * 100) as u64;
            c.record_span_at(SpanKind::Round, t0, t0 + 90, SpanAttrs::round(round));
            c.record_round(RoundMetrics::empty(round));
        }
    }

    #[test]
    fn streamed_bytes_match_the_in_memory_serialization() {
        let buf = SharedBuf::default();
        let c = TraceCollector::streaming_tee(Box::new(buf.clone()), 3, StreamConfig::default());
        record_two_rounds(&c);
        let trace = c.finish(99); // streaming froze threads=3 at creation
        assert_eq!(trace.meta.threads, 3);
        let streamed = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(streamed, trace.to_jsonl());
        // And the file round-trips through the reader.
        let parsed = TraceReader::parse(&streamed).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn streaming_buffered_spans_respect_the_configured_bound() {
        let buf = SharedBuf::default();
        let cfg = StreamConfig {
            span_buffer_cap: SHARDS, // one span per shard
            ..StreamConfig::default()
        };
        let c = TraceCollector::streaming(Box::new(buf.clone()), 1, cfg);
        // Everything lands on shard 0 (no pool workers here), so the second
        // span already forces a spill.
        for i in 0..100usize {
            let t = i as u64;
            c.record_span_at(
                SpanKind::ClientStep,
                t,
                t + 1,
                SpanAttrs::client_step(0, 0, 0, i),
            );
        }
        c.record_round(RoundMetrics::empty(0));
        assert!(c.max_buffered_spans() <= c.span_buffer_bound());
        assert_eq!(c.buffered_spans(), 0, "barrier must drain all shards");
        let trace = c.finish(1);
        assert!(trace.spans.is_empty(), "non-tee streaming retains nothing");
        let parsed =
            TraceReader::parse(&String::from_utf8(buf.0.lock().unwrap().clone()).unwrap()).unwrap();
        assert_eq!(parsed.spans.len(), 100, "no span lost to spills");
        assert_eq!(parsed.summary, trace.summary);
    }

    #[test]
    fn in_memory_and_streaming_summaries_agree_span_for_span() {
        let mem = TraceCollector::new();
        record_two_rounds(&mem);
        let buf = SharedBuf::default();
        let st = TraceCollector::streaming(Box::new(buf.clone()), 2, StreamConfig::default());
        record_two_rounds(&st);
        let mem_trace = mem.finish(2);
        let st_trace = st.finish(2);
        let mem_summary = mem_trace.summary.as_ref().unwrap();
        let st_summary = st_trace.summary.as_ref().unwrap();
        assert_eq!(mem_summary.span_totals, st_summary.span_totals);
        assert_eq!(mem_summary.rounds, st_summary.rounds);
    }
}
