//! Versioned JSONL trace format: writer, reader, and summary computation.
//!
//! A trace file is newline-delimited JSON. Every line is an object with a
//! `type` field; the first line is always the `meta` record:
//!
//! ```text
//! {"type":"meta","schema_version":2,"producer":"gfl-obs 0.1.0","threads":8}
//! {"type":"span","kind":"Round","start_ns":...,"dur_ns":...,"bytes":...}
//! {"type":"round","round":0,"train_ns":...,"client_edge_bytes":...,...}
//! {"type":"summary","wall_ns":...,"rounds":...,"span_totals":[...],...}
//! ```
//!
//! ## Schema v2: streaming barrier layout and byte accounting
//!
//! v2 traces are written in *barrier order*: each round's spans (sorted by
//! [`SpanRecord::sort_key`]) immediately precede that round's `round`
//! record, because the streaming collector flushes its shard buffers at
//! exactly that boundary. Spans belonging to no recorded round trail the
//! last round, before the `summary`. v2 also adds wire-byte accounting:
//! `bytes` on spans and `client_edge_bytes` / `edge_cloud_bytes` on round
//! records — all optional, so v1 traces (which lack them) still parse.
//!
//! Readers must ignore unknown record types and unknown fields (forward
//! compatibility); writers bump [`SCHEMA_VERSION`] on breaking changes.
//! [`TraceReader`] rejects traces whose major version it does not know.

use crate::metrics::MetricsSnapshot;
use crate::span::{SpanKind, SpanRecord};
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Version of the JSONL schema emitted by this crate.
pub const SCHEMA_VERSION: u32 = 2;

/// Schema versions [`TraceReader`] accepts: v1 (buffered, no byte fields)
/// parses because every v2 addition is optional.
pub const SUPPORTED_VERSIONS: [u32; 2] = [1, 2];

/// The `producer` string this build stamps into trace meta lines.
pub(crate) fn producer() -> String {
    format!("gfl-obs {}", env!("CARGO_PKG_VERSION"))
}

/// First line of every trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    pub schema_version: u32,
    /// Producing crate and version, e.g. `"gfl-obs 0.1.0"`.
    pub producer: String,
    /// Parallelism degree the run used (0 = unknown).
    pub threads: u64,
}

/// One round's phase breakdown and event tallies.
///
/// Phase durations are disjoint: `comm_ns` (upload-retry handling) is
/// excluded from `aggregate_ns`, so
/// `train_ns + aggregate_ns + comm_ns + eval_ns <= wall_ns`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// Global round index `t`.
    pub round: u64,
    /// Whole-round wall time.
    pub wall_ns: u64,
    /// Sampling + outage filtering + local training (all group rounds).
    pub train_ns: u64,
    /// Cost charging + graceful degradation + Line-15 merge (minus comm).
    pub aggregate_ns: u64,
    /// Upload-retry (simulated communication recovery) time.
    pub comm_ns: u64,
    /// Holdout evaluation time (0 when off-cadence).
    pub eval_ns: u64,
    /// Groups that produced an update this round.
    pub groups_trained: u64,
    /// Client training units executed (clients × group rounds).
    pub clients_trained: u64,
    /// Fault events recorded this round.
    pub fault_events: u64,
    /// Cumulative simulated cost after this round (ledger total).
    pub cost_total: f64,
    /// Fork-join regions entered during this round.
    pub pool_regions: u64,
    /// Work items claimed via the pool's atomic cursor this round.
    pub pool_claims: u64,
    /// Claims made by helper workers (not the region caller): "steals".
    pub pool_steals: u64,
    /// Pool busy-time / capacity over this round's regions (0..=1; 0 when no
    /// parallel region ran).
    pub pool_utilization: f64,
    /// Heap allocations during this round (0 unless a counting allocator is
    /// registered via [`crate::alloc::register_alloc_counter`]).
    pub allocs: u64,
    /// Simulated client↔edge wire bytes this round (schema v2; `None` in
    /// v1 traces and on paths that do not model communication).
    pub client_edge_bytes: Option<u64>,
    /// Simulated edge↔cloud wire bytes this round, including failed upload
    /// attempts (schema v2).
    pub edge_cloud_bytes: Option<u64>,
}

impl RoundMetrics {
    /// An all-zero record for round `t` (placeholder for held rounds).
    pub fn empty(t: usize) -> Self {
        RoundMetrics {
            round: t as u64,
            wall_ns: 0,
            train_ns: 0,
            aggregate_ns: 0,
            comm_ns: 0,
            eval_ns: 0,
            groups_trained: 0,
            clients_trained: 0,
            fault_events: 0,
            cost_total: 0.0,
            pool_regions: 0,
            pool_claims: 0,
            pool_steals: 0,
            pool_utilization: 0.0,
            allocs: 0,
            client_edge_bytes: None,
            edge_cloud_bytes: None,
        }
    }

    /// Fraction of this round's wall time covered by the four phase spans.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 1.0;
        }
        let covered = self.train_ns + self.aggregate_ns + self.comm_ns + self.eval_ns;
        covered as f64 / self.wall_ns as f64
    }
}

/// Total duration and count for one span kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanTotal {
    pub kind: SpanKind,
    pub count: u64,
    pub total_ns: u64,
}

/// End-of-run rollup: last line of a complete trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Collector lifetime (ns) when the trace was finalized.
    pub wall_ns: u64,
    /// Rounds with a `round` record.
    pub rounds: u64,
    /// Aggregate phase coverage across all rounds (see
    /// [`RoundMetrics::coverage`]); 1.0 when no rounds were recorded.
    pub coverage: f64,
    /// Per-kind span totals, in [`SpanKind::ALL`] order (kinds with no
    /// recorded span are omitted).
    pub span_totals: Vec<SpanTotal>,
    /// Snapshot of the metrics registry.
    pub metrics: MetricsSnapshot,
}

/// Computes the [`RunSummary`] from per-kind totals already accumulated —
/// the streaming collector's path, where the spans themselves are long
/// gone to disk. `span_totals` must be in [`SpanKind::ALL`] order with
/// zero-count kinds omitted (what [`span_totals_of`] produces).
pub(crate) fn summarize_with_totals(
    wall_ns: u64,
    span_totals: Vec<SpanTotal>,
    rounds: &[RoundMetrics],
    metrics: MetricsSnapshot,
) -> RunSummary {
    let (covered, wall): (u64, u64) = rounds.iter().fold((0, 0), |(c, w), r| {
        (
            c + r.train_ns + r.aggregate_ns + r.comm_ns + r.eval_ns,
            w + r.wall_ns,
        )
    });
    let coverage = if wall == 0 {
        1.0
    } else {
        covered as f64 / wall as f64
    };
    RunSummary {
        wall_ns,
        rounds: rounds.len() as u64,
        coverage,
        span_totals,
        metrics,
    }
}

/// Per-kind span totals in [`SpanKind::ALL`] order, zero-count kinds
/// omitted. Useful for re-deriving summary aggregates from a parsed trace
/// (e.g. the `gfl-trace summarize` command).
pub fn span_totals_of(spans: &[SpanRecord]) -> Vec<SpanTotal> {
    let mut span_totals = Vec::new();
    for kind in SpanKind::ALL {
        let (mut count, mut total_ns) = (0u64, 0u64);
        for s in spans.iter().filter(|s| s.kind == kind) {
            count += 1;
            total_ns += s.dur_ns;
        }
        if count > 0 {
            span_totals.push(SpanTotal {
                kind,
                count,
                total_ns,
            });
        }
    }
    span_totals
}

/// Reorders `spans` into the canonical v2 barrier layout: for each entry of
/// `rounds` (in recorded order), that round's spans sorted by
/// [`SpanRecord::sort_key`]; spans matching no recorded round trail, also
/// sorted. This is exactly the order the streaming collector writes spans
/// to disk in, so an in-memory trace serializes byte-identically to a
/// streamed one.
pub(crate) fn canonical_order(spans: &mut Vec<SpanRecord>, rounds: &[RoundMetrics]) {
    let mut out = Vec::with_capacity(spans.len());
    let mut scratch: Vec<SpanRecord> = Vec::new();
    for r in rounds {
        let mut i = 0;
        while i < spans.len() {
            if spans[i].round == Some(r.round) {
                scratch.push(spans.swap_remove(i));
            } else {
                i += 1;
            }
        }
        scratch.sort_by_key(|s| s.sort_key());
        out.append(&mut scratch);
    }
    spans.sort_by_key(|s| s.sort_key());
    out.append(spans);
    *spans = out;
}

/// A complete trace: what [`crate::TraceCollector::finish`] produces and
/// what [`TraceReader`] parses back.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub meta: TraceMeta,
    pub spans: Vec<SpanRecord>,
    pub rounds: Vec<RoundMetrics>,
    pub summary: Option<RunSummary>,
}

impl Trace {
    /// Serializes the trace as JSONL into `w` (buffered internally), in the
    /// canonical v2 barrier layout: each round's spans (sorted by
    /// [`SpanRecord::sort_key`]) immediately before that round's record,
    /// unmatched spans after the last round, then the summary. The
    /// streaming collector emits this exact byte sequence incrementally, so
    /// a streamed file and an in-memory trace of the same run compare
    /// equal byte-for-byte.
    pub fn write_jsonl<W: Write>(&self, w: W) -> std::io::Result<()> {
        let mut w = BufWriter::new(w);
        writeln!(w, "{}", tagged_line("meta", &self.meta))?;
        let mut ordered = self.spans.clone();
        canonical_order(&mut ordered, &self.rounds);
        let mut next = 0usize;
        for round in &self.rounds {
            while next < ordered.len() && ordered[next].round == Some(round.round) {
                writeln!(w, "{}", tagged_line("span", &ordered[next]))?;
                next += 1;
            }
            writeln!(w, "{}", tagged_line("round", round))?;
        }
        for span in &ordered[next..] {
            writeln!(w, "{}", tagged_line("span", span))?;
        }
        if let Some(summary) = &self.summary {
            writeln!(w, "{}", tagged_line("summary", summary))?;
        }
        w.flush()
    }

    /// Writes the trace to `path` as JSONL.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_jsonl(file)
    }

    /// Renders the trace as a single JSONL string.
    pub fn to_jsonl(&self) -> String {
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf).expect("in-memory write");
        String::from_utf8(buf).expect("JSON is UTF-8")
    }

    /// Total recorded duration for one span kind (ns).
    pub fn span_total_ns(&self, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Number of recorded spans of `kind`.
    pub fn span_count(&self, kind: SpanKind) -> usize {
        self.spans.iter().filter(|s| s.kind == kind).count()
    }

    /// Aggregate phase coverage across all recorded rounds: the fraction of
    /// round wall time accounted for by train/aggregate/comm/eval.
    pub fn round_coverage(&self) -> f64 {
        let (covered, wall): (u64, u64) = self.rounds.iter().fold((0, 0), |(c, w), r| {
            (
                c + r.train_ns + r.aggregate_ns + r.comm_ns + r.eval_ns,
                w + r.wall_ns,
            )
        });
        if wall == 0 {
            1.0
        } else {
            covered as f64 / wall as f64
        }
    }
}

/// Serializes `record` and injects `"type": tag` as the first field.
pub(crate) fn tagged_line<T: Serialize>(tag: &str, record: &T) -> String {
    let value = serde_json::to_value(record).expect("trace records are serializable");
    let mut fields = vec![("type".to_string(), Value::String(tag.to_string()))];
    match value {
        Value::Object(obj) => fields.extend(obj),
        other => fields.push(("data".to_string(), other)),
    }
    serde_json::to_string(&Value::Object(fields)).expect("JSON rendering")
}

/// Errors surfaced when parsing a trace file.
#[derive(Debug)]
pub enum TraceError {
    Io(std::io::Error),
    /// A line failed to parse as JSON, or a known record type had the wrong
    /// shape. Carries the 1-based line number and a description.
    Malformed {
        line: usize,
        message: String,
    },
    /// The final line of the file is cut off mid-record (no trailing
    /// newline and invalid JSON) — the signature of a crashed or still
    /// running writer. Distinguished from [`TraceError::Malformed`] so
    /// crash-recovery tooling can treat the prefix as salvageable.
    Truncated {
        line: usize,
        message: String,
    },
    /// The first line is not a `meta` record.
    MissingMeta,
    /// The trace was written by an incompatible schema version.
    UnsupportedVersion(u32),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Malformed { line, message } => {
                write!(f, "malformed trace line {line}: {message}")
            }
            TraceError::Truncated { line, message } => {
                write!(f, "trace truncated mid-record at line {line}: {message}")
            }
            TraceError::MissingMeta => write!(f, "trace does not start with a meta record"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace schema version {v} (reader supports {SUPPORTED_VERSIONS:?})"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Parses JSONL traces back into a [`Trace`]; used by tests to assert on
/// runs structurally.
pub struct TraceReader;

impl TraceReader {
    /// Reads and validates the trace at `path`.
    pub fn read(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text)
    }

    /// Parses a JSONL trace from a string.
    ///
    /// A final line cut off mid-record (invalid JSON with no trailing
    /// newline) is reported as [`TraceError::Truncated`] with its line
    /// number; malformed interior lines as [`TraceError::Malformed`].
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        // A complete JSONL file ends in a newline; a last line without one
        // that also fails to parse was cut off mid-write.
        let last_line_complete = text.ends_with('\n');
        let total_lines = text.lines().count();
        let classify = |no: usize, message: String| {
            if no == total_lines && !last_line_complete {
                TraceError::Truncated { line: no, message }
            } else {
                TraceError::Malformed { line: no, message }
            }
        };
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (first_no, first) = lines.next().ok_or(TraceError::MissingMeta)?;
        let meta: TraceMeta = parse_record(first_no + 1, first, "meta")?;
        if !SUPPORTED_VERSIONS.contains(&meta.schema_version) {
            return Err(TraceError::UnsupportedVersion(meta.schema_version));
        }
        let mut trace = Trace {
            meta,
            spans: Vec::new(),
            rounds: Vec::new(),
            summary: None,
        };
        for (no, line) in lines {
            let no = no + 1;
            let value: Value =
                serde_json::from_str(line).map_err(|e| classify(no, e.to_string()))?;
            let kind =
                value
                    .get("type")
                    .and_then(Value::as_str)
                    .ok_or_else(|| TraceError::Malformed {
                        line: no,
                        message: "record has no `type` field".into(),
                    })?;
            match kind {
                "span" => trace.spans.push(from_line(no, &value)?),
                "round" => trace.rounds.push(from_line(no, &value)?),
                "summary" => trace.summary = Some(from_line(no, &value)?),
                // Unknown record types are skipped for forward compatibility.
                _ => {}
            }
        }
        Ok(trace)
    }
}

/// Parses one line expecting a specific record type tag.
fn parse_record<T: DeserializeOwned>(no: usize, line: &str, expect: &str) -> Result<T, TraceError> {
    let value: Value = serde_json::from_str(line).map_err(|e| TraceError::Malformed {
        line: no,
        message: e.to_string(),
    })?;
    match value.get("type").and_then(Value::as_str) {
        Some(t) if t == expect => from_line(no, &value),
        Some(_) | None if expect == "meta" => Err(TraceError::MissingMeta),
        other => Err(TraceError::Malformed {
            line: no,
            message: format!("expected `{expect}` record, got {other:?}"),
        }),
    }
}

/// Deserializes a record from an already-parsed line value (the extra
/// `type` field is ignored by the derived deserializers).
fn from_line<T: DeserializeOwned>(no: usize, value: &Value) -> Result<T, TraceError> {
    let json = serde_json::to_string(value).expect("re-render parsed value");
    serde_json::from_str(&json).map_err(|e| TraceError::Malformed {
        line: no,
        message: e.to_string(),
    })
}

/// Local stand-in for upstream serde's `DeserializeOwned` bound.
trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanAttrs;
    use crate::TraceCollector;

    fn sample_trace() -> Trace {
        let c = TraceCollector::new();
        let t0 = c.now_ns();
        c.record_span_at(SpanKind::Train, t0, t0 + 80, SpanAttrs::round(0));
        c.record_span_at(SpanKind::Round, t0, t0 + 100, SpanAttrs::round(0));
        c.metrics().counter("events.faults").add(3);
        c.metrics().gauge("pool.utilization").set(0.75);
        let mut rm = RoundMetrics::empty(0);
        rm.wall_ns = 100;
        rm.train_ns = 80;
        rm.aggregate_ns = 15;
        rm.eval_ns = 5;
        c.record_round(rm);
        c.finish(2)
    }

    #[test]
    fn trace_round_trips_through_jsonl() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        let back = TraceReader::parse(&text).expect("parse");
        assert_eq!(trace, back);
    }

    #[test]
    fn first_line_is_versioned_meta() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        let first = text.lines().next().unwrap();
        let v: Value = serde_json::from_str(first).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("meta"));
        assert_eq!(
            v.get("schema_version").and_then(Value::as_u64),
            Some(SCHEMA_VERSION as u64)
        );
    }

    #[test]
    fn reader_rejects_missing_meta_and_bad_version() {
        assert!(matches!(
            TraceReader::parse("{\"type\":\"span\"}"),
            Err(TraceError::MissingMeta)
        ));
        let wrong = "{\"type\":\"meta\",\"schema_version\":99,\"producer\":\"x\",\"threads\":1}";
        assert!(matches!(
            TraceReader::parse(wrong),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn reader_accepts_v1_traces_with_missing_byte_fields() {
        // A trace written by the v1 (pre-byte-accounting) writer: no
        // `bytes` on spans, no `client_edge_bytes`/`edge_cloud_bytes` on
        // rounds. All v2 additions are optional, so it must still parse.
        let v1 = concat!(
            "{\"type\":\"meta\",\"schema_version\":1,\"producer\":\"gfl-obs 0.1.0\",\"threads\":2}\n",
            "{\"type\":\"span\",\"kind\":\"Round\",\"start_ns\":0,\"dur_ns\":100,\"round\":0,\
             \"group_round\":null,\"group\":null,\"client\":null}\n",
            "{\"type\":\"round\",\"round\":0,\"wall_ns\":100,\"train_ns\":80,\"aggregate_ns\":15,\
             \"comm_ns\":0,\"eval_ns\":5,\"groups_trained\":2,\"clients_trained\":8,\
             \"fault_events\":0,\"cost_total\":1.5,\"pool_regions\":1,\"pool_claims\":8,\
             \"pool_steals\":3,\"pool_utilization\":0.9,\"allocs\":12}\n",
        );
        let back = TraceReader::parse(v1).expect("v1 traces still parse");
        assert_eq!(back.meta.schema_version, 1);
        assert_eq!(back.spans[0].bytes, None);
        assert_eq!(back.rounds[0].client_edge_bytes, None);
        assert_eq!(back.rounds[0].edge_cloud_bytes, None);
    }

    #[test]
    fn mid_line_truncation_is_a_typed_error_with_the_line_number() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        // Cut the file mid-way through its 3rd line (a span or round
        // record), like a crashed writer would leave it.
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(text.match_indices('\n').map(|(i, _)| i + 1))
            .collect();
        let cut = line_starts[2] + 25;
        let truncated = &text[..cut];
        assert!(!truncated.ends_with('\n'));
        match TraceReader::parse(truncated) {
            Err(TraceError::Truncated { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Truncated error, got {other:?}"),
        }
        // The same broken JSON *inside* the file (newline follows) is
        // corruption, not truncation.
        let mut corrupt = String::from(truncated);
        corrupt.push('\n');
        corrupt.push_str(&text[line_starts[3]..]);
        match TraceReader::parse(&corrupt) {
            Err(TraceError::Malformed { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Malformed error, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_layout_interleaves_round_spans_before_their_round_record() {
        let c = TraceCollector::new();
        for t in 0..2usize {
            let t0 = c.now_ns();
            c.record_span_at(SpanKind::Train, t0, t0 + 10, SpanAttrs::round(t));
            c.record_span_at(SpanKind::Round, t0, t0 + 12, SpanAttrs::round(t));
            c.record_round(RoundMetrics::empty(t));
        }
        let text = c.finish(1).to_jsonl();
        let types: Vec<String> = text
            .lines()
            .map(|l| {
                let v: Value = serde_json::from_str(l).unwrap();
                let ty = v.get("type").and_then(Value::as_str).unwrap().to_string();
                let round = v.get("round").and_then(Value::as_u64);
                format!("{ty}{}", round.map(|r| r.to_string()).unwrap_or_default())
            })
            .collect();
        assert_eq!(
            types,
            ["meta", "span0", "span0", "round0", "span1", "span1", "round1", "summary"],
            "full layout: {text}"
        );
    }

    #[test]
    fn reader_skips_unknown_record_types() {
        let trace = sample_trace();
        let mut text = trace.to_jsonl();
        text.push_str("{\"type\":\"future-record\",\"x\":1}\n");
        let back = TraceReader::parse(&text).expect("unknown types are skipped");
        assert_eq!(back.rounds.len(), 1);
    }

    #[test]
    fn coverage_accounts_phases_against_wall() {
        let trace = sample_trace();
        let cov = trace.round_coverage();
        assert!(
            (cov - 1.0).abs() < 1e-9,
            "80+15+5 of 100 ns = 1.0, got {cov}"
        );
        assert_eq!(trace.span_total_ns(SpanKind::Train), 80);
    }
}
