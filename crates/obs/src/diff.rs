//! Structural JSON diffing: the golden-trace differ, made reusable.
//!
//! [`first_divergence`] walks two parsed JSON values depth-first and
//! reports the path and values of the first mismatch — precise enough to
//! point at a single field of a single record. It backs both the
//! `gfl-core` golden-snapshot suite and the user-facing `gfl-trace diff`
//! command.

use serde::Value;

/// Recursively compares two JSON values, returning the path and values of
/// the first divergence (objects by key, arrays by index, depth-first), or
/// `None` when the values are structurally identical.
///
/// Object keys present in only one side are divergences; array length
/// mismatches are reported after the common prefix has been compared, so
/// the message names the first *content* difference when there is one.
pub fn first_divergence(path: &str, expected: &Value, actual: &Value) -> Option<String> {
    match (expected, actual) {
        (Value::Object(e), Value::Object(a)) => {
            for (key, ev) in e {
                let sub = format!("{path}.{key}");
                match a.iter().find(|(k, _)| k == key) {
                    None => return Some(format!("{sub}: missing in actual")),
                    Some((_, av)) => {
                        if let Some(d) = first_divergence(&sub, ev, av) {
                            return Some(d);
                        }
                    }
                }
            }
            for (key, _) in a {
                if !e.iter().any(|(k, _)| k == key) {
                    return Some(format!("{path}.{key}: unexpected in actual"));
                }
            }
            None
        }
        (Value::Array(e), Value::Array(a)) => {
            for (i, (ev, av)) in e.iter().zip(a.iter()).enumerate() {
                if let Some(d) = first_divergence(&format!("{path}[{i}]"), ev, av) {
                    return Some(d);
                }
            }
            if e.len() != a.len() {
                return Some(format!(
                    "{path}: length {} expected, {} actual",
                    e.len(),
                    a.len()
                ));
            }
            None
        }
        (e, a) if e == a => None,
        (e, a) => Some(format!("{path}: expected {e:?}, actual {a:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        serde_json::from_str(s).unwrap()
    }

    #[test]
    fn finds_the_first_differing_field_depth_first() {
        let a = v(r#"{"x":[{"y":1.5},{"y":2.0}],"z":"s"}"#);
        let b = v(r#"{"x":[{"y":1.5},{"y":2.5}],"z":"s"}"#);
        let d = first_divergence("h", &a, &b).expect("must diverge");
        assert!(d.starts_with("h.x[1].y:"), "got {d}");
        assert_eq!(first_divergence("h", &a, &a), None);
    }

    #[test]
    fn reports_missing_and_unexpected_keys_and_length_mismatches() {
        let a = v(r#"{"x":1,"y":2}"#);
        let b = v(r#"{"x":1}"#);
        assert_eq!(
            first_divergence("r", &a, &b).as_deref(),
            Some("r.y: missing in actual")
        );
        assert_eq!(
            first_divergence("r", &b, &a).as_deref(),
            Some("r.y: unexpected in actual")
        );
        let short = v("[1,2]");
        let long = v("[1,2,3]");
        assert_eq!(
            first_divergence("r", &short, &long).as_deref(),
            Some("r: length 2 expected, 3 actual")
        );
    }
}
