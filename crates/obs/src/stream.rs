//! Streaming JSONL trace sink: bounded-memory span collection.
//!
//! The in-memory collector keeps every span until `finish()`; at a million
//! clients that is O(all spans) of heap and a trace that dies with the
//! process. The streaming sink instead receives spans at deterministic
//! *barriers* — round boundaries, where the engine records its
//! [`crate::RoundMetrics`] — and appends them to the file ahead of the
//! round record, already in [`crate::span::SpanRecord::sort_key`] order.
//! The meta line is written at construction and the writer is flushed on a
//! configurable round cadence, so a crash loses at most the rounds since
//! the last flush, and the surviving prefix parses (the reader reports a
//! cut final line as [`crate::trace::TraceError::Truncated`]).
//!
//! Because barriers replay the canonical layout of
//! [`crate::Trace::write_jsonl`], a streamed file is **byte-identical** to
//! serializing the equivalent in-memory trace of the same run — asserted
//! end-to-end by the golden/determinism suites in `gfl-core`.

use std::io::{BufWriter, Write};
use std::sync::Mutex;

use crate::span::SpanRecord;
use crate::trace::{tagged_line, RoundMetrics, RunSummary, TraceMeta};

/// Tuning for a streaming collector.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Maximum spans buffered in memory across all shards. When a shard's
    /// slice of the budget fills mid-round, it spills straight to the
    /// writer (out of barrier order, still schema-valid). Rounded up to at
    /// least one span per shard; see
    /// [`crate::TraceCollector::span_buffer_bound`] for the effective
    /// bound.
    pub span_buffer_cap: usize,
    /// Flush the writer every N round barriers (crash-safety cadence).
    /// `1` (the default) flushes every round; `0` only flushes at finish.
    pub flush_every_rounds: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            span_buffer_cap: 65_536,
            flush_every_rounds: 1,
        }
    }
}

struct SinkState {
    w: BufWriter<Box<dyn Write + Send>>,
    rounds_since_flush: u64,
}

/// Serializes barrier flushes into one writer. All writes panic on I/O
/// failure: a trace sink that stops accepting bytes mid-run has no
/// recovery path, and silently dropping telemetry would defeat the point.
pub(crate) struct StreamSink {
    state: Mutex<SinkState>,
    flush_every_rounds: u64,
}

impl StreamSink {
    /// Wraps `writer` and immediately writes (and flushes) the meta line,
    /// so even a run that crashes in round 0 leaves a parseable header.
    pub(crate) fn new(writer: Box<dyn Write + Send>, meta: &TraceMeta, cfg: &StreamConfig) -> Self {
        let mut w = BufWriter::new(writer);
        writeln!(w, "{}", tagged_line("meta", meta)).expect("trace stream: write meta");
        w.flush().expect("trace stream: flush meta");
        StreamSink {
            state: Mutex::new(SinkState {
                w,
                rounds_since_flush: 0,
            }),
            flush_every_rounds: cfg.flush_every_rounds,
        }
    }

    /// Appends already-sorted spans (overflow spill path — no round record
    /// follows).
    pub(crate) fn write_spans(&self, spans: &[SpanRecord]) {
        let mut state = self.state.lock().unwrap();
        for s in spans {
            writeln!(state.w, "{}", tagged_line("span", s)).expect("trace stream: write span");
        }
    }

    /// One round barrier: the round's sorted spans, then its record, then
    /// a flush if the cadence says so.
    pub(crate) fn write_round(&self, spans: &[SpanRecord], round: &RoundMetrics) {
        let mut state = self.state.lock().unwrap();
        for s in spans {
            writeln!(state.w, "{}", tagged_line("span", s)).expect("trace stream: write span");
        }
        writeln!(state.w, "{}", tagged_line("round", round)).expect("trace stream: write round");
        state.rounds_since_flush += 1;
        if self.flush_every_rounds > 0 && state.rounds_since_flush >= self.flush_every_rounds {
            state.w.flush().expect("trace stream: flush");
            state.rounds_since_flush = 0;
        }
    }

    /// End of run: trailing spans that belong to no barrier, the summary
    /// line, and a final flush.
    pub(crate) fn finalize(&self, trailing: &[SpanRecord], summary: &RunSummary) {
        let mut state = self.state.lock().unwrap();
        for s in trailing {
            writeln!(state.w, "{}", tagged_line("span", s)).expect("trace stream: write span");
        }
        writeln!(state.w, "{}", tagged_line("summary", summary))
            .expect("trace stream: write summary");
        state.w.flush().expect("trace stream: final flush");
    }
}
