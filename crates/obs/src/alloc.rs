//! Allocation-counter hook.
//!
//! `gfl-obs` does not own a global allocator — `gfl-bench` already installs
//! a counting allocator for its round benchmarks. Instead, any binary that
//! counts allocations can register a reader here and the engine's per-round
//! metrics pick it up automatically:
//!
//! ```
//! // In a binary with a counting #[global_allocator]:
//! fn read_allocs() -> u64 { /* load the atomic */ 0 }
//! gfl_obs::alloc::register_alloc_counter(read_allocs);
//! assert_eq!(gfl_obs::alloc::current_allocs(), 0);
//! ```
//!
//! When no counter is registered, [`current_allocs`] returns 0 and per-round
//! `allocs` deltas are all zero.

use std::sync::OnceLock;

static HOOK: OnceLock<fn() -> u64> = OnceLock::new();

/// Registers the process-wide allocation counter. The first registration
/// wins; later calls are ignored (registration is idempotent by design so
/// tests can race).
pub fn register_alloc_counter(f: fn() -> u64) {
    let _ = HOOK.set(f);
}

/// Current allocation count from the registered hook (0 if none).
pub fn current_allocs() -> u64 {
    HOOK.get().map(|f| f()).unwrap_or(0)
}
