//! The `gfl-trace` analyzer: offline tooling over JSONL run traces and
//! benchmark snapshots.
//!
//! Four subcommands, all pure readers (nothing here mutates a trace):
//!
//! * `summarize <trace>` — per-phase time table, byte totals, and round
//!   coverage for one trace file.
//! * `diff <a> <b>` — field-by-field first divergence between two traces.
//!   By default only the *deterministic projection* is compared (span
//!   identities, round tallies, byte counts, counters — everything that
//!   must be identical between two same-seed runs); `--exact` compares
//!   every field including timings.
//! * `flame <trace>` — collapsed-stack output for flamegraph tooling,
//!   `--clock wall` (default) or `--clock emulated` (per-round Eq. 5 cost
//!   deltas, for semi-async runs where wall time is meaningless).
//! * `regress <baseline> <current>` — compare two `BENCH_ROUND.json`
//!   snapshots against regression thresholds; exit 2 on regression (the
//!   CI perf gate).
//!
//! Exit codes: 0 ok / no divergence, 1 divergence found (`diff`), 2 usage
//! error or regression found (`regress`).

use std::io::Write;

use gfl_obs::trace::span_totals_of;
use gfl_obs::{RoundMetrics, SpanKind, SpanRecord, Trace, TraceReader};
use serde::Value;

use crate::args::Args;

/// Top-level usage text for the `gfl-trace` binary.
pub const USAGE: &str = "\
gfl-trace — analyze Group-FEL JSONL run traces and benchmark snapshots

USAGE:
  gfl-trace <COMMAND> <FILES...> [--key value]...

COMMANDS:
  summarize <trace>                per-phase time/byte table for one trace
  diff <a> <b> [--exact]           first divergence between two traces
                                   (deterministic fields only by default)
  flame <trace> [--clock wall|emulated]
                                   collapsed stacks for flamegraph tooling
  regress <baseline> <current> [--min-rps-ratio R] [--max-alloc-delta N]
          [--min-gflops-ratio R] [--max-formation-seconds S]
                                   perf-regression gate over BENCH_ROUND.json

EXIT CODES:
  0  success (diff: traces agree)
  1  diff found a divergence
  2  usage error, unreadable input, or regress found a regression";

/// Entry point shared by the `gfl-trace` binary and tests. Returns the
/// process exit code and prints to `out`.
pub fn run(argv: &[String], out: &mut dyn Write) -> i32 {
    let Some(command) = argv.first() else {
        let _ = writeln!(out, "{USAGE}");
        return 2;
    };
    // Leading bare tokens after the subcommand are positional file paths;
    // the remainder is `--key value` options.
    let rest = &argv[1..];
    let split = rest
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(rest.len());
    let (paths, opts) = rest.split_at(split);
    let args = match Args::parse(opts) {
        Ok(a) => a,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    if args.wants_help() {
        let _ = writeln!(out, "{USAGE}");
        return 0;
    }
    let result = match command.as_str() {
        "summarize" => summarize(paths, &args, out),
        "diff" => diff(paths, &args, out),
        "flame" => flame(paths, &args, out),
        "regress" => regress(paths, &args, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
            return 0;
        }
        other => {
            let _ = writeln!(out, "unknown command '{other}'\n\n{USAGE}");
            return 2;
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}

fn expect_paths<'a>(paths: &'a [String], n: usize, what: &str) -> Result<&'a [String], String> {
    if paths.len() != n {
        return Err(format!(
            "expected {n} file argument(s) ({what}), got {}",
            paths.len()
        ));
    }
    Ok(paths)
}

fn load_trace(path: &str) -> Result<Trace, String> {
    TraceReader::read(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

// ---------------------------------------------------------------- summarize

fn summarize(paths: &[String], args: &Args, out: &mut dyn Write) -> Result<i32, String> {
    let paths = expect_paths(paths, 1, "a trace file")?;
    args.reject_unknown().map_err(|e| e.to_string())?;
    let trace = load_trace(&paths[0])?;
    write_summary(&trace, out).map_err(|e| e.to_string())?;
    Ok(0)
}

fn write_summary(trace: &Trace, out: &mut dyn Write) -> std::io::Result<()> {
    let meta = &trace.meta;
    writeln!(
        out,
        "trace: schema v{} by {} ({} threads)",
        meta.schema_version, meta.producer, meta.threads
    )?;
    // A complete trace ends with a summary line; a truncated (crashed /
    // in-flight) one does not, so fall back to re-deriving totals from
    // whatever spans survived.
    let derived = span_totals_of(&trace.spans);
    let (wall_ns, totals) = match &trace.summary {
        Some(s) => (s.wall_ns, &s.span_totals),
        None => (trace.rounds.iter().map(|r| r.wall_ns).sum(), &derived),
    };
    let coverage = match &trace.summary {
        Some(s) => s.coverage,
        None => {
            let n = trace.rounds.len().max(1) as f64;
            trace.rounds.iter().map(RoundMetrics::coverage).sum::<f64>() / n
        }
    };
    let secs = |ns: u64| ns as f64 / 1e9;
    writeln!(
        out,
        "rounds: {}   wall: {:.3} s   phase coverage: {:.1}%",
        trace.rounds.len(),
        secs(wall_ns),
        coverage * 100.0
    )?;
    writeln!(out, "\nphase            count     total     % wall")?;
    for t in totals {
        let pct = if wall_ns > 0 {
            100.0 * t.total_ns as f64 / wall_ns as f64
        } else {
            0.0
        };
        writeln!(
            out,
            "{:<14} {:>7} {:>8.3} s {:>8.1}%",
            t.kind.label(),
            t.count,
            secs(t.total_ns),
            pct
        )?;
    }
    let ce: u64 = trace
        .rounds
        .iter()
        .filter_map(|r| r.client_edge_bytes)
        .sum();
    let ec: u64 = trace.rounds.iter().filter_map(|r| r.edge_cloud_bytes).sum();
    writeln!(out, "\nlink              bytes")?;
    writeln!(out, "client<->edge  {ce:>10}")?;
    writeln!(out, "edge<->cloud   {ec:>10}")?;
    if let Some(s) = &trace.summary {
        let interesting = ["rounds.total", "clients.trained", "events.faults"];
        for name in interesting {
            if let Some(v) = s.metrics.counter(name) {
                writeln!(out, "{name:<24} {v:>9}")?;
            }
        }
    }
    Ok(())
}

// --------------------------------------------------------------------- diff

/// The deterministic identity of one span: everything except its timings.
type SpanIdentity = (
    u8,
    Option<u64>,
    Option<u64>,
    Option<u64>,
    Option<u64>,
    Option<u64>,
);

fn span_identity(s: &SpanRecord) -> SpanIdentity {
    (
        s.kind as u8,
        s.round,
        s.group_round,
        s.group,
        s.client,
        s.bytes,
    )
}

fn fmt_identity(id: &SpanIdentity) -> String {
    let kind = SpanKind::ALL[id.0 as usize].label();
    let opt = |v: Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
    format!(
        "{kind}(round={}, group_round={}, group={}, client={}, bytes={})",
        opt(id.1),
        opt(id.2),
        opt(id.3),
        opt(id.4),
        opt(id.5)
    )
}

/// The deterministic projection of one round record (timings and pool
/// statistics dropped).
fn round_projection(r: &RoundMetrics) -> Value {
    let fields = vec![
        ("round".to_string(), Value::U64(r.round)),
        ("groups_trained".to_string(), Value::U64(r.groups_trained)),
        ("clients_trained".to_string(), Value::U64(r.clients_trained)),
        ("fault_events".to_string(), Value::U64(r.fault_events)),
        ("cost_total".to_string(), Value::F64(r.cost_total)),
        (
            "client_edge_bytes".to_string(),
            r.client_edge_bytes.map_or(Value::Null, Value::U64),
        ),
        (
            "edge_cloud_bytes".to_string(),
            r.edge_cloud_bytes.map_or(Value::Null, Value::U64),
        ),
    ];
    Value::Object(fields)
}

/// Parses every line of a trace file into a JSON array value, for `--exact`
/// structural comparison.
fn trace_as_value(trace: &Trace) -> Result<Value, String> {
    let lines: Result<Vec<Value>, _> = trace
        .to_jsonl()
        .lines()
        .map(serde_json::from_str::<Value>)
        .collect();
    lines.map(Value::Array).map_err(|e| e.to_string())
}

fn diff(paths: &[String], args: &Args, out: &mut dyn Write) -> Result<i32, String> {
    let paths = expect_paths(paths, 2, "two trace files")?;
    let exact = args.get_flag("exact").map_err(|e| e.to_string())?;
    args.reject_unknown().map_err(|e| e.to_string())?;
    let a = load_trace(&paths[0])?;
    let b = load_trace(&paths[1])?;

    if exact {
        let (va, vb) = (trace_as_value(&a)?, trace_as_value(&b)?);
        return Ok(match gfl_obs::diff::first_divergence("trace", &va, &vb) {
            Some(d) => {
                writeln!(out, "diverged: {d}").map_err(|e| e.to_string())?;
                1
            }
            None => {
                writeln!(out, "identical: every field matches").map_err(|e| e.to_string())?;
                0
            }
        });
    }

    if let Some(d) = deterministic_divergence(&a, &b) {
        writeln!(out, "diverged: {d}").map_err(|e| e.to_string())?;
        return Ok(1);
    }
    writeln!(
        out,
        "no divergence: deterministic fields of {} spans / {} rounds match",
        a.spans.len(),
        a.rounds.len()
    )
    .map_err(|e| e.to_string())?;
    Ok(0)
}

/// First divergence in the deterministic projection of two traces, or
/// `None` when two same-seed runs would be considered identical.
fn deterministic_divergence(a: &Trace, b: &Trace) -> Option<String> {
    if a.meta.schema_version != b.meta.schema_version {
        return Some(format!(
            "meta.schema_version: {} vs {}",
            a.meta.schema_version, b.meta.schema_version
        ));
    }
    // Spans as a sorted multiset of identities: worker interleaving (and
    // therefore on-disk order within a barrier) is timing-dependent, but
    // the *set* of recorded spans is not.
    let mut ia: Vec<_> = a.spans.iter().map(span_identity).collect();
    let mut ib: Vec<_> = b.spans.iter().map(span_identity).collect();
    ia.sort_unstable();
    ib.sort_unstable();
    if ia.len() != ib.len() {
        return Some(format!("span count: {} vs {}", ia.len(), ib.len()));
    }
    for (i, (sa, sb)) in ia.iter().zip(ib.iter()).enumerate() {
        if sa != sb {
            return Some(format!(
                "span multiset[{i}]: {} vs {}",
                fmt_identity(sa),
                fmt_identity(sb)
            ));
        }
    }
    if a.rounds.len() != b.rounds.len() {
        return Some(format!(
            "round count: {} vs {}",
            a.rounds.len(),
            b.rounds.len()
        ));
    }
    for (ra, rb) in a.rounds.iter().zip(b.rounds.iter()) {
        let (pa, pb) = (round_projection(ra), round_projection(rb));
        if let Some(d) = gfl_obs::diff::first_divergence(&format!("round[{}]", ra.round), &pa, &pb)
        {
            return Some(d);
        }
    }
    // Counters are pure event tallies — deterministic. Gauges other than
    // the pool's are too (cost, ASR, emulated clock). Histograms hold
    // wall-time observations and are excluded entirely.
    let (sa, sb) = match (&a.summary, &b.summary) {
        (Some(sa), Some(sb)) => (sa, sb),
        (None, None) => return None,
        _ => return Some("summary: present in one trace, missing in the other".into()),
    };
    let counters = |s: &gfl_obs::RunSummary| -> Vec<(String, u64)> {
        s.metrics
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.value))
            .collect()
    };
    let (ca, cb) = (counters(sa), counters(sb));
    if ca != cb {
        for (pa, pb) in ca.iter().zip(cb.iter()) {
            if pa != pb {
                return Some(format!("counter {}: {} vs {} ({})", pa.0, pa.1, pb.1, pb.0));
            }
        }
        return Some(format!(
            "counter sets differ: {} vs {} entries",
            ca.len(),
            cb.len()
        ));
    }
    let gauges = |s: &gfl_obs::RunSummary| -> Vec<(String, f64)> {
        s.metrics
            .gauges
            .iter()
            .filter(|g| !g.name.starts_with("pool."))
            .map(|g| (g.name.clone(), g.value))
            .collect()
    };
    let (ga, gb) = (gauges(sa), gauges(sb));
    if ga != gb {
        for (pa, pb) in ga.iter().zip(gb.iter()) {
            if pa != pb {
                return Some(format!("gauge {}: {} vs {} ({})", pa.0, pa.1, pb.1, pb.0));
            }
        }
        return Some(format!(
            "gauge sets differ: {} vs {} entries",
            ga.len(),
            gb.len()
        ));
    }
    None
}

// -------------------------------------------------------------------- flame

fn flame(paths: &[String], args: &Args, out: &mut dyn Write) -> Result<i32, String> {
    let paths = expect_paths(paths, 1, "a trace file")?;
    let clock = args.get_str("clock", "wall");
    args.reject_unknown().map_err(|e| e.to_string())?;
    let trace = load_trace(&paths[0])?;
    match clock.as_str() {
        "wall" => write_wall_flame(&trace, out).map_err(|e| e.to_string())?,
        "emulated" => write_emulated_flame(&trace, out).map_err(|e| e.to_string())?,
        other => {
            return Err(format!(
                "--clock must be 'wall' or 'emulated', got '{other}'"
            ))
        }
    }
    Ok(0)
}

/// Collapsed stacks over wall time: each line is `stack;path weight_us`,
/// with parent self-time = parent total − children totals, so the weights
/// sum to total traced round time and feed straight into flamegraph
/// tooling.
fn write_wall_flame(trace: &Trace, out: &mut dyn Write) -> std::io::Result<()> {
    let total = |kind: SpanKind| -> u64 {
        trace
            .spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.dur_ns)
            .sum()
    };
    let round = total(SpanKind::Round);
    let train = total(SpanKind::Train);
    let group_round = total(SpanKind::GroupRound);
    let client_step = total(SpanKind::ClientStep);
    let aggregate = total(SpanKind::Aggregate);
    let comm = total(SpanKind::Comm);
    let upload_retry = total(SpanKind::UploadRetry);
    let eval = total(SpanKind::Eval);
    let regroup = total(SpanKind::Regroup);

    let us = |ns: u64| ns / 1_000;
    let round_self = round.saturating_sub(train + aggregate + comm + eval);
    let stacks = [
        ("round", round_self),
        ("round;train", train.saturating_sub(group_round)),
        (
            "round;train;group_round",
            group_round.saturating_sub(client_step),
        ),
        ("round;train;group_round;client_step", client_step),
        ("round;aggregate", aggregate),
        ("round;comm", comm.saturating_sub(upload_retry)),
        ("round;comm;upload_retry", upload_retry),
        ("round;eval", eval),
        // Regroup passes run between rounds in the self-healing loop, not
        // inside any round span.
        ("regroup", regroup),
    ];
    for (stack, ns) in stacks {
        if ns > 0 {
            writeln!(out, "{stack} {}", us(ns).max(1))?;
        }
    }
    Ok(())
}

/// Collapsed stacks over the *emulated* clock: one frame per round,
/// weighted by that round's Eq. 5 cost delta in emulated microseconds.
/// Wall time is meaningless for semi-async runs (the scheduler skips
/// idle time); this view shows where simulated cost accrued instead.
fn write_emulated_flame(trace: &Trace, out: &mut dyn Write) -> std::io::Result<()> {
    let mut prev = 0.0f64;
    for r in &trace.rounds {
        let delta = (r.cost_total - prev).max(0.0);
        prev = r.cost_total;
        let us = (delta * 1e6) as u64;
        if us > 0 {
            writeln!(out, "emulated;round_{} {us}", r.round)?;
        }
    }
    Ok(())
}

// ------------------------------------------------------------------ regress

fn num(v: &Value, key: &str) -> Option<f64> {
    // `as_f64` coerces integer values, so u64 counters compare fine.
    v.get(key).and_then(Value::as_f64)
}

fn str_field<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Value::as_str)
}

fn array<'a>(v: &'a Value, key: &str) -> &'a [Value] {
    v.get(key)
        .and_then(Value::as_array)
        .map(Vec::as_slice)
        .unwrap_or(&[])
}

/// Compares two `BENCH_ROUND.json` snapshots. Thresholds:
///
/// * `rounds_per_sec` (per thread row): FAIL below `--min-rps-ratio`
///   (default 0.5) of baseline — generous, because CI hardware varies.
/// * `allocs_per_round` (per thread row): FAIL above baseline +
///   `--max-alloc-delta` (default 32) — tight, because allocation counts
///   are machine-independent.
/// * `gemm_gflops` (per SIMD tier): FAIL below `--min-gflops-ratio`
///   (default 0.5) of baseline.
///
/// Rows are matched by `threads`, tiers by `tier`; entries present only on
/// one side are skipped (a new tier or thread count is not a regression),
/// and throughput is only compared on rows both sides flag `reliable`
/// (threads ≤ physical cores).
///
/// Additionally, when the current snapshot carries a `scale` section
/// (from `bench_scale`), its `formation_seconds_1m` and
/// `regroup_seconds_1m` are gated *absolutely* against
/// `--max-formation-seconds` (default 1.0) — the paper-scale sub-second
/// formation claim, checked rather than asserted.
fn regress(paths: &[String], args: &Args, out: &mut dyn Write) -> Result<i32, String> {
    let paths = expect_paths(paths, 2, "baseline and current BENCH_ROUND.json")?;
    let min_rps: f64 = args
        .get("min-rps-ratio", 0.5, "float")
        .map_err(|e| e.to_string())?;
    let max_alloc_delta: f64 = args
        .get("max-alloc-delta", 32.0, "float")
        .map_err(|e| e.to_string())?;
    let min_gflops: f64 = args
        .get("min-gflops-ratio", 0.5, "float")
        .map_err(|e| e.to_string())?;
    let max_formation: f64 = args
        .get("max-formation-seconds", 1.0, "float")
        .map_err(|e| e.to_string())?;
    args.reject_unknown().map_err(|e| e.to_string())?;

    let read = |p: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{p}: {e}"))
    };
    let baseline = read(&paths[0])?;
    let current = read(&paths[1])?;

    let mut failures = 0usize;
    let mut checks = 0usize;
    let mut check = |out: &mut dyn Write, label: String, ok: bool, detail: String| {
        checks += 1;
        if !ok {
            failures += 1;
        }
        let _ = writeln!(
            out,
            "{} {label}: {detail}",
            if ok { "PASS" } else { "FAIL" }
        );
    };

    for cur_row in array(&current, "results") {
        let Some(threads) = num(cur_row, "threads") else {
            continue;
        };
        let Some(base_row) = array(&baseline, "results")
            .iter()
            .find(|r| num(r, "threads") == Some(threads))
        else {
            continue;
        };
        let reliable = |row: &Value| row.get("reliable").and_then(Value::as_bool) != Some(false);
        if let (Some(base), Some(cur)) = (
            num(base_row, "rounds_per_sec"),
            num(cur_row, "rounds_per_sec"),
        ) {
            if base > 0.0 && reliable(base_row) && reliable(cur_row) {
                let ratio = cur / base;
                check(
                    out,
                    format!("rounds_per_sec[threads={threads}]"),
                    ratio >= min_rps,
                    format!(
                        "{cur:.2} vs baseline {base:.2} (ratio {ratio:.2}, floor {min_rps:.2})"
                    ),
                );
            }
        }
        if let (Some(base), Some(cur)) = (
            num(base_row, "allocs_per_round"),
            num(cur_row, "allocs_per_round"),
        ) {
            let delta = cur - base;
            check(
                out,
                format!("allocs_per_round[threads={threads}]"),
                delta <= max_alloc_delta,
                format!(
                    "{cur:.0} vs baseline {base:.0} (delta {delta:+.0}, cap +{max_alloc_delta:.0})"
                ),
            );
        }
    }

    if let (Some(base_simd), Some(cur_simd)) = (baseline.get("simd"), current.get("simd")) {
        for cur_tier in array(cur_simd, "tiers") {
            let Some(name) = str_field(cur_tier, "tier") else {
                continue;
            };
            let Some(base_tier) = array(base_simd, "tiers")
                .iter()
                .find(|t| str_field(t, "tier") == Some(name))
            else {
                continue;
            };
            if let (Some(base), Some(cur)) =
                (num(base_tier, "gemm_gflops"), num(cur_tier, "gemm_gflops"))
            {
                if base > 0.0 {
                    let ratio = cur / base;
                    check(
                        out,
                        format!("gemm_gflops[{name}]"),
                        ratio >= min_gflops,
                        format!(
                            "{cur:.2} vs baseline {base:.2} (ratio {ratio:.2}, floor {min_gflops:.2})"
                        ),
                    );
                }
            }
        }
    }

    // Absolute gate on the 10⁶-client `scale` section (bench_scale /
    // docs/SCALE.md): group formation and one regroup tick must stay
    // under `--max-formation-seconds` (default 1 s). The claim is
    // absolute, so only the *current* snapshot is consulted; snapshots
    // predating the section are skipped.
    if let Some(scale) = current.get("scale") {
        for key in ["formation_seconds_1m", "regroup_seconds_1m"] {
            if let Some(cur) = num(scale, key) {
                check(
                    out,
                    format!("scale.{key}"),
                    cur <= max_formation,
                    format!("{cur:.3}s (cap {max_formation:.3}s)"),
                );
            }
        }
    }

    if checks == 0 {
        return Err("no comparable entries between baseline and current".into());
    }
    writeln!(
        out,
        "{}: {checks} checks, {failures} regression(s)",
        if failures == 0 { "ok" } else { "REGRESSION" }
    )
    .map_err(|e| e.to_string())?;
    Ok(if failures == 0 { 0 } else { 2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(cmd: &str) -> (i32, String) {
        let argv: Vec<String> = cmd.split_whitespace().map(str::to_string).collect();
        let mut out = Vec::new();
        let code = run(&argv, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn no_command_prints_usage() {
        let (code, out) = run_str("");
        assert_eq!(code, 2);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let (code, out) = run_str("explode trace.jsonl");
        assert_eq!(code, 2);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn missing_files_are_reported_not_panicked() {
        let (code, out) = run_str("summarize /nonexistent/trace.jsonl");
        assert_eq!(code, 2);
        assert!(out.contains("error:"), "{out}");
        let (code, _) = run_str("diff /nonexistent/a.jsonl /nonexistent/b.jsonl");
        assert_eq!(code, 2);
    }

    #[test]
    fn wrong_arity_is_a_usage_error() {
        let (code, out) = run_str("diff only_one.jsonl");
        assert_eq!(code, 2);
        assert!(out.contains("expected 2"), "{out}");
    }
}
