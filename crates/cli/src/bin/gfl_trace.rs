//! The `gfl-trace` binary: see [`gfl_cli::trace_cli::USAGE`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::io::stdout();
    std::process::exit(gfl_cli::trace_cli::run(&argv, &mut out));
}
