//! Library half of the `gfl` command-line tool: argument parsing and the
//! command implementations, kept separate from `main.rs` so they are unit
//! testable.
//!
//! The parser is deliberately small (the allowed dependency set has no
//! clap): a subcommand followed by `--key value` / `--flag` pairs.

pub mod args;
pub mod commands;
pub mod trace_cli;

pub use args::{Args, ParseError};

/// Top-level usage text.
pub const USAGE: &str = "\
gfl — Group-based Hierarchical Federated Learning (ICPP'23 reproduction)

USAGE:
  gfl <COMMAND> [--key value]...

COMMANDS:
  simulate   run a federated training session end to end
  group      form client groups and report their quality
  cost       print the calibrated cost-model curves (Fig. 2a / Fig. 8)
  theory     evaluate the Theorem 1 convergence bound
  help       show this message (or `gfl <command> --help`)

Run `gfl <command> --help` for the command's options.";

/// Entry point shared by `main.rs` and tests. Returns the process exit
/// code and prints to the given writer.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    let Some(command) = argv.first() else {
        let _ = writeln!(out, "{USAGE}");
        return 2;
    };
    let rest = &argv[1..];
    let result = match command.as_str() {
        "simulate" => commands::simulate(rest, out),
        "group" => commands::group(rest, out),
        "cost" => commands::cost(rest, out),
        "theory" => commands::theory(rest, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
            return 0;
        }
        other => {
            let _ = writeln!(out, "unknown command '{other}'\n\n{USAGE}");
            return 2;
        }
    };
    match result {
        Ok(()) => 0,
        Err(commands::CommandError::Help(text)) => {
            let _ = writeln!(out, "{text}");
            0
        }
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}
