//! The four `gfl` subcommands.

use std::io::Write;

use gfl_baselines::{FedNova, FedProx, Scaffold};
use gfl_core::checkpoint::Checkpoint;
use gfl_core::cov::{group_cov, mean_group_cov};
use gfl_core::engine::{form_groups_per_edge, GroupFelConfig, RobustAggRule, Trainer};
use gfl_core::grouping::{
    CdgGrouping, CovGrouping, GroupingAlgorithm, KldGrouping, RandomGrouping, StreamGrouping,
    VarianceGrouping,
};
use gfl_core::history::RunHistory;
use gfl_core::local::{FedAvg, LocalUpdate};
use gfl_core::membership::{MembershipState, RegroupPolicy};
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_core::semi_async::{AsyncConfig, AsyncReport, SchedulerState, StalenessPolicy};
use gfl_core::theory::{self, TheoremInputs};
use gfl_core::Group;
use gfl_data::{
    ClientPartition, Dataset, PartitionSpec, SyntheticSpec, VirtualPopulation, VirtualSpec,
};
use gfl_faults::{AdversaryPlan, ChurnPlan, FaultPlan, FaultPolicy, OutageWindow};
use gfl_nn::sgd::LrSchedule;
use gfl_nn::Params;
use gfl_sim::{CostModel, GroupOpKind, Task, Topology};

use crate::args::{Args, ParseError};

/// Command-level errors.
#[derive(Debug)]
pub enum CommandError {
    Parse(ParseError),
    Invalid(String),
    Io(std::io::Error),
    /// Not an error: `--help` was requested; payload is the help text.
    Help(&'static str),
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::Parse(e) => write!(f, "{e}"),
            CommandError::Invalid(m) => write!(f, "{m}"),
            CommandError::Io(e) => write!(f, "io: {e}"),
            CommandError::Help(_) => write!(f, "help requested"),
        }
    }
}

impl From<ParseError> for CommandError {
    fn from(e: ParseError) -> Self {
        CommandError::Parse(e)
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

type CmdResult = Result<(), CommandError>;

const SIMULATE_HELP: &str = "\
gfl simulate — run a federated training session

DATA (synthetic unless --data is given):
  --data PATH        CSV dataset, label in last column (see gfl-data::csv)
  --task vision|speech   synthetic task preset          [vision]
  --samples N        synthetic dataset size             [12000]
  --alpha F          Dirichlet concentration            [0.1]
  --clients N        number of clients                  [90]
  --edges N          number of edge servers             [3]
  --virtual          derive client shards on demand from (seed, id):
                     memory stays O(sampled clients), so --clients scales
                     to 10^6 and beyond (docs/SCALE.md); excludes --data
                     and --method scaffold

GROUPING & SAMPLING:
  --grouping covg|rg|cdg|kldg|varg|stream               [covg]
  --min-gs N         minimum group size                 [5]
  --max-cov F        CoV target (covg)                  [0.5]
  --group-size N     target size (rg/cdg/kldg/stream)   [6]
  --sampling random|rcov|srcov|esrcov                   [esrcov]
  --weighting standard|unbiased|stabilized              [standard]

TRAINING:
  --method fedavg|fedprox|scaffold|fednova              [fedavg]
  --mu F             FedProx proximal strength          [0.1]
  --rounds T  --k K  --e E  --sample S  --batch B       [40 5 2 4 32]
  --lr F             learning rate                      [0.05]
  --budget F         cost budget (emulated seconds)     [unlimited]
  --seed N                                              [42]
  --secure           route aggregation through real SecAgg
  --dropout F        per-group-round client dropout     [0.0]
  --threads N        worker threads (0 = GFL_THREADS env, else all cores);
                     results are bit-identical for every N  [0]

RUNTIME (deterministic semi-async rounds; see docs/ASYNC.md):
  --runtime sync|semi-async   round engine               [sync]
                     composes with --churn: membership heals on the round
                     boundary and resets in-flight edge state
  --staleness-policy drop|weighted   late-upload policy  [drop]
  --staleness-decay F  weighted-staleness damping        [1.0]
  --cloud-deadline F   cloud close factor (0 = wait-all) [0]
  --async-csv PATH     write the per-round async report as CSV

FAULT INJECTION (deterministic; see docs/FAULTS.md):
  --faults none|moderate   preset fault plan            [none]
  --fault-seed N     fault decision seed                [--seed]
  --straggler-frac F --straggler-factor F               plan overrides
  --crash-prob F --corrupt-prob F --upload-fail F       plan overrides
  --outage E:FROM:UNTIL    edge E dark for rounds [FROM, UNTIL)
  --quorum F         min surviving-upload fraction      [0.25]
  --deadline-factor F      straggler cut threshold      [2.5]
  --max-retries N    edge->cloud upload retries         [3]
  --backoff-base F   upload retry backoff base (s)      [0.5]
  --max-backoff F    per-wait backoff cap (s)           [60]

CHURN & SELF-HEALING (deterministic; see docs/FAULTS.md):
  --churn none|moderate    preset churn plan            [none]
  --churn-seed N     churn decision seed                [--seed]
  --churn-horizon N  rounds over which churn unfolds    [--rounds]
  --depart-frac F --arrive-frac F --flap-prob F         plan overrides
  --regroup-policy heal|frozen   online regrouping      [heal]
  --size-floor N     dissolve groups smaller than this  [2]
  --cov-drift F      CoV drift tolerance before repair  [0.5]
  --regroup-cooldown N     rounds between group repairs [5]
  --reform-every N   periodic full re-formation cadence [off]

ADVERSARIES (deterministic campaigns; see docs/FAULTS.md):
  --adversary none|moderate|backdoor   preset plan      [none]
  --adversary-seed N attack decision seed               [--seed]
  --backdoor-frac F --flip-frac F --poison-frac F       compromised fractions
  --poison-rate F    per-row poison probability         plan override
  --trigger-width N --trigger-target L                  backdoor trigger
  --backdoor-boost F model-replacement amplification    [1.0]
  --flip-from L --flip-to L                             label-flip campaign
  --attack-scale F   model-poison amplification         plan override

ROBUST AGGREGATION (group-level, Line 14):
  --robust-agg mean|median|trimmed-mean|krum|multi-krum|flame [mean]
  --robust-f N       assumed Byzantine count / trim     [1]
  --robust-select N  multi-krum selection size          [2]

OUTPUT:
  --csv PATH         write the trajectory as CSV
  --checkpoint PATH  write a resumable snapshot at the end
  --trace-out PATH   stream a JSONL run trace (docs/OBSERVABILITY.md)
  --trace-buffer N   max spans buffered before spilling to the trace file
                     (default 65536; memory bound for --trace-out)
  --metrics          print the end-of-run metrics summary table";

/// `gfl simulate`.
pub fn simulate(argv: &[String], out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        return Err(CommandError::Help(SIMULATE_HELP));
    }
    let seed: u64 = args.get("seed", 42, "int")?;
    let task = parse_task(&args.get_str("task", "vision"))?;

    // --- parallelism: flag > GFL_THREADS env > autodetect ---
    let threads: usize = args.get("threads", 0usize, "int")?;
    if threads > 0 {
        gfl_parallel::set_default_parallelism(threads);
    }
    let effective_threads = gfl_parallel::default_parallelism();

    // --- data ---
    let clients: usize = args.get("clients", 90, "int")?;
    let edges: usize = args.get("edges", 3, "int")?;
    let alpha: f64 = args.get("alpha", 0.1, "float")?;
    let is_virtual = args.get_flag("virtual")?;
    // Virtual populations derive client shards on demand (O(sampled)
    // memory); the materialized path pools one dataset and partitions it.
    let (population, train, partition, test) = if is_virtual {
        if args.get_opt("data").is_some() {
            return Err(CommandError::Invalid(
                "--virtual derives client shards on demand from (seed, id); \
                 a --data CSV cannot back a virtual population"
                    .into(),
            ));
        }
        let samples: usize = args.get("samples", 12_000, "int")?;
        let spec = VirtualSpec {
            data: match task {
                Task::Vision => SyntheticSpec::vision_like(),
                Task::Speech => SyntheticSpec::speech_like(),
            },
            num_clients: clients,
            alpha,
            min_size: 20,
            max_size: 200,
            seed,
        };
        let pop = VirtualPopulation::new(spec);
        // Same holdout proportion the materialized path gets from
        // split_holdout(6), but generated independently of any shard.
        let test = pop.test_set((samples / 6).max(1));
        (Some(pop), None, None, test)
    } else {
        let dataset = load_or_generate(&args, task, seed)?;
        let (train, test) = dataset.split_holdout(6);
        let partition = ClientPartition::dirichlet(
            &train,
            &PartitionSpec {
                num_clients: clients,
                alpha,
                min_size: 20,
                max_size: 200,
                seed,
            },
        );
        (None, Some(train), Some(partition), test)
    };
    let sizes: Vec<usize> = match (&population, &partition) {
        (Some(pop), _) => (0..pop.num_clients()).map(|c| pop.client_size(c)).collect(),
        (None, Some(part)) => part.sizes(),
        (None, None) => unreachable!("one data representation is always built"),
    };
    let topology = Topology::even_split(edges, sizes.clone());

    // --- grouping ---
    let label_matrix = match (&population, &partition) {
        (Some(pop), _) => pop.label_matrix(),
        (None, Some(part)) => &part.label_matrix,
        (None, None) => unreachable!("one data representation is always built"),
    };
    let grouping = parse_grouping(&args)?;
    let groups = form_groups_per_edge(grouping.as_ref(), &topology, label_matrix, seed);
    writeln!(
        out,
        "formed {} groups (mean CoV {:.3})",
        groups.len(),
        mean_group_cov(label_matrix, &groups)
    )?;

    // --- config ---
    let config = GroupFelConfig {
        global_rounds: args.get("rounds", 40, "int")?,
        group_rounds: args.get("k", 5, "int")?,
        local_rounds: args.get("e", 2, "int")?,
        sampled_groups: args.get("sample", 4, "int")?,
        batch_size: args.get("batch", 32, "int")?,
        lr: LrSchedule::Constant(args.get("lr", 0.05f32, "float")?),
        weighting: parse_weighting(&args.get_str("weighting", "standard"))?,
        eval_every: args.get("eval-every", 2, "int")?,
        seed,
        task,
        cost_budget: args
            .get_opt("budget")
            .map(|b| b.parse())
            .transpose()
            .map_err(|_| ParseError::BadValue("budget".into(), "?".into(), "float"))?,
        secure_aggregation: args.get_flag("secure")?,
        dropout_prob: args.get("dropout", 0.0f64, "float")?,
    };
    let sampling = parse_sampling(&args.get_str("sampling", "esrcov"))?;
    let method = args.get_str("method", "fedavg");
    let mu: f32 = args.get("mu", 0.1, "float")?;
    let csv_path = args.get_opt("csv");
    let checkpoint_path = args.get_opt("checkpoint");
    let trace_out = args.get_opt("trace-out");
    let trace_buffer: usize = args.get("trace-buffer", 65_536, "int")?;
    let show_metrics = args.get_flag("metrics")?;
    let faults = parse_faults(&args, seed)?;
    let churn = parse_churn(&args, seed, config.global_rounds)?;
    let adversary = parse_adversary(&args, seed, test.num_classes(), test.feature_dim())?;
    let robust = parse_robust_agg(&args)?;
    let runtime = parse_runtime(&args)?;
    let async_csv = args.get_opt("async-csv");
    args.reject_unknown()?;
    if is_virtual && method == "scaffold" {
        return Err(CommandError::Invalid(
            "--method scaffold cannot be combined with --virtual: SCAFFOLD \
             keeps O(clients × params) control-variate state, which defeats \
             the O(sampled) memory contract of virtual populations"
                .into(),
        ));
    }
    if async_csv.is_some() && runtime.is_none() {
        return Err(CommandError::Invalid(
            "--async-csv requires --runtime semi-async".into(),
        ));
    }
    if robust != RobustAggRule::Mean && config.secure_aggregation {
        return Err(CommandError::Invalid(
            "--robust-agg cannot be combined with --secure: the masking \
             protocol only computes linear functions of the updates"
                .into(),
        ));
    }

    // --- model: pick by feature dimensionality (the holdout set has the
    // same shape as the training data in both representations) ---
    let model = model_for(&test, task);
    let param_count = model.param_len();
    let mut trainer = match (population, train, partition) {
        (Some(pop), _, _) => Trainer::try_new_virtual(config.clone(), model, pop, test),
        (None, Some(train), Some(part)) => {
            Trainer::try_new(config.clone(), model, train, part, test)
        }
        _ => unreachable!("one data representation is always built"),
    }
    .map_err(|e| CommandError::Invalid(e.to_string()))?;
    // Observation is one-way: attaching a collector never changes results
    // (asserted by crates/core/tests/determinism.rs). With --trace-out the
    // collector streams spans to the file at every round barrier, keeping
    // buffered-span memory bounded by --trace-buffer.
    let observer = match &trace_out {
        Some(path) => Some(
            gfl_obs::TraceCollector::streaming_to(
                std::path::Path::new(path),
                effective_threads,
                gfl_obs::StreamConfig {
                    span_buffer_cap: trace_buffer,
                    ..gfl_obs::StreamConfig::default()
                },
            )
            .map_err(|e| CommandError::Invalid(format!("cannot open trace file: {e}")))?,
        ),
        None => show_metrics.then(gfl_obs::TraceCollector::new),
    };
    if let Some(obs) = &observer {
        trainer = trainer.with_observer(std::sync::Arc::clone(obs));
    }
    let faults_on = faults.is_some();
    if let Some((plan, policy)) = faults {
        trainer = trainer.with_faults(plan, policy, &topology);
    }
    let churn_on = churn.is_some();
    if let Some((plan, policy)) = churn {
        trainer = trainer.with_churn(plan, policy);
    }
    let adversary_on = adversary.is_some();
    if let Some(plan) = adversary {
        trainer = trainer.with_adversary(plan);
    }
    trainer = trainer.with_robust_agg(robust);

    writeln!(
        out,
        "training {method} on {} clients / {} edges ({param_count} params, {effective_threads} threads)",
        clients, edges
    )?;
    let (history, final_params, membership, async_report, scheduler) = match method.as_str() {
        "fedavg" => run_sim(
            &trainer,
            churn_on,
            &groups,
            grouping.as_ref(),
            &topology,
            &FedAvg,
            sampling,
            runtime.as_ref(),
        )?,
        "fedprox" => run_sim(
            &trainer,
            churn_on,
            &groups,
            grouping.as_ref(),
            &topology,
            &FedProx { mu },
            sampling,
            runtime.as_ref(),
        )?,
        "scaffold" => run_sim(
            &trainer,
            churn_on,
            &groups,
            grouping.as_ref(),
            &topology,
            &Scaffold::new(param_count, clients),
            sampling,
            runtime.as_ref(),
        )?,
        "fednova" => {
            let s = FedNova::from_sizes(&sizes, config.local_rounds, config.batch_size);
            run_sim(
                &trainer,
                churn_on,
                &groups,
                grouping.as_ref(),
                &topology,
                &s,
                sampling,
                runtime.as_ref(),
            )?
        }
        other => {
            return Err(CommandError::Invalid(format!(
                "unknown --method '{other}' (fedavg|fedprox|scaffold|fednova)"
            )))
        }
    };

    writeln!(out, "\n round       cost  accuracy    loss")?;
    for r in history.records() {
        writeln!(
            out,
            "{:6} {:10.0} {:9.4} {:7.4}",
            r.round, r.cost, r.accuracy, r.loss
        )?;
    }
    writeln!(out, "\nbest accuracy: {:.4}", history.best_accuracy())?;
    if let Some(rep) = &async_report {
        let sum = |f: fn(&gfl_core::semi_async::AsyncRoundRecord) -> usize| -> usize {
            rep.rounds.iter().map(f).sum()
        };
        writeln!(
            out,
            "semi-async: emulated clock {:.1} s, {} straggler cuts, \
             {} stale admitted, {} stale dropped, {} busy skips",
            rep.final_clock_s(),
            rep.total_cut_reports(),
            sum(|r| r.stale_admitted),
            sum(|r| r.stale_dropped),
            sum(|r| r.busy_skipped),
        )?;
    }
    if faults_on {
        writeln!(out, "faults: {}", history.fault_summary())?;
    }
    if adversary_on {
        let summary = history.attack_summary();
        writeln!(out, "attacks: {summary}")?;
        writeln!(
            out,
            "defense efficacy: {} injected / {} filtered ({} flame, {} non-finite)",
            summary.injected(),
            summary.filtered(),
            summary.filtered_flame,
            summary.filtered_non_finite
        )?;
        let asr = history.asr_records();
        if !asr.is_empty() {
            let cell = |v: Option<f32>| v.map_or("      -".into(), |x| format!("{x:7.4}"));
            writeln!(out, "\n round  trigger-asr  flip-asr")?;
            for r in asr {
                writeln!(
                    out,
                    "{:6}  {:>10}  {:>8}",
                    r.round,
                    cell(r.trigger_asr),
                    cell(r.flip_asr)
                )?;
            }
        }
    }
    if churn_on {
        writeln!(out, "regroups: {}", history.regroup_summary())?;
        let m = membership.as_ref().expect("churned runs return membership");
        writeln!(
            out,
            "final partition: {} groups over {} active clients",
            m.groups.len(),
            m.active_members()
        )?;
        let transitions = history.regroup_events();
        if !transitions.is_empty() {
            writeln!(out, "\n round  transition")?;
            for e in transitions {
                writeln!(out, "{:6}  {e}", e.round())?;
            }
        }
    }

    if let Some(path) = csv_path {
        std::fs::write(&path, history.to_csv())?;
        writeln!(out, "wrote {path}")?;
    }
    if let (Some(path), Some(rep)) = (async_csv, &async_report) {
        std::fs::write(&path, rep.to_csv())?;
        writeln!(out, "wrote {path}")?;
    }
    if let Some(path) = checkpoint_path {
        let last = history.records().last();
        let mut cp = Checkpoint::new(
            final_params,
            last.map_or(0, |r| r.round + 1),
            history.clone(),
            config,
            last.map_or(0.0, |r| r.cost),
        );
        if let Some(m) = membership {
            cp = cp.with_membership(m);
        }
        if let Some(s) = scheduler {
            cp = cp.with_scheduler(s);
        }
        cp.save(&path)
            .map_err(|e| CommandError::Invalid(e.to_string()))?;
        writeln!(out, "wrote {path}")?;
    }
    if let Some(obs) = observer {
        // A streaming collector has been writing the file all along;
        // finish() appends the summary line and flushes it.
        let trace = obs.finish(effective_threads);
        if show_metrics {
            write_metrics_summary(out, &trace)?;
        }
        if let Some(path) = trace_out {
            writeln!(out, "wrote {path}")?;
        }
    }
    Ok(())
}

/// Renders the `--metrics` end-of-run summary table from a finished trace.
fn write_metrics_summary(out: &mut dyn Write, trace: &gfl_obs::Trace) -> std::io::Result<()> {
    let summary = trace
        .summary
        .as_ref()
        .expect("finished traces carry a summary");
    let secs = |ns: u64| ns as f64 / 1e9;
    writeln!(out, "\n=== run metrics ===")?;
    writeln!(out, "rounds traced:   {}", summary.rounds)?;
    writeln!(out, "wall time:       {:.3} s", secs(summary.wall_ns))?;
    writeln!(out, "phase coverage:  {:.1}%", summary.coverage * 100.0)?;
    writeln!(out, "\nspan kind        count     total")?;
    for t in &summary.span_totals {
        writeln!(
            out,
            "{:<14} {:>7} {:>8.3} s",
            t.kind.label(),
            t.count,
            secs(t.total_ns)
        )?;
    }
    let metrics = &summary.metrics;
    if !metrics.counters.is_empty() {
        writeln!(out, "\ncounter                     value")?;
        for c in &metrics.counters {
            writeln!(out, "{:<24} {:>9}", c.name, c.value)?;
        }
    }
    if !metrics.gauges.is_empty() {
        writeln!(out, "\ngauge                       value")?;
        for g in &metrics.gauges {
            writeln!(out, "{:<24} {:>9.3}", g.name, g.value)?;
        }
    }
    if !metrics.histograms.is_empty() {
        writeln!(out, "\nhistogram              count      mean")?;
        for h in &metrics.histograms {
            let mean = if h.count > 0 {
                h.sum / h.count as f64
            } else {
                0.0
            };
            writeln!(out, "{:<20} {:>7} {:>7.3} ms", h.name, h.count, mean)?;
        }
    }
    Ok(())
}

/// Everything one simulation run can produce: the trajectory and final
/// params always; membership only from self-healing runs; the async
/// report and scheduler state only from semi-async runs.
type SimOutput = (
    RunHistory,
    Params,
    Option<MembershipState>,
    Option<AsyncReport>,
    Option<SchedulerState>,
);

/// Dispatches one simulation run: static groups for fixed-membership runs,
/// the self-healing engine when a churn plan is active.
#[allow(clippy::too_many_arguments)]
fn run_sim<S: LocalUpdate>(
    trainer: &Trainer,
    churned: bool,
    groups: &[Group],
    grouping: &dyn GroupingAlgorithm,
    topology: &Topology,
    strategy: &S,
    sampling: SamplingStrategy,
    runtime: Option<&AsyncConfig>,
) -> Result<SimOutput, CommandError> {
    if let Some(acfg) = runtime {
        if churned {
            // Online membership under the semi-async scheduler: churn and
            // healing run on the round boundary, and any membership
            // transition resets in-flight edge state (docs/ASYNC.md). No
            // scheduler state is returned — a regroup would invalidate a
            // resumed busy map anyway.
            let (h, p, rep, m) = trainer
                .run_semi_async_self_healing(grouping, topology, strategy, sampling, acfg)
                .map_err(|e| CommandError::Invalid(format!("regrouping failed: {e}")))?;
            return Ok((h, p, Some(m), Some(rep), None));
        }
        let (h, p, rep, sched) =
            trainer.run_semi_async_with_scheduler(groups, strategy, sampling, acfg);
        Ok((h, p, None, Some(rep), Some(sched)))
    } else if churned {
        let (h, p, m) = trainer
            .run_self_healing(grouping, topology, strategy, sampling)
            .map_err(|e| CommandError::Invalid(format!("regrouping failed: {e}")))?;
        Ok((h, p, Some(m), None, None))
    } else {
        let (h, p) = trainer.run_returning_params(groups, strategy, sampling);
        Ok((h, p, None, None, None))
    }
}

const GROUP_HELP: &str = "\
gfl group — form client groups and report their quality

  --data PATH | --task vision|speech --samples N   data source
  --alpha F --clients N --edges N --seed N         federation shape
  --grouping covg|rg|cdg|kldg|varg                 algorithm [covg]
  --min-gs N --max-cov F --group-size N            algorithm knobs
  --json             emit the groups as JSON instead of a table";

/// `gfl group`.
pub fn group(argv: &[String], out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        return Err(CommandError::Help(GROUP_HELP));
    }
    let seed: u64 = args.get("seed", 42, "int")?;
    let task = parse_task(&args.get_str("task", "vision"))?;
    let dataset = load_or_generate(&args, task, seed)?;
    let clients: usize = args.get("clients", 90, "int")?;
    let edges: usize = args.get("edges", 3, "int")?;
    let alpha: f64 = args.get("alpha", 0.1, "float")?;
    let partition = ClientPartition::dirichlet(
        &dataset,
        &PartitionSpec {
            num_clients: clients,
            alpha,
            min_size: 20,
            max_size: 200,
            seed,
        },
    );
    let topology = Topology::even_split(edges, partition.sizes());
    let grouping = parse_grouping(&args)?;
    let as_json = args.get_flag("json")?;
    args.reject_unknown()?;

    let groups = form_groups_per_edge(grouping.as_ref(), &topology, &partition.label_matrix, seed);
    if as_json {
        let payload: Vec<serde_json::Value> = groups
            .iter()
            .map(|g| {
                serde_json::json!({
                    "members": g,
                    "cov": group_cov(&partition.label_matrix, g),
                    "samples": g.iter().map(|&c| partition.indices[c].len()).sum::<usize>(),
                })
            })
            .collect();
        writeln!(out, "{}", serde_json::to_string_pretty(&payload).unwrap())?;
    } else {
        writeln!(out, "group  size  samples     cov")?;
        for (i, g) in groups.iter().enumerate() {
            let samples: usize = g.iter().map(|&c| partition.indices[c].len()).sum();
            writeln!(
                out,
                "{:5} {:5} {:8} {:7.3}",
                i,
                g.len(),
                samples,
                group_cov(&partition.label_matrix, g)
            )?;
        }
        writeln!(
            out,
            "\n{} groups, mean CoV {:.3}",
            groups.len(),
            mean_group_cov(&partition.label_matrix, &groups)
        )?;
    }
    Ok(())
}

const COST_HELP: &str = "\
gfl cost — print the calibrated RPi cost curves (Fig. 2a / Fig. 8)

  --task vision|speech    which task's table [vision]
  --max N                 largest x to print [50]";

/// `gfl cost`.
pub fn cost(argv: &[String], out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        return Err(CommandError::Help(COST_HELP));
    }
    let task = parse_task(&args.get_str("task", "vision"))?;
    let max: usize = args.get("max", 50, "int")?;
    args.reject_unknown()?;
    let m = CostModel::for_task(task);
    writeln!(out, "  x  training  backdoor    secagg  scaffold_secagg")?;
    for x in (0..=max).step_by((max / 10).max(1)) {
        writeln!(
            out,
            "{:3} {:9.2} {:9.2} {:9.2} {:16.2}",
            x,
            m.training(x),
            m.group_op(GroupOpKind::BackdoorDetection, x),
            m.group_op(GroupOpKind::SecureAggregation, x),
            m.group_op(GroupOpKind::ScaffoldSecureAggregation, x),
        )?;
    }
    Ok(())
}

const THEORY_HELP: &str = "\
gfl theory — evaluate the Theorem 1 convergence bound

  --eta F --t N --k N --e N --sampled N   schedule      [0.01 200 5 2 12]
  --l F --sigma2 F --zeta2 F --zetag2 F   constants     [1 1 1 0.5]
  --gamma F --big-gamma F --gamma-p F     group stats   [1.2 1.3 120]
  --group-size F                                        [6]";

/// `gfl theory`.
pub fn theory(argv: &[String], out: &mut dyn Write) -> CmdResult {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        return Err(CommandError::Help(THEORY_HELP));
    }
    let reference = TheoremInputs::reference();
    let inputs = TheoremInputs {
        initial_gap: args.get("gap", reference.initial_gap, "float")?,
        eta: args.get("eta", reference.eta, "float")?,
        t: args.get("t", reference.t, "int")?,
        k: args.get("k", reference.k, "int")?,
        e: args.get("e", reference.e, "int")?,
        l: args.get("l", reference.l, "float")?,
        sigma_sq: args.get("sigma2", reference.sigma_sq, "float")?,
        zeta_sq: args.get("zeta2", reference.zeta_sq, "float")?,
        zeta_g_sq: args.get("zetag2", reference.zeta_g_sq, "float")?,
        gamma: args.get("gamma", reference.gamma, "float")?,
        big_gamma: args.get("big-gamma", reference.big_gamma, "float")?,
        gamma_p: args.get("gamma-p", reference.gamma_p, "float")?,
        sampled: args.get("sampled", reference.sampled, "int")?,
        group_size: args.get("group-size", reference.group_size, "float")?,
    };
    args.reject_unknown()?;
    match theory::theorem1_bound(&inputs) {
        Some(bound) => {
            writeln!(out, "optimization term:  {:.6}", bound.optimization)?;
            writeln!(out, "sampling term:      {:.6}", bound.sampling)?;
            writeln!(out, "heterogeneity term: {:.6}", bound.heterogeneity)?;
            writeln!(out, "total bound:        {:.6}", bound.total())?;
        }
        None => {
            writeln!(
                out,
                "configuration violates the step-size conditions (Eq. 14/18): \
                 eta must satisfy eta <= 1/(2KE) and keep lambda_1 > 0"
            )?;
        }
    }
    Ok(())
}

// --- shared parsing helpers ---

fn parse_task(s: &str) -> Result<Task, CommandError> {
    match s {
        "vision" => Ok(Task::Vision),
        "speech" => Ok(Task::Speech),
        other => Err(CommandError::Invalid(format!(
            "unknown --task '{other}' (vision|speech)"
        ))),
    }
}

fn parse_sampling(s: &str) -> Result<SamplingStrategy, CommandError> {
    match s {
        "random" => Ok(SamplingStrategy::Random),
        "rcov" => Ok(SamplingStrategy::RCov),
        "srcov" => Ok(SamplingStrategy::SRCov),
        "esrcov" => Ok(SamplingStrategy::ESRCov),
        other => Err(CommandError::Invalid(format!(
            "unknown --sampling '{other}' (random|rcov|srcov|esrcov)"
        ))),
    }
}

fn parse_weighting(s: &str) -> Result<AggregationWeighting, CommandError> {
    match s {
        "standard" => Ok(AggregationWeighting::Standard),
        "unbiased" => Ok(AggregationWeighting::Unbiased),
        "stabilized" => Ok(AggregationWeighting::Stabilized),
        other => Err(CommandError::Invalid(format!(
            "unknown --weighting '{other}' (standard|unbiased|stabilized)"
        ))),
    }
}

fn parse_grouping(args: &Args) -> Result<Box<dyn GroupingAlgorithm>, CommandError> {
    let min_gs: usize = args.get("min-gs", 5, "int")?;
    let max_cov: f32 = args.get("max-cov", 0.5, "float")?;
    let group_size: usize = args.get("group-size", 6, "int")?;
    Ok(match args.get_str("grouping", "covg").as_str() {
        "covg" => Box::new(CovGrouping {
            min_group_size: min_gs,
            max_cov,
        }),
        "rg" => Box::new(RandomGrouping { group_size }),
        "cdg" => Box::new(CdgGrouping {
            group_size,
            kmeans_iters: 10,
        }),
        "kldg" => Box::new(KldGrouping { group_size }),
        "varg" => Box::new(VarianceGrouping {
            min_group_size: min_gs,
            max_variance: 60.0,
        }),
        "stream" => Box::new(StreamGrouping { group_size }),
        other => {
            return Err(CommandError::Invalid(format!(
                "unknown --grouping '{other}' (covg|rg|cdg|kldg|varg|stream)"
            )))
        }
    })
}

/// Builds the fault plan + policy from `--faults` and its override flags.
/// Returns `None` when no fault option was given (clean run, zero cost).
fn parse_faults(args: &Args, seed: u64) -> Result<Option<(FaultPlan, FaultPolicy)>, CommandError> {
    let preset = args.get_str("faults", "none");
    let fault_seed: u64 = args.get("fault-seed", seed, "int")?;
    let mut plan = match preset.as_str() {
        "none" => FaultPlan::none(),
        "moderate" => FaultPlan::moderate(fault_seed),
        other => {
            return Err(CommandError::Invalid(format!(
                "unknown --faults '{other}' (none|moderate)"
            )))
        }
    };
    plan.seed = fault_seed;
    let mut any = preset != "none";
    {
        let overrides: [(&str, &mut f64); 5] = [
            ("straggler-frac", &mut plan.straggler_fraction),
            ("straggler-factor", &mut plan.straggler_factor),
            ("crash-prob", &mut plan.crash_prob),
            ("corrupt-prob", &mut plan.corrupt_prob),
            ("upload-fail", &mut plan.upload_fail_prob),
        ];
        for (key, field) in overrides {
            if let Some(v) = args.get_opt(key) {
                *field = v
                    .parse()
                    .map_err(|_| ParseError::BadValue(key.into(), v, "float"))?;
                any = true;
            }
        }
    }
    if let Some(spec) = args.get_opt("outage") {
        let parts: Vec<Option<usize>> = spec.split(':').map(|p| p.parse().ok()).collect();
        match parts.as_slice() {
            [Some(edge), Some(from), Some(until)] if from < until => {
                plan.edge_outages.push(OutageWindow {
                    edge: *edge,
                    from_round: *from,
                    until_round: *until,
                });
                any = true;
            }
            _ => return Err(ParseError::BadValue("outage".into(), spec, "edge:from:until").into()),
        }
    }
    // Typed validation (gfl_faults::FaultConfigError): NaN, negative, and
    // out-of-range knobs fail here at parse time, not as engine panics.
    plan.validate()
        .map_err(|e| CommandError::Invalid(e.to_string()))?;
    let defaults = FaultPolicy::default();
    let policy = FaultPolicy {
        deadline_factor: args.get("deadline-factor", defaults.deadline_factor, "float")?,
        quorum_fraction: args.get("quorum", defaults.quorum_fraction, "float")?,
        max_retries: args.get("max-retries", defaults.max_retries, "int")?,
        backoff_base_s: args.get("backoff-base", defaults.backoff_base_s, "float")?,
        max_backoff_s: args.get("max-backoff", defaults.max_backoff_s, "float")?,
        ..defaults
    };
    policy
        .validate()
        .map_err(|e| CommandError::Invalid(e.to_string()))?;
    Ok(any.then_some((plan, policy)))
}

/// Parses `--runtime` and the semi-async knobs into an [`AsyncConfig`].
/// Returns `None` for the default lockstep engine.
fn parse_runtime(args: &Args) -> Result<Option<AsyncConfig>, CommandError> {
    let runtime = args.get_str("runtime", "sync");
    let decay: f64 = args.get("staleness-decay", 1.0, "float")?;
    let cloud: f64 = args.get("cloud-deadline", 0.0, "float")?;
    let policy = args.get_str("staleness-policy", "drop");
    match runtime.as_str() {
        "sync" => Ok(None),
        "semi-async" => {
            if !decay.is_finite() || decay < 0.0 {
                return Err(CommandError::Invalid(format!(
                    "--staleness-decay must be finite and >= 0, got {decay}"
                )));
            }
            if !cloud.is_finite() || cloud < 0.0 {
                return Err(CommandError::Invalid(format!(
                    "--cloud-deadline must be finite and >= 0 (0 waits for all), got {cloud}"
                )));
            }
            let staleness = match policy.as_str() {
                "drop" => StalenessPolicy::DropStale,
                "weighted" => StalenessPolicy::Weighted { decay },
                other => {
                    return Err(CommandError::Invalid(format!(
                        "unknown --staleness-policy '{other}' (drop|weighted)"
                    )))
                }
            };
            Ok(Some(AsyncConfig {
                staleness,
                cloud_deadline_factor: cloud,
            }))
        }
        other => Err(CommandError::Invalid(format!(
            "unknown --runtime '{other}' (sync|semi-async)"
        ))),
    }
}

/// Builds the churn plan + regroup policy from `--churn` and its override
/// flags. Returns `None` when no churn option was given (static membership).
fn parse_churn(
    args: &Args,
    seed: u64,
    rounds: usize,
) -> Result<Option<(ChurnPlan, RegroupPolicy)>, CommandError> {
    let preset = args.get_str("churn", "none");
    let churn_seed: u64 = args.get("churn-seed", seed, "int")?;
    let mut plan = match preset.as_str() {
        "none" => ChurnPlan {
            horizon: rounds.max(1),
            ..ChurnPlan::none()
        },
        "moderate" => ChurnPlan {
            horizon: rounds.max(1),
            ..ChurnPlan::moderate(churn_seed)
        },
        other => {
            return Err(CommandError::Invalid(format!(
                "unknown --churn '{other}' (none|moderate)"
            )))
        }
    };
    plan.seed = churn_seed;
    plan.horizon = args.get("churn-horizon", plan.horizon, "int")?;
    let mut any = preset != "none";
    {
        let overrides: [(&str, &mut f64); 3] = [
            ("depart-frac", &mut plan.departure_fraction),
            ("arrive-frac", &mut plan.arrival_fraction),
            ("flap-prob", &mut plan.flap_prob),
        ];
        for (key, field) in overrides {
            if let Some(v) = args.get_opt(key) {
                *field = v
                    .parse()
                    .map_err(|_| ParseError::BadValue(key.into(), v, "float"))?;
                any = true;
            }
        }
    }
    for (key, p) in [
        ("depart-frac", plan.departure_fraction),
        ("arrive-frac", plan.arrival_fraction),
        ("flap-prob", plan.flap_prob),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(CommandError::Invalid(format!(
                "--{key} must be a probability, got {p}"
            )));
        }
    }
    if plan.horizon == 0 {
        return Err(CommandError::Invalid(
            "--churn-horizon must be at least 1 round".into(),
        ));
    }
    let defaults = RegroupPolicy::default();
    let mut policy = match args.get_str("regroup-policy", "heal").as_str() {
        "heal" => defaults.clone(),
        "frozen" => RegroupPolicy::frozen(),
        other => {
            return Err(CommandError::Invalid(format!(
                "unknown --regroup-policy '{other}' (heal|frozen)"
            )))
        }
    };
    policy.size_floor = args.get("size-floor", defaults.size_floor, "int")?;
    policy.cov_drift = args.get("cov-drift", defaults.cov_drift, "float")?;
    policy.cooldown = args.get("regroup-cooldown", defaults.cooldown, "int")?;
    if let Some(v) = args.get_opt("reform-every") {
        let every: usize = v
            .parse()
            .map_err(|_| ParseError::BadValue("reform-every".into(), v, "int"))?;
        if every == 0 {
            return Err(CommandError::Invalid(
                "--reform-every must be at least 1 round".into(),
            ));
        }
        policy.full_reform_every = Some(every);
    }
    Ok(any.then_some((plan, policy)))
}

/// Builds the adversary plan from `--adversary` and its override flags,
/// checking labels and trigger width against the dataset's shape so bad
/// campaigns fail as typed errors, not engine panics. Returns `None` when
/// no adversary option was given (clean run, bit-identical to no plan).
fn parse_adversary(
    args: &Args,
    seed: u64,
    num_classes: usize,
    feature_dim: usize,
) -> Result<Option<AdversaryPlan>, CommandError> {
    let preset = args.get_str("adversary", "none");
    let adversary_seed: u64 = args.get("adversary-seed", seed, "int")?;
    let mut plan = match preset.as_str() {
        "none" => AdversaryPlan::none(),
        "moderate" => AdversaryPlan::moderate(adversary_seed),
        "backdoor" => AdversaryPlan::backdoor(adversary_seed, 0.2),
        other => {
            return Err(CommandError::Invalid(format!(
                "unknown --adversary '{other}' (none|moderate|backdoor)"
            )))
        }
    };
    plan.seed = adversary_seed;
    let mut any = preset != "none";
    {
        let overrides: [(&str, &mut f64); 6] = [
            ("backdoor-frac", &mut plan.backdoor_fraction),
            ("flip-frac", &mut plan.label_flip_fraction),
            ("poison-frac", &mut plan.model_poison_fraction),
            ("poison-rate", &mut plan.poison_rate),
            ("attack-scale", &mut plan.scale_factor),
            ("backdoor-boost", &mut plan.backdoor_boost),
        ];
        for (key, field) in overrides {
            if let Some(v) = args.get_opt(key) {
                *field = v
                    .parse()
                    .map_err(|_| ParseError::BadValue(key.into(), v, "float"))?;
                any = true;
            }
        }
    }
    {
        let overrides: [(&str, &mut usize); 4] = [
            ("trigger-width", &mut plan.trigger_width),
            ("trigger-target", &mut plan.trigger_target),
            ("flip-from", &mut plan.flip_from),
            ("flip-to", &mut plan.flip_to),
        ];
        for (key, field) in overrides {
            if let Some(v) = args.get_opt(key) {
                *field = v
                    .parse()
                    .map_err(|_| ParseError::BadValue(key.into(), v, "int"))?;
                any = true;
            }
        }
    }
    for (key, p) in [
        ("backdoor-frac", plan.backdoor_fraction),
        ("flip-frac", plan.label_flip_fraction),
        ("poison-frac", plan.model_poison_fraction),
        ("poison-rate", plan.poison_rate),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(CommandError::Invalid(format!(
                "--{key} must be a probability, got {p}"
            )));
        }
    }
    if plan.backdoor_fraction + plan.label_flip_fraction + plan.model_poison_fraction > 1.0 {
        return Err(CommandError::Invalid(
            "adversary fractions must sum to at most 1".into(),
        ));
    }
    if plan.backdoor_fraction > 0.0 {
        if plan.trigger_width == 0 || plan.trigger_width > feature_dim {
            return Err(CommandError::Invalid(format!(
                "--trigger-width must be in 1..={feature_dim} for this dataset"
            )));
        }
        if plan.trigger_target >= num_classes {
            return Err(CommandError::Invalid(format!(
                "--trigger-target must be < {num_classes} classes"
            )));
        }
        if !plan.backdoor_boost.is_finite() || plan.backdoor_boost <= 0.0 {
            return Err(CommandError::Invalid(
                "--backdoor-boost must be a positive finite factor".into(),
            ));
        }
    }
    if plan.label_flip_fraction > 0.0 {
        if plan.flip_from >= num_classes || plan.flip_to >= num_classes {
            return Err(CommandError::Invalid(format!(
                "--flip-from/--flip-to must be < {num_classes} classes"
            )));
        }
        if plan.flip_from == plan.flip_to {
            return Err(CommandError::Invalid(
                "--flip-from and --flip-to must differ: a flip must change the label".into(),
            ));
        }
    }
    if plan.model_poison_fraction > 0.0 && plan.scale_factor == 1.0 && !plan.sign_flip {
        return Err(CommandError::Invalid(
            "--attack-scale 1.0 with no sign flip is a no-op model poison".into(),
        ));
    }
    Ok(any.then_some(plan))
}

/// Parses `--robust-agg` into a group-level aggregation rule.
fn parse_robust_agg(args: &Args) -> Result<RobustAggRule, CommandError> {
    let f: usize = args.get("robust-f", 1, "int")?;
    let select: usize = args.get("robust-select", 2, "int")?;
    match args.get_str("robust-agg", "mean").as_str() {
        "mean" => Ok(RobustAggRule::Mean),
        "median" => Ok(RobustAggRule::CoordinateMedian),
        "trimmed-mean" => Ok(RobustAggRule::TrimmedMean { trim: f }),
        "krum" => Ok(RobustAggRule::Krum { byzantine: f }),
        "multi-krum" => Ok(RobustAggRule::MultiKrum {
            byzantine: f,
            select,
        }),
        "flame" => Ok(RobustAggRule::FlameFilter),
        other => Err(CommandError::Invalid(format!(
            "unknown --robust-agg '{other}' (mean|median|trimmed-mean|krum|multi-krum|flame)"
        ))),
    }
}

fn load_or_generate(args: &Args, task: Task, seed: u64) -> Result<Dataset, CommandError> {
    if let Some(path) = args.get_opt("data") {
        return gfl_data::load_dataset(&path)
            .map_err(|e| CommandError::Invalid(format!("--data {path}: {e}")));
    }
    let samples: usize = args.get("samples", 12_000, "int")?;
    let spec = match task {
        Task::Vision => SyntheticSpec::vision_like(),
        Task::Speech => SyntheticSpec::speech_like(),
    };
    Ok(spec.generate(samples, seed))
}

fn model_for(train: &Dataset, task: Task) -> gfl_nn::Network {
    // Synthetic presets use the zoo models; CSV data gets an MLP sized to
    // its dimensions.
    match task {
        Task::Vision if train.feature_dim() == 64 && train.num_classes() == 10 => {
            gfl_nn::zoo::vision_model()
        }
        Task::Speech if train.feature_dim() == 40 && train.num_classes() == 35 => {
            gfl_nn::zoo::speech_model()
        }
        _ => gfl_nn::Mlp::new(vec![
            train.feature_dim(),
            (train.feature_dim() * 2).max(16),
            train.num_classes(),
        ])
        .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn run_cmd(
        f: fn(&[String], &mut dyn Write) -> CmdResult,
        args: &str,
    ) -> (Result<(), CommandError>, String) {
        let mut buf = Vec::new();
        let r = f(&argv(args), &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn cost_prints_table() {
        let (r, out) = run_cmd(cost, "--task speech --max 20");
        r.unwrap();
        assert!(out.contains("scaffold_secagg"));
        assert!(out.lines().count() > 5);
    }

    #[test]
    fn cost_rejects_unknown_flag() {
        let (r, _) = run_cmd(cost, "--task vision --bogus 1");
        assert!(matches!(r.unwrap_err(), CommandError::Parse(_)));
    }

    #[test]
    fn theory_evaluates_reference() {
        let (r, out) = run_cmd(theory, "");
        r.unwrap();
        assert!(out.contains("total bound"));
    }

    #[test]
    fn theory_reports_invalid_eta() {
        let (r, out) = run_cmd(theory, "--eta 1.0");
        r.unwrap();
        assert!(out.contains("violates"));
    }

    #[test]
    fn group_reports_quality() {
        let (r, out) = run_cmd(
            group,
            "--clients 12 --edges 2 --samples 1200 --min-gs 2 --alpha 0.5 --seed 3",
        );
        r.unwrap();
        assert!(out.contains("mean CoV"));
    }

    #[test]
    fn group_emits_json() {
        let (r, out) = run_cmd(
            group,
            "--clients 8 --edges 2 --samples 800 --min-gs 2 --json",
        );
        r.unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(parsed.as_array().unwrap().len() >= 2);
    }

    #[test]
    fn simulate_tiny_session_runs() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1",
        );
        r.unwrap();
        assert!(out.contains("best accuracy"), "{out}");
    }

    #[test]
    fn simulate_faulted_session_prints_summary() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 3 --k 2 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
             --faults moderate --fault-seed 9 --crash-prob 0.3",
        );
        r.unwrap();
        assert!(out.contains("best accuracy"), "{out}");
        assert!(out.contains("faults:"), "{out}");
    }

    #[test]
    fn simulate_rejects_bad_fault_flags() {
        for flags in [
            "--faults typhoon",
            "--crash-prob 1.5",
            "--straggler-frac 0.2 --straggler-factor 0.5",
            "--outage 0-1-2",
        ] {
            let (r, _) = run_cmd(
                simulate,
                &format!("--clients 8 --edges 2 --samples 900 --min-gs 2 {flags}"),
            );
            assert!(r.is_err(), "{flags} should be rejected");
        }
    }

    #[test]
    fn simulate_churned_session_prints_regroup_summary() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 4 --k 1 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
             --churn moderate --churn-seed 11 --depart-frac 0.5 --arrive-frac 0.3",
        );
        r.unwrap();
        assert!(out.contains("best accuracy"), "{out}");
        assert!(out.contains("regroups:"), "{out}");
        assert!(out.contains("final partition:"), "{out}");
    }

    #[test]
    fn simulate_frozen_policy_accepted() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 3 --k 1 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
             --churn moderate --regroup-policy frozen",
        );
        r.unwrap();
        assert!(out.contains("regroups:"), "{out}");
    }

    #[test]
    fn simulate_robust_agg_runs() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
             --robust-agg median",
        );
        r.unwrap();
        assert!(out.contains("best accuracy"), "{out}");
    }

    #[test]
    fn simulate_rejects_robust_agg_with_secure() {
        let (r, _) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --min-gs 2 \
             --robust-agg krum --secure",
        );
        assert!(matches!(r.unwrap_err(), CommandError::Invalid(_)));
    }

    #[test]
    fn simulate_rejects_bad_churn_flags() {
        for flags in [
            "--churn hurricane",
            "--churn moderate --depart-frac 1.5",
            "--churn moderate --regroup-policy maybe",
            "--churn moderate --churn-horizon 0",
            "--churn moderate --reform-every 0",
            "--robust-agg sha256",
        ] {
            let (r, _) = run_cmd(
                simulate,
                &format!("--clients 8 --edges 2 --samples 900 --min-gs 2 {flags}"),
            );
            assert!(r.is_err(), "{flags} should be rejected");
        }
    }

    #[test]
    fn simulate_adversary_session_prints_attack_summary_and_asr() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 3 --k 2 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
             --adversary moderate --adversary-seed 7 --backdoor-frac 0.3 \
             --flip-frac 0.2 --poison-frac 0.2",
        );
        r.unwrap();
        assert!(out.contains("best accuracy"), "{out}");
        assert!(out.contains("attacks:"), "{out}");
        assert!(out.contains("defense efficacy:"), "{out}");
        assert!(out.contains("trigger-asr"), "{out}");
    }

    #[test]
    fn simulate_adversary_with_flame_defense_runs() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 12 --edges 2 --samples 1400 --rounds 3 --k 2 --e 1 \
             --sample 2 --min-gs 4 --max-cov 10.0 --alpha 0.5 --seed 3 \
             --eval-every 1 --adversary backdoor --backdoor-frac 0.3 \
             --poison-frac 0.2 --attack-scale 5.0 --robust-agg flame",
        );
        r.unwrap();
        assert!(out.contains("defense efficacy:"), "{out}");
    }

    #[test]
    fn simulate_rejects_bad_adversary_flags() {
        for flags in [
            "--adversary ninja",
            "--adversary moderate --backdoor-frac 1.5",
            "--adversary moderate --backdoor-frac 0.6 --flip-frac 0.6",
            "--adversary moderate --flip-from 2 --flip-to 2",
            "--adversary backdoor --trigger-target 99",
            "--adversary backdoor --trigger-width 0",
            "--robust-agg flame --secure",
        ] {
            let (r, _) = run_cmd(
                simulate,
                &format!("--clients 8 --edges 2 --samples 900 --min-gs 2 {flags}"),
            );
            assert!(r.is_err(), "{flags} should be rejected");
        }
    }

    #[test]
    fn simulate_semi_async_session_prints_clock_summary() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 3 --k 2 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
             --runtime semi-async --staleness-policy weighted --cloud-deadline 1.5 \
             --faults moderate --straggler-frac 0.4 --straggler-factor 8 \
             --quorum 0.6 --deadline-factor 1.5",
        );
        r.unwrap();
        assert!(out.contains("best accuracy"), "{out}");
        assert!(out.contains("semi-async: emulated clock"), "{out}");
    }

    #[test]
    fn simulate_semi_async_degenerate_limit_matches_sync_output() {
        // With no faults and default knobs, the semi-async engine must
        // print the exact same trajectory as the lockstep one.
        let base = "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1";
        let (r1, out1) = run_cmd(simulate, base);
        r1.unwrap();
        let (r2, out2) = run_cmd(simulate, &format!("{base} --runtime semi-async"));
        r2.unwrap();
        let table = |s: &str| {
            s.lines()
                .skip_while(|l| !l.contains("round"))
                .take_while(|l| !l.starts_with("semi-async:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table(&out1), table(&out2));
        assert!(out2.contains("semi-async: emulated clock"), "{out2}");
    }

    #[test]
    fn simulate_semi_async_writes_report_csv() {
        let path = std::env::temp_dir().join(format!("gfl_async_{}.csv", std::process::id()));
        let (r, _) = run_cmd(
            simulate,
            &format!(
                "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
                 --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
                 --runtime semi-async --async-csv {}",
                path.display()
            ),
        );
        r.unwrap();
        let csv = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(csv.starts_with("round,"), "{csv}");
        assert_eq!(csv.lines().count(), 3, "{csv}");
    }

    #[test]
    fn simulate_semi_async_checkpoint_carries_scheduler_state() {
        let path = std::env::temp_dir().join(format!("gfl_async_cp_{}.json", std::process::id()));
        let (r, _) = run_cmd(
            simulate,
            &format!(
                "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
                 --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
                 --runtime semi-async --checkpoint {}",
                path.display()
            ),
        );
        r.unwrap();
        let cp = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let sched = cp
            .scheduler
            .expect("semi-async checkpoint stores the scheduler");
        assert!(sched.clock_s > 0.0, "emulated clock must have advanced");
    }

    #[test]
    fn simulate_rejects_bad_runtime_flags() {
        for flags in [
            "--runtime warp",
            "--runtime semi-async --staleness-policy soggy",
            "--runtime semi-async --staleness-decay -1",
            "--runtime semi-async --cloud-deadline -2",
            "--async-csv out.csv",
            "--faults moderate --quorum 1.5",
            "--faults moderate --deadline-factor -1",
            "--faults moderate --backoff-base -1",
            "--faults moderate --max-backoff 0",
        ] {
            let (r, _) = run_cmd(
                simulate,
                &format!("--clients 8 --edges 2 --samples 900 --min-gs 2 {flags}"),
            );
            assert!(
                matches!(r, Err(CommandError::Invalid(_))),
                "{flags} should be rejected as invalid"
            );
        }
    }

    #[test]
    fn simulate_semi_async_with_churn_heals_and_reports_clock() {
        // ROADMAP item: the previously-rejected --runtime semi-async +
        // --churn combination now runs through the self-healing scheduler
        // and reports both the emulated clock and the regroup log.
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 4 --k 1 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
             --runtime semi-async --churn moderate --churn-seed 11 \
             --depart-frac 0.5 --arrive-frac 0.3",
        );
        r.unwrap();
        assert!(out.contains("best accuracy"), "{out}");
        assert!(out.contains("semi-async: emulated clock"), "{out}");
        assert!(out.contains("regroups:"), "{out}");
        assert!(out.contains("final partition:"), "{out}");
    }

    #[test]
    fn simulate_virtual_session_runs() {
        let (r, out) = run_cmd(
            simulate,
            "--virtual --clients 24 --edges 2 --samples 900 --rounds 2 --k 1 \
             --e 1 --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1",
        );
        r.unwrap();
        assert!(out.contains("best accuracy"), "{out}");
        assert!(out.contains("24 clients"), "{out}");
    }

    #[test]
    fn simulate_virtual_composes_with_stream_grouping_and_runtime() {
        let (r, out) = run_cmd(
            simulate,
            "--virtual --clients 24 --edges 2 --rounds 2 --k 1 --e 1 \
             --sample 2 --group-size 4 --grouping stream --alpha 0.5 \
             --seed 3 --eval-every 1 --runtime semi-async",
        );
        r.unwrap();
        assert!(out.contains("best accuracy"), "{out}");
        assert!(out.contains("semi-async: emulated clock"), "{out}");
    }

    #[test]
    fn simulate_virtual_rejects_incompatible_flags() {
        for flags in [
            "--virtual --data somewhere.csv",
            "--virtual --method scaffold",
        ] {
            let (r, _) = run_cmd(
                simulate,
                &format!("--clients 8 --edges 2 --min-gs 2 {flags}"),
            );
            assert!(
                matches!(r, Err(CommandError::Invalid(_))),
                "{flags} should be rejected as invalid"
            );
        }
    }

    #[test]
    fn simulate_stream_grouping_runs_on_materialized_data() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
             --sample 2 --group-size 3 --grouping stream --alpha 0.5 \
             --seed 3 --eval-every 1",
        );
        r.unwrap();
        assert!(out.contains("best accuracy"), "{out}");
    }

    #[test]
    fn simulate_threads_flag_echoed_and_bit_identical() {
        let args = "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 --threads";
        let (r1, out1) = run_cmd(simulate, &format!("{args} 1"));
        r1.unwrap();
        assert!(out1.contains("1 threads"), "{out1}");
        let (r2, out2) = run_cmd(simulate, &format!("{args} 4"));
        r2.unwrap();
        assert!(out2.contains("4 threads"), "{out2}");
        // Same trajectory regardless of the worker count.
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.contains("round"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&out1), tail(&out2));
        gfl_parallel::set_default_parallelism(0);
    }

    #[test]
    fn simulate_traced_session_writes_valid_jsonl_and_metrics() {
        let path = std::env::temp_dir().join(format!("gfl_cli_trace_{}.jsonl", std::process::id()));
        let (r, out) = run_cmd(
            simulate,
            &format!(
                "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
                 --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
                 --metrics --trace-out {}",
                path.display()
            ),
        );
        r.unwrap();
        assert!(out.contains("=== run metrics ==="), "{out}");
        assert!(out.contains("rounds.total"), "{out}");
        let trace = gfl_obs::TraceReader::read(&path).expect("trace must parse");
        std::fs::remove_file(&path).ok();
        assert_eq!(trace.rounds.len(), 2);
        assert!(trace.summary.is_some());
    }

    #[test]
    fn semi_async_metrics_expose_the_async_family() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
             --runtime semi-async --metrics",
        );
        r.unwrap();
        assert!(out.contains("async.clock_s"), "{out}");
        assert!(out.contains("async.stale."), "{out}");
    }

    #[test]
    fn adversary_metrics_expose_the_attacks_family() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
             --adversary moderate --metrics",
        );
        r.unwrap();
        assert!(out.contains("attacks.injected"), "{out}");
    }

    #[test]
    fn robust_aggregation_metrics_expose_the_defense_family() {
        let (r, out) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
             --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1 \
             --adversary moderate --robust-agg flame --robust-f 1 --metrics",
        );
        r.unwrap();
        assert!(out.contains("defense.similarity_evals"), "{out}");
        assert!(out.contains("defense.norm_passes"), "{out}");
    }

    #[test]
    fn simulate_zero_rounds_is_a_typed_error_not_a_panic() {
        let (r, _) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --min-gs 2 --rounds 0",
        );
        assert!(matches!(r.unwrap_err(), CommandError::Invalid(_)));
    }

    #[test]
    fn simulate_unknown_method_errors() {
        let (r, _) = run_cmd(
            simulate,
            "--clients 8 --edges 2 --samples 900 --method sgd --min-gs 2",
        );
        assert!(matches!(r.unwrap_err(), CommandError::Invalid(_)));
    }

    #[test]
    fn help_short_circuits() {
        for f in [simulate, group, cost, theory] {
            let (r, _) = run_cmd(f, "--help");
            assert!(matches!(r.unwrap_err(), CommandError::Help(_)));
        }
    }
}
