//! Minimal `--key value` argument parser with typed, defaulted getters.

use std::collections::BTreeMap;

/// Parse-time errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// An argument did not start with `--`.
    NotAFlag(String),
    /// A `--key` was given twice.
    Duplicate(String),
    /// A value failed to parse: (key, value, expected type).
    BadValue(String, String, &'static str),
    /// A key is not recognized by the command.
    Unknown(String),
    /// A required key is missing.
    Missing(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::NotAFlag(a) => write!(f, "expected --flag, got '{a}'"),
            ParseError::Duplicate(k) => write!(f, "--{k} given more than once"),
            ParseError::BadValue(k, v, ty) => {
                write!(f, "--{k}: '{v}' is not a valid {ty}")
            }
            ParseError::Unknown(k) => write!(f, "unknown option --{k}"),
            ParseError::Missing(k) => write!(f, "missing required option --{k}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parsed `--key value` pairs; bare `--flag`s get the value `"true"`.
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    /// Keys read by a getter; used to reject unknown options.
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parses an argv slice (after the subcommand).
    pub fn parse(argv: &[String]) -> Result<Self, ParseError> {
        let mut values = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ParseError::NotAFlag(arg.clone()));
            };
            let key = key.to_string();
            // Value = next token unless it is another flag or absent.
            let value = match argv.get(i + 1) {
                Some(next) if !next.starts_with("--") => {
                    i += 1;
                    next.clone()
                }
                _ => "true".to_string(),
            };
            if values.insert(key.clone(), value).is_some() {
                return Err(ParseError::Duplicate(key));
            }
            i += 1;
        }
        Ok(Self {
            values,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    fn raw(&self, key: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(key.to_string());
        self.values.get(key).map(String::as_str)
    }

    /// True if `--help` was passed.
    pub fn wants_help(&self) -> bool {
        self.raw("help").is_some()
    }

    /// String option with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.raw(key).unwrap_or(default).to_string()
    }

    /// Optional string (no default).
    pub fn get_opt(&self, key: &str) -> Option<String> {
        self.raw(key).map(str::to_string)
    }

    /// Typed option with default.
    pub fn get<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        ty: &'static str,
    ) -> Result<T, ParseError> {
        match self.raw(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError::BadValue(key.into(), v.into(), ty)),
        }
    }

    /// Boolean flag (present ⇒ true unless an explicit value is given).
    pub fn get_flag(&self, key: &str) -> Result<bool, ParseError> {
        match self.raw(key) {
            None => Ok(false),
            Some("true") => Ok(true),
            Some("false") => Ok(false),
            Some(v) => Err(ParseError::BadValue(key.into(), v.into(), "bool")),
        }
    }

    /// After all getters ran, rejects any option that no getter consumed.
    pub fn reject_unknown(&self) -> Result<(), ParseError> {
        let consumed = self.consumed.borrow();
        for key in self.values.keys() {
            if !consumed.iter().any(|c| c == key) {
                return Err(ParseError::Unknown(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = Args::parse(&argv("--alpha 0.1 --clients 120")).unwrap();
        assert_eq!(a.get("alpha", 1.0f64, "float").unwrap(), 0.1);
        assert_eq!(a.get("clients", 0usize, "int").unwrap(), 120);
    }

    #[test]
    fn bare_flags_are_true() {
        let a = Args::parse(&argv("--secure --alpha 0.5")).unwrap();
        assert!(a.get_flag("secure").unwrap());
        assert!(!a.get_flag("absent").unwrap());
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(&argv("")).unwrap();
        assert_eq!(a.get("rounds", 60usize, "int").unwrap(), 60);
        assert_eq!(a.get_str("task", "vision"), "vision");
    }

    #[test]
    fn rejects_non_flags() {
        assert_eq!(
            Args::parse(&argv("positional")).unwrap_err(),
            ParseError::NotAFlag("positional".into())
        );
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            Args::parse(&argv("--a 1 --a 2")).unwrap_err(),
            ParseError::Duplicate("a".into())
        );
    }

    #[test]
    fn rejects_bad_values() {
        let a = Args::parse(&argv("--rounds banana")).unwrap();
        assert!(matches!(
            a.get("rounds", 1usize, "int").unwrap_err(),
            ParseError::BadValue(..)
        ));
    }

    #[test]
    fn rejects_unknown_after_consumption() {
        let a = Args::parse(&argv("--alpha 0.1 --typo 3")).unwrap();
        let _ = a.get("alpha", 1.0f64, "float");
        assert!(matches!(
            a.reject_unknown().unwrap_err(),
            ParseError::Unknown(k) if k == "typo"
        ));
    }

    #[test]
    fn accepts_all_consumed() {
        let a = Args::parse(&argv("--alpha 0.1")).unwrap();
        let _ = a.get("alpha", 1.0f64, "float");
        assert!(a.reject_unknown().is_ok());
    }
}
