//! End-to-end tests for the `gfl-trace` analyzer: run real simulations
//! through the `gfl` command layer, then analyze the streamed traces with
//! `summarize` / `diff` / `flame`, and exercise the `regress` perf gate
//! against checked-in fixtures.

use std::path::PathBuf;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

/// Runs `gfl <args>`, asserting success.
fn gfl(args: &str) -> String {
    let mut out = Vec::new();
    let code = gfl_cli::run(&argv(args), &mut out);
    let text = String::from_utf8(out).unwrap();
    assert_eq!(code, 0, "gfl {args} failed:\n{text}");
    text
}

/// Runs `gfl-trace <args>`, returning (exit code, output).
fn gfl_trace(args: &str) -> (i32, String) {
    let mut out = Vec::new();
    let code = gfl_cli::trace_cli::run(&argv(args), &mut out);
    (code, String::from_utf8(out).unwrap())
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gfl_trace_tool_{}_{name}", std::process::id()))
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

const SIM: &str = "simulate --clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
                   --sample 2 --min-gs 2 --alpha 0.5 --seed 3 --eval-every 1";

fn traced_run(path: &std::path::Path) {
    gfl(&format!("{SIM} --trace-out {}", path.display()));
}

#[test]
fn summarize_reports_phases_bytes_and_rounds() {
    let path = tmp("summarize.jsonl");
    traced_run(&path);
    let (code, out) = gfl_trace(&format!("summarize {}", path.display()));
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("schema v2"), "{out}");
    assert!(out.contains("rounds: 2"), "{out}");
    for phase in ["round", "train", "group_round", "client_step", "aggregate"] {
        assert!(out.contains(phase), "missing phase {phase}:\n{out}");
    }
    assert!(out.contains("client<->edge"), "{out}");
    assert!(out.contains("edge<->cloud"), "{out}");
    // Byte totals must be non-zero: comm accounting is always on.
    assert!(
        !out.contains("client<->edge           0"),
        "client-edge bytes should be non-zero:\n{out}"
    );
}

#[test]
fn diff_of_two_same_seed_runs_reports_zero_divergence() {
    let (a, b) = (tmp("diff_a.jsonl"), tmp("diff_b.jsonl"));
    traced_run(&a);
    traced_run(&b);
    let (code, out) = gfl_trace(&format!("diff {} {}", a.display(), b.display()));
    assert_eq!(code, 0, "same-seed runs must not diverge:\n{out}");
    assert!(out.contains("no divergence"), "{out}");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn diff_detects_a_divergent_run() {
    let (a, b) = (tmp("div_a.jsonl"), tmp("div_b.jsonl"));
    traced_run(&a);
    gfl(&format!(
        "simulate --clients 8 --edges 2 --samples 900 --rounds 2 --k 1 --e 1 \
         --sample 2 --min-gs 2 --alpha 0.5 --seed 4 --eval-every 1 --trace-out {}",
        b.display()
    ));
    let (code, out) = gfl_trace(&format!("diff {} {}", a.display(), b.display()));
    assert_eq!(code, 1, "different seeds must diverge:\n{out}");
    assert!(out.contains("diverged:"), "{out}");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn exact_diff_finds_timing_differences_between_same_seed_runs() {
    let (a, b) = (tmp("exact_a.jsonl"), tmp("exact_b.jsonl"));
    traced_run(&a);
    traced_run(&b);
    // Wall-clock timings differ between runs, so --exact reports the first
    // differing field (while the default deterministic projection does not).
    let (code, out) = gfl_trace(&format!("diff {} {} --exact", a.display(), b.display()));
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("diverged:"), "{out}");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn flame_emits_collapsed_stacks_on_both_clocks() {
    let path = tmp("flame.jsonl");
    traced_run(&path);
    let (code, wall) = gfl_trace(&format!("flame {}", path.display()));
    assert_eq!(code, 0, "{wall}");
    assert!(
        wall.contains("round;train;group_round;client_step "),
        "{wall}"
    );
    for line in wall.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("stack<space>weight");
        assert!(!stack.is_empty());
        assert!(weight.parse::<u64>().is_ok(), "bad weight in {line}");
    }
    let (code, emu) = gfl_trace(&format!("flame {} --clock emulated", path.display()));
    assert_eq!(code, 0, "{emu}");
    assert!(emu.contains("emulated;round_0 "), "{emu}");
    assert!(emu.contains("emulated;round_1 "), "{emu}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn regress_passes_a_snapshot_against_itself() {
    let base = fixture("bench_baseline.json");
    let (code, out) = gfl_trace(&format!("regress {} {}", base.display(), base.display()));
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("0 regression(s)"), "{out}");
    // The unreliable threads=16 row must not be throughput-checked.
    assert!(!out.contains("rounds_per_sec[threads=16]"), "{out}");
    // But its alloc count (machine-independent) is.
    assert!(out.contains("allocs_per_round[threads=16]"), "{out}");
}

#[test]
fn regress_fails_on_the_injected_regression_fixture() {
    let base = fixture("bench_baseline.json");
    let cur = fixture("bench_regressed.json");
    let (code, out) = gfl_trace(&format!("regress {} {}", base.display(), cur.display()));
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("FAIL rounds_per_sec[threads=1]"), "{out}");
    assert!(out.contains("FAIL allocs_per_round[threads=8]"), "{out}");
    assert!(out.contains("FAIL gemm_gflops[avx2]"), "{out}");
    // Within-threshold drift still passes.
    assert!(out.contains("PASS rounds_per_sec[threads=8]"), "{out}");
    assert!(out.contains("PASS gemm_gflops[scalar]"), "{out}");
    assert!(out.contains("REGRESSION"), "{out}");
}

#[test]
fn regress_thresholds_are_tunable_from_the_command_line() {
    let base = fixture("bench_baseline.json");
    let cur = fixture("bench_regressed.json");
    // Loosen every threshold until the regressed fixture passes.
    let (code, out) = gfl_trace(&format!(
        "regress {} {} --min-rps-ratio 0.1 --max-alloc-delta 100 --min-gflops-ratio 0.1",
        base.display(),
        cur.display()
    ));
    assert_eq!(code, 0, "{out}");
}

#[test]
fn regress_gates_the_scale_section_sub_second() {
    let base = fixture("bench_baseline.json");
    // Current = baseline + a scale section (as bench_scale merges it).
    let with_scale = |name: &str, formation: f64, regroup: f64| {
        let mut v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&base).unwrap()).unwrap();
        let serde_json::Value::Object(pairs) = &mut v else {
            panic!("fixture must be an object")
        };
        pairs.push((
            "scale".to_string(),
            serde_json::json!({
                "clients": 1_000_000usize,
                "formation_seconds_1m": formation,
                "regroup_seconds_1m": regroup,
            }),
        ));
        let path = tmp(name);
        std::fs::write(&path, serde_json::to_string(&v).unwrap()).unwrap();
        path
    };

    let fast = with_scale("bench_scale_fast.json", 0.4, 0.7);
    let (code, out) = gfl_trace(&format!("regress {} {}", base.display(), fast.display()));
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("PASS scale.formation_seconds_1m"), "{out}");
    assert!(out.contains("PASS scale.regroup_seconds_1m"), "{out}");

    let slow = with_scale("bench_scale_slow.json", 2.5, 0.7);
    let (code, out) = gfl_trace(&format!("regress {} {}", base.display(), slow.display()));
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("FAIL scale.formation_seconds_1m"), "{out}");

    // The cap is tunable; a baseline without the section is never gated.
    let (code, out) = gfl_trace(&format!(
        "regress {} {} --max-formation-seconds 5",
        base.display(),
        slow.display()
    ));
    assert_eq!(code, 0, "{out}");
    let (code, out) = gfl_trace(&format!("regress {} {}", base.display(), base.display()));
    assert_eq!(code, 0, "{out}");
    assert!(!out.contains("scale."), "{out}");
    std::fs::remove_file(&fast).ok();
    std::fs::remove_file(&slow).ok();
}

#[test]
fn regress_with_no_overlap_is_an_error() {
    let base = fixture("bench_baseline.json");
    let empty = tmp("empty_bench.json");
    std::fs::write(&empty, "{\"results\": []}").unwrap();
    let (code, out) = gfl_trace(&format!("regress {} {}", base.display(), empty.display()));
    std::fs::remove_file(&empty).ok();
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("no comparable entries"), "{out}");
}
