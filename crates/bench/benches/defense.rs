//! Fig. 2(a)/Fig. 8 — backdoor-detection cost scaling with group size
//! (pairwise cosine matrix + clustering + clipping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfl_bench::random_vectors;
use gfl_defense::{filter_updates, DefenseConfig};
use std::hint::black_box;

fn bench_defense(c: &mut Criterion) {
    let dim = 1024;
    let mut group = c.benchmark_group("fig8_defense_scaling");
    group.sample_size(10);
    for &g in &[5usize, 10, 20, 40] {
        let updates = random_vectors(g, dim, g as u64 + 100);
        group.bench_with_input(BenchmarkId::new("filter_updates", g), &g, |b, _| {
            b.iter_batched(
                || updates.clone(),
                |mut u| black_box(filter_updates(&mut u, &DefenseConfig::default())),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_defense);
criterion_main!(benches);
