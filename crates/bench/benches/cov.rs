//! Eq. 27 — CoV evaluation, the primitive §5.4 credits for CoV-Grouping's
//! speed over KLD ("calculating CoV only involves addition and
//! multiplication, which are much cheaper than log()").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfl_bench::skewed_labels;
use gfl_core::cov::{cov_with_candidate, group_cov, histogram_cov};
use gfl_tensor::stats;
use std::hint::black_box;

fn bench_cov(c: &mut Criterion) {
    let mut group = c.benchmark_group("cov_primitives");
    for &labels_n in &[10usize, 35] {
        let matrix = skewed_labels(64, labels_n, labels_n as u64);
        let members: Vec<usize> = (0..32).collect();
        let hist = matrix.group_histogram(&members);

        group.bench_with_input(
            BenchmarkId::new("group_cov", labels_n),
            &labels_n,
            |b, _| b.iter(|| black_box(group_cov(&matrix, &members))),
        );
        group.bench_with_input(
            BenchmarkId::new("incremental_candidate", labels_n),
            &labels_n,
            |b, _| b.iter(|| black_box(cov_with_candidate(&matrix, &hist, 40))),
        );
        group.bench_with_input(
            BenchmarkId::new("histogram_cov", labels_n),
            &labels_n,
            |b, _| b.iter(|| black_box(histogram_cov(&hist))),
        );
        // The KLD alternative's primitive, for the §5.4 comparison.
        let p: Vec<f32> = hist.iter().map(|&h| h as f32 + 1.0).collect();
        let p = stats::normalize(&p);
        let q = vec![1.0 / labels_n as f32; labels_n];
        group.bench_with_input(
            BenchmarkId::new("kl_divergence", labels_n),
            &labels_n,
            |b, _| b.iter(|| black_box(stats::kl_divergence(&p, &q, 1e-9))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cov);
criterion_main!(benches);
