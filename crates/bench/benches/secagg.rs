//! Fig. 2(a)/Fig. 8 — secure-aggregation cost scaling with group size.
//!
//! Per-client masking is O(|g|·d); the whole round is O(|g|²·d). Dropout
//! recovery adds O(dropped × survivors × d) on the server.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gfl_bench::random_vectors;
use gfl_secagg::{ExactSecAgg, SecAggSession};
use std::hint::black_box;

fn bench_secagg(c: &mut Criterion) {
    let dim = 4096; // roughly the speech model's parameter count
    let mut group = c.benchmark_group("fig8_secagg_scaling");
    group.sample_size(10);
    for &g in &[5usize, 10, 20, 40] {
        let updates = random_vectors(g, dim, g as u64);
        let session = SecAggSession::new((0..g as u32).collect(), dim, 7);
        group.throughput(Throughput::Elements(g as u64));

        group.bench_with_input(BenchmarkId::new("mask_one_client", g), &g, |b, _| {
            b.iter(|| black_box(session.mask(0, &updates[0])));
        });
        group.bench_with_input(BenchmarkId::new("full_round", g), &g, |b, _| {
            b.iter(|| black_box(session.aggregate(&updates)));
        });

        // Dropout recovery: 20% of the group drops after masking.
        let masked: Vec<Vec<f32>> = (0..g)
            .map(|i| session.mask(i as u32, &updates[i]).0)
            .collect();
        let survivors: Vec<u32> = (0..g as u32).filter(|&m| m % 5 != 0).collect();
        let masked_surv: Vec<Vec<f32>> = survivors
            .iter()
            .map(|&m| masked[m as usize].clone())
            .collect();
        group.bench_with_input(BenchmarkId::new("unmask_with_dropouts", g), &g, |b, _| {
            b.iter(|| black_box(session.unmask_sum(&survivors, &masked_surv)));
        });
    }
    group.finish();

    // The bit-exact fixed-point ring variant, for the float-vs-ring
    // overhead comparison.
    let mut group = c.benchmark_group("exact_ring_secagg");
    group.sample_size(10);
    for &g in &[5usize, 20] {
        let updates = random_vectors(g, dim, g as u64 + 7);
        let session = ExactSecAgg::new((0..g as u32).collect(), dim, 11);
        group.bench_with_input(BenchmarkId::new("mask_one_client", g), &g, |b, _| {
            b.iter(|| black_box(session.mask(0, &updates[0])));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_secagg);
criterion_main!(benches);
