//! Fig. 5 — grouping-algorithm runtime vs client count.
//!
//! The paper's ordering: RG ≈ free, CDG cheap, CoVG moderate, KLDG slowest
//! (full KL recomputation with `ln()` per candidate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfl_bench::skewed_labels;
use gfl_core::grouping::{
    CdgGrouping, CovGrouping, GroupingAlgorithm, KldGrouping, RandomGrouping,
};
use gfl_tensor::init;
use std::hint::black_box;

fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_grouping_runtime");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let labels = skewed_labels(n, 10, n as u64);
        let algos: Vec<(&str, Box<dyn GroupingAlgorithm>)> = vec![
            ("RG", Box::new(RandomGrouping { group_size: 6 })),
            (
                "CDG",
                Box::new(CdgGrouping {
                    group_size: 6,
                    kmeans_iters: 10,
                }),
            ),
            ("KLDG", Box::new(KldGrouping { group_size: 6 })),
            (
                "CoVG",
                Box::new(CovGrouping {
                    min_group_size: 5,
                    max_cov: 0.3,
                }),
            ),
        ];
        for (name, algo) in algos {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let mut rng = init::rng(1);
                    black_box(algo.form_groups(&labels, &mut rng))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
