//! One full Algorithm-1 global round — the unit every accuracy figure
//! (Fig. 2b, 9–12, Table 1) integrates over. Benchmarked for FedAvg,
//! FedProx, and SCAFFOLD local updates, and with the real SecAgg protocol
//! in the aggregation path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfl_baselines::{FedProx, Scaffold};
use gfl_core::engine::{form_groups_per_edge, GroupFelConfig, Trainer};
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::sampling::{AggregationWeighting, SamplingStrategy};
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_nn::sgd::LrSchedule;
use gfl_sim::{Task, Topology};
use std::hint::black_box;

fn build(secure: bool) -> (Trainer, Vec<Vec<usize>>) {
    let data = SyntheticSpec::vision_like().generate(3_000, 1);
    let (train, test) = data.split_holdout(6);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 30,
            alpha: 0.1,
            min_size: 20,
            max_size: 120,
            seed: 1,
        },
    );
    let topology = Topology::even_split(2, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 5,
            max_cov: 0.5,
        },
        &topology,
        &partition.label_matrix,
        1,
    );
    let config = GroupFelConfig {
        global_rounds: 1,
        group_rounds: 5,
        local_rounds: 2,
        sampled_groups: 3,
        batch_size: 32,
        lr: LrSchedule::Constant(0.08),
        weighting: AggregationWeighting::Stabilized,
        eval_every: 1,
        seed: 1,
        task: Task::Vision,
        cost_budget: None,
        secure_aggregation: secure,
        dropout_prob: 0.0,
    };
    (
        Trainer::new(config, gfl_nn::zoo::vision_model(), train, partition, test),
        groups,
    )
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_global_round");
    group.sample_size(10);

    let (trainer, groups) = build(false);
    group.bench_function(BenchmarkId::new("strategy", "FedAvg"), |b| {
        b.iter(|| black_box(trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov)));
    });
    group.bench_function(BenchmarkId::new("strategy", "FedProx"), |b| {
        b.iter(|| black_box(trainer.run(&groups, &FedProx { mu: 0.1 }, SamplingStrategy::ESRCov)));
    });
    group.bench_function(BenchmarkId::new("strategy", "SCAFFOLD"), |b| {
        b.iter(|| {
            let s = Scaffold::new(
                trainer.model().param_len(),
                trainer.partition().num_clients(),
            );
            black_box(trainer.run(&groups, &s, SamplingStrategy::ESRCov))
        });
    });

    let (secure_trainer, secure_groups) = build(true);
    group.bench_function(BenchmarkId::new("strategy", "FedAvg+realSecAgg"), |b| {
        b.iter(|| black_box(secure_trainer.run(&secure_groups, &FedAvg, SamplingStrategy::ESRCov)));
    });
    group.finish();
}

/// A paper_vision-shaped world: §7.2's K=5, E=2, 12 sampled groups,
/// batch 32, on the vision model — scaled to 60 clients / 3 edges so one
/// global round is a realistic (not toy) unit of work.
fn build_paper_scale() -> (Trainer, Vec<Vec<usize>>) {
    let data = SyntheticSpec::vision_like().generate(6_000, 1);
    let (train, test) = data.split_holdout(6);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 60,
            alpha: 0.1,
            min_size: 20,
            max_size: 160,
            seed: 1,
        },
    );
    let topology = Topology::even_split(3, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 5,
            max_cov: 0.5,
        },
        &topology,
        &partition.label_matrix,
        1,
    );
    let mut config = GroupFelConfig::paper_vision();
    config.global_rounds = 1;
    config.cost_budget = None;
    config.eval_every = 1;
    config.seed = 1;
    (
        Trainer::new(config, gfl_nn::zoo::vision_model(), train, partition, test),
        groups,
    )
}

/// One paper-shaped global round across worker-thread counts. Results are
/// bit-identical for every count (see `crates/core/tests/determinism.rs`);
/// only the wall clock moves.
fn bench_paper_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_vision_round");
    group.sample_size(10);
    let (trainer, groups) = build_paper_scale();
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            gfl_parallel::set_default_parallelism(threads);
            b.iter(|| black_box(trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov)));
        });
    }
    gfl_parallel::set_default_parallelism(0);
    group.finish();
}

criterion_group!(benches, bench_round, bench_paper_scale);
criterion_main!(benches);
