//! Line 13 — the local-update kernel: one forward/backward pass per
//! minibatch for both task models, plus evaluation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gfl_data::SyntheticSpec;
use gfl_tensor::init;
use std::hint::black_box;

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_update_kernel");
    // The paper-faithful 5-layer CNN kernel (cnn_speech extension).
    {
        let net = gfl_nn::zoo::speech_cnn();
        let data = SyntheticSpec::speech_like().generate(64, 3);
        let params = net.init_params(&mut init::rng(4));
        let mut grad = vec![0.0f32; net.param_len()];
        let mut ws = net.workspace();
        let batch: Vec<usize> = (0..32).collect();
        let mb = data.batch(&batch);
        group.throughput(Throughput::Elements(32));
        group.bench_function(BenchmarkId::new("loss_and_grad_b32", "speech_cnn"), |b| {
            b.iter(|| {
                black_box(net.loss_and_grad(&params, &mb.features, &mb.labels, &mut grad, &mut ws))
            });
        });
    }
    for (name, model, spec) in [
        (
            "vision",
            gfl_nn::zoo::vision_model(),
            SyntheticSpec::vision_like(),
        ),
        (
            "speech",
            gfl_nn::zoo::speech_model(),
            SyntheticSpec::speech_like(),
        ),
    ] {
        let data = spec.generate(256, 1);
        let params = model.init_params(&mut init::rng(2));
        let mut grad = vec![0.0f32; model.param_len()];
        let mut ws = model.workspace();
        let batch: Vec<usize> = (0..32).collect();
        let mb = data.batch(&batch);
        group.throughput(Throughput::Elements(32));
        group.bench_function(BenchmarkId::new("loss_and_grad_b32", name), |b| {
            b.iter(|| {
                black_box(model.loss_and_grad(
                    &params,
                    &mb.features,
                    &mb.labels,
                    &mut grad,
                    &mut ws,
                ))
            });
        });
        group.throughput(Throughput::Elements(256));
        group.bench_function(BenchmarkId::new("evaluate_256", name), |b| {
            b.iter(|| black_box(model.evaluate(&params, data.features(), data.labels())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
