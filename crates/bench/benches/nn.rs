//! Line 13 — the local-update kernel: one forward/backward pass per
//! minibatch for both task models, plus evaluation throughput, plus the
//! SIMD microkernels (dot/gemm) those passes bottleneck on, measured once
//! per dispatch tier this machine supports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gfl_data::SyntheticSpec;
use gfl_tensor::{init, simd};
use std::hint::black_box;

/// Deterministic non-zero fill for kernel operands.
fn filled(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// The forward/backward GEMM and dot microkernels on the paper workload's
/// layer shapes (batch 32–512 × feature width 256–784), once per SIMD
/// tier. Criterion reports per-iteration time; `Throughput::Elements` is
/// set to the FLOP count so the HTML/CLI output reads as FLOP/s, making
/// the scalar-vs-SIMD ratio directly visible per shape.
fn bench_simd_kernels(c: &mut Criterion) {
    let shapes: [(usize, usize, usize); 4] = [
        // (batch m, out n, in k) — vision first layer, speech first layer,
        // a deep/narrow hidden layer, and the widest eval batch.
        (32, 256, 784),
        (64, 256, 512),
        (128, 128, 256),
        (512, 256, 784),
    ];
    let mut group = c.benchmark_group("simd_kernels");
    for tier in simd::supported_tiers() {
        let prev = simd::set_tier(tier);
        for &(m, n, k) in &shapes {
            let a = filled(m * k, 1);
            let b = filled(n * k, 2);
            let mut out = vec![0.0f32; m * n];
            let flops = 2 * m * n * k;
            group.throughput(Throughput::Elements(flops as u64));
            group.bench_function(
                BenchmarkId::new(format!("gemm_nt_{}", tier.name()), format!("{m}x{n}x{k}")),
                |bch| {
                    bch.iter(|| {
                        simd::gemm_nt(black_box(&a), black_box(&b), &mut out, m, n, k);
                        black_box(&out);
                    })
                },
            );
            // Backward weight gradient: ∇W = ∇Yᵀ·X with the ReLU zero-skip
            // (~half the activations are zero, as in training).
            let mut act = filled(m * n, 3);
            for (i, v) in act.iter_mut().enumerate() {
                if i % 2 == 0 {
                    *v = 0.0;
                }
            }
            let x = filled(m * k, 4);
            let mut gw = vec![0.0f32; n * k];
            group.bench_function(
                BenchmarkId::new(format!("gemm_tn_{}", tier.name()), format!("{m}x{n}x{k}")),
                |bch| {
                    bch.iter(|| {
                        simd::gemm_tn(black_box(&act), black_box(&x), &mut gw, m, n, k);
                        black_box(&gw);
                    })
                },
            );
        }
        let x = filled(784, 5);
        let y = filled(784, 6);
        group.throughput(Throughput::Elements(2 * 784));
        group.bench_function(BenchmarkId::new("dot", tier.name()), |bch| {
            bch.iter(|| black_box(simd::dot(black_box(&x), black_box(&y))))
        });
        simd::set_tier(prev);
    }
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_update_kernel");
    // The paper-faithful 5-layer CNN kernel (cnn_speech extension).
    {
        let net = gfl_nn::zoo::speech_cnn();
        let data = SyntheticSpec::speech_like().generate(64, 3);
        let params = net.init_params(&mut init::rng(4));
        let mut grad = vec![0.0f32; net.param_len()];
        let mut ws = net.workspace();
        let batch: Vec<usize> = (0..32).collect();
        let mb = data.batch(&batch);
        group.throughput(Throughput::Elements(32));
        group.bench_function(BenchmarkId::new("loss_and_grad_b32", "speech_cnn"), |b| {
            b.iter(|| {
                black_box(net.loss_and_grad(&params, &mb.features, &mb.labels, &mut grad, &mut ws))
            });
        });
    }
    for (name, model, spec) in [
        (
            "vision",
            gfl_nn::zoo::vision_model(),
            SyntheticSpec::vision_like(),
        ),
        (
            "speech",
            gfl_nn::zoo::speech_model(),
            SyntheticSpec::speech_like(),
        ),
    ] {
        let data = spec.generate(256, 1);
        let params = model.init_params(&mut init::rng(2));
        let mut grad = vec![0.0f32; model.param_len()];
        let mut ws = model.workspace();
        let batch: Vec<usize> = (0..32).collect();
        let mb = data.batch(&batch);
        group.throughput(Throughput::Elements(32));
        group.bench_function(BenchmarkId::new("loss_and_grad_b32", name), |b| {
            b.iter(|| {
                black_box(model.loss_and_grad(
                    &params,
                    &mb.features,
                    &mb.labels,
                    &mut grad,
                    &mut ws,
                ))
            });
        });
        group.throughput(Throughput::Elements(256));
        group.bench_function(BenchmarkId::new("evaluate_256", name), |b| {
            b.iter(|| black_box(model.evaluate(&params, data.features(), data.labels())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nn, bench_simd_kernels);
criterion_main!(benches);
