//! §6 machinery — Eq. 34 probability computation, without-replacement
//! sampling, and the three aggregation-weighting kernels (Line 15, Eq. 4,
//! Eq. 35) plus the weighted-sum aggregation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfl_bench::random_vectors;
use gfl_core::sampling::{
    aggregation_weights, sample_without_replacement, AggregationWeighting, SamplingStrategy,
};
use gfl_tensor::{init, ops};
use rand::Rng;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let mut rng = init::rng(3);
    let covs: Vec<f32> = (0..240).map(|_| rng.gen_range(0.05..2.0)).collect();

    let mut group = c.benchmark_group("eq34_sampling");
    for strat in [
        SamplingStrategy::Random,
        SamplingStrategy::RCov,
        SamplingStrategy::SRCov,
        SamplingStrategy::ESRCov,
    ] {
        group.bench_function(BenchmarkId::new("probabilities", strat.name()), |b| {
            b.iter(|| black_box(strat.probabilities(&covs)));
        });
    }
    let p = SamplingStrategy::ESRCov.probabilities(&covs);
    group.bench_function("sample_12_of_240", |b| {
        b.iter(|| {
            let mut r = init::rng(7);
            black_box(sample_without_replacement(&mut r, &p, 12))
        });
    });
    group.finish();

    let mut group = c.benchmark_group("aggregation");
    let sizes: Vec<usize> = (0..12).map(|i| 300 + i * 40).collect();
    let probs = vec![1.0 / 12.0f32; 12];
    for (name, w) in [
        ("standard", AggregationWeighting::Standard),
        ("unbiased", AggregationWeighting::Unbiased),
        ("stabilized", AggregationWeighting::Stabilized),
    ] {
        group.bench_function(BenchmarkId::new("weights", name), |b| {
            b.iter(|| black_box(aggregation_weights(w, &sizes, &probs, 30_000)));
        });
    }
    // Global aggregation over 12 group models of vision-model size.
    let dim = gfl_nn::zoo::vision_model().param_len();
    let models = random_vectors(12, dim, 9);
    let weights = aggregation_weights(AggregationWeighting::Standard, &sizes, &probs, 30_000);
    let mut out = vec![0.0f32; dim];
    group.bench_function("weighted_sum_12_models", |b| {
        b.iter(|| {
            let views: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
            ops::weighted_sum_into(&views, &weights, &mut out);
            black_box(out[0])
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
