//! Allocation guard for the observability layer.
//!
//! The engine's instrumentation is `Option`-gated: with no collector
//! attached every instrument site is `None.map(..)` — no clock reads, no
//! span pushes, no allocation. This test pins that down with a counting
//! global allocator: warm steady-state rounds with tracing disabled must
//! allocate *exactly* the same number of times run over run (any hidden
//! per-round growth or disabled-path bookkeeping would break equality),
//! and the traced run's extra allocations must stay bounded.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gfl_core::engine::{form_groups_per_edge, GroupFelConfig, Trainer};
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::sampling::SamplingStrategy;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_sim::Topology;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn tiny_world() -> (Trainer, Vec<Vec<usize>>) {
    let data = SyntheticSpec::tiny().generate(600, 5);
    let (train, test) = data.split_holdout(5);
    let partition = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, 5));
    let topology = Topology::even_split(2, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 2,
            max_cov: 1.0,
        },
        &topology,
        &partition.label_matrix,
        5,
    );
    let mut config = GroupFelConfig::tiny();
    config.seed = 5;
    (
        Trainer::new(config, gfl_nn::zoo::tiny(4, 3), train, partition, test),
        groups,
    )
}

fn allocs_of(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Hard per-round allocation budget for the warm engine.
///
/// After a warm-up leg has seeded every pool (local-training scratch,
/// group parameter/slot/member buffers, evaluation workspaces), a
/// steady-state round of `run_resumable` — including its per-round
/// evaluation at `eval_every = 1` — must stay within this many heap
/// allocations. The residue is small unavoidable per-round state
/// (sampling draws, the round's context/outcome vectors, per-group-round
/// unit queues); anything that scales with model size or group membership
/// must come from a pool and trips this gate if it regresses.
const ROUND_ALLOC_BUDGET: u64 = 64;

#[test]
fn steady_state_rounds_fit_the_alloc_budget() {
    gfl_parallel::set_default_parallelism(1);
    let (trainer, groups) = tiny_world();
    let probs = vec![1.0 / groups.len() as f32; groups.len()];
    let mut params = trainer.model().init_params(&mut gfl_tensor::init::rng(5));
    let mut ledger = trainer.ledger_for(&FedAvg);
    let mut history = gfl_core::history::RunHistory::default();

    // Warm-up rounds size every pool; they are excluded from the count.
    trainer.run_resumable(
        &groups,
        &FedAvg,
        &probs,
        &mut params,
        &mut ledger,
        &mut history,
        0,
        3,
    );

    const MEASURED: u64 = 8;
    let allocs = allocs_of(|| {
        trainer.run_resumable(
            &groups,
            &FedAvg,
            &probs,
            &mut params,
            &mut ledger,
            &mut history,
            3,
            MEASURED as usize,
        );
    });
    let per_round = allocs / MEASURED;
    assert!(
        per_round <= ROUND_ALLOC_BUDGET,
        "steady-state rounds allocate too much: {per_round} allocs/round \
         ({allocs} over {MEASURED} rounds), budget {ROUND_ALLOC_BUDGET}"
    );
    gfl_parallel::set_default_parallelism(0);
}

#[test]
fn disabled_tracing_adds_no_allocations_to_the_hot_loop() {
    // Single-threaded so the worker pool does not allocate on its own
    // schedule mid-measurement.
    gfl_parallel::set_default_parallelism(1);
    let (trainer, groups) = tiny_world();

    // Warm-up populates lazily-initialized caches (datasets paged, scratch
    // pools sized); afterwards the untraced loop is in steady state.
    trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    let untraced_a = allocs_of(|| {
        trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    });
    let untraced_b = allocs_of(|| {
        trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    });
    assert_eq!(
        untraced_a, untraced_b,
        "untraced steady-state runs must allocate identically"
    );

    // With a collector attached the run allocates extra (span records, the
    // JSONL buffers are out of scope here) — but the overhead must stay
    // small relative to the workload itself.
    let (t2, groups2) = tiny_world();
    let obs = gfl_obs::TraceCollector::new();
    let traced_trainer = t2.with_observer(std::sync::Arc::clone(&obs));
    traced_trainer.run(&groups2, &FedAvg, SamplingStrategy::ESRCov);
    let traced = allocs_of(|| {
        traced_trainer.run(&groups2, &FedAvg, SamplingStrategy::ESRCov);
    });
    assert!(
        traced < untraced_a * 2 + 10_000,
        "tracing overhead exploded: {traced} allocs vs {untraced_a} untraced"
    );
    gfl_parallel::set_default_parallelism(0);
}
