//! Shared fixtures for the criterion benchmarks.
//!
//! Figure/table ↔ bench mapping (see DESIGN.md §3):
//! * `grouping` — Fig. 5 (grouping runtime vs client count, all four
//!   algorithms) and the Fig. 6 quality sweep's hot path.
//! * `cov` — Eq. 27 evaluation and the Algorithm-2 inner loop primitive.
//! * `secagg` — Fig. 2(a)/Fig. 8 SecAgg scaling (mask + unmask + dropout).
//! * `defense` — Fig. 2(a)/Fig. 8 backdoor-detection scaling.
//! * `sampling_agg` — Eq. 34 probabilities, without-replacement draws, and
//!   the Line-15/Eq.-4/Eq.-35 weighting kernels (Fig. 7 / §6.2 machinery).
//! * `nn` — local-update kernel (Line 13): forward/backward per batch.
//! * `training_round` — one full Algorithm-1 global round, the unit the
//!   accuracy figures (2b, 9–12, Table 1) integrate over.

use gfl_data::LabelMatrix;
use gfl_tensor::init;
use rand::Rng;

/// Skewed per-client label histograms like the paper's Dirichlet clients.
pub fn skewed_labels(clients: usize, labels: usize, seed: u64) -> LabelMatrix {
    let mut rng = init::rng(seed);
    LabelMatrix::new(
        (0..clients)
            .map(|_| {
                let hot = rng.gen_range(0..labels);
                (0..labels)
                    .map(|l| {
                        if l == hot {
                            rng.gen_range(20..120)
                        } else if rng.gen_bool(0.3) {
                            rng.gen_range(0..10)
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect(),
        labels,
    )
}

/// Random dense vectors for aggregation/masking benches.
pub fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = init::rng(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect()
}
