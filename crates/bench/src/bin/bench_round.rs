//! Standalone perf harness for the training hot path.
//!
//! Runs a paper_vision-shaped workload (§7.2: K=5, E=2, 12 sampled groups,
//! batch 32, vision model) for a few global rounds at each worker-thread
//! count, measuring rounds/sec and heap allocations per round via a
//! counting global allocator, then writes the results to
//! `BENCH_ROUND.json` (and stdout).
//!
//! Usage: `cargo run --release -p gfl-bench --bin bench_round [-- --rounds N]`
//!
//! Results are bit-identical across thread counts by construction (see
//! `crates/core/tests/determinism.rs`); this harness only measures time
//! and allocation pressure. The report records the machine's core count —
//! thread-scaling numbers are only meaningful when cores >= threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gfl_core::engine::{form_groups_per_edge, GroupFelConfig, Trainer};
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::prelude::{FaultPlan, FaultPolicy};
use gfl_core::sampling::SamplingStrategy;
use gfl_core::semi_async::AsyncConfig;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_sim::Topology;

/// Counts every allocation and reallocation on top of the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn build_paper_scale(rounds: usize) -> (Trainer, Vec<Vec<usize>>, Topology) {
    let data = SyntheticSpec::vision_like().generate(6_000, 1);
    let (train, test) = data.split_holdout(6);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 60,
            alpha: 0.1,
            min_size: 20,
            max_size: 160,
            seed: 1,
        },
    );
    let topology = Topology::even_split(3, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 5,
            max_cov: 0.5,
        },
        &topology,
        &partition.label_matrix,
        1,
    );
    let mut config = GroupFelConfig::paper_vision();
    config.global_rounds = rounds;
    config.cost_budget = None;
    config.eval_every = rounds; // evaluate once, not per round
    config.seed = 1;
    (
        Trainer::new(config, gfl_nn::zoo::vision_model(), train, partition, test),
        groups,
        topology,
    )
}

/// Runs the same workload through the event-driven scheduler under a
/// straggler plan (a quarter of the fleet slowed 8×) and returns the
/// final emulated clock — wait-for-all vs quorum-or-deadline
/// (docs/ASYNC.md). Deterministic, so the clocks are exact, not sampled.
fn emulated_clock_s(rounds: usize, policy: FaultPolicy) -> f64 {
    let (trainer, groups, topology) = build_paper_scale(rounds);
    let plan = FaultPlan {
        seed: 1,
        straggler_fraction: 0.25,
        straggler_factor: 8.0,
        straggler_jitter: 0.25,
        ..FaultPlan::none()
    };
    let trainer = trainer.with_faults(plan, policy, &topology);
    let (_, _, report) = trainer.run_semi_async(
        &groups,
        &FedAvg,
        SamplingStrategy::ESRCov,
        &AsyncConfig::default(),
    );
    report.final_clock_s()
}

fn main() {
    let mut rounds = 3usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--rounds" => {
                rounds = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds needs a positive integer");
            }
            other => panic!("unknown argument '{other}' (supported: --rounds N)"),
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Expose the counting allocator to the observability layer so traced
    // runs report allocs/round from the same counter this harness uses.
    gfl_obs::alloc::register_alloc_counter(|| ALLOCS.load(Ordering::Relaxed));
    let (trainer, groups, _) = build_paper_scale(rounds);
    let param_count = trainer.model().param_len();

    // Warm-up: populate scratch pools, page in the dataset.
    gfl_parallel::set_default_parallelism(1);
    let reference = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);

    let mut results = Vec::new();
    let mut per_rounds: Vec<f64> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        gfl_parallel::set_default_parallelism(threads);
        let alloc_start = ALLOCS.load(Ordering::Relaxed);
        let pool_start = gfl_parallel::stats::snapshot();
        let t0 = Instant::now();
        let h = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        let secs = t0.elapsed().as_secs_f64();
        let allocs = ALLOCS.load(Ordering::Relaxed) - alloc_start;
        let pool = gfl_parallel::stats::snapshot().since(pool_start);
        assert_eq!(h, reference, "thread count changed the result");
        let per_round = secs / rounds as f64;
        eprintln!(
            "threads={threads:2}  {:7.3} s/round  {:9.4} rounds/s  {:8} allocs/round  pool util {:5.1}%  steals {}",
            per_round,
            1.0 / per_round,
            allocs / rounds as u64,
            pool.utilization() * 100.0,
            pool.steals
        );
        results.push(serde_json::json!({
            "threads": threads,
            "seconds_per_round": per_round,
            "rounds_per_sec": 1.0 / per_round,
            "allocs_per_round": allocs / rounds as u64,
            "pool_utilization": pool.utilization(),
            "pool_regions": pool.regions,
            "pool_claims": pool.claims,
            "pool_steals": pool.steals,
        }));
        per_rounds.push(per_round);
    }
    // Emulated wall-clock under stragglers: the same workload closed
    // wait-for-all vs quorum-or-deadline through the semi-async runtime.
    let clock_sync = emulated_clock_s(
        rounds,
        FaultPolicy {
            quorum_fraction: 1.0,
            deadline_factor: 0.0,
            ..FaultPolicy::default()
        },
    );
    let clock_semi = emulated_clock_s(
        rounds,
        FaultPolicy {
            quorum_fraction: 0.8,
            deadline_factor: 2.5,
            ..FaultPolicy::default()
        },
    );
    eprintln!(
        "emulated clock under 8x stragglers: sync {:.1} s/round, semi-async {:.1} s/round ({:.2}x)",
        clock_sync / rounds as f64,
        clock_semi / rounds as f64,
        clock_sync / clock_semi
    );
    gfl_parallel::set_default_parallelism(0);

    let report = serde_json::json!({
        "workload": "paper_vision-shaped: 60 clients / 3 edges, K=5, E=2, 12 sampled groups, batch 32, vision model",
        "param_count": param_count,
        "rounds_measured": rounds,
        "cores": cores,
        "results": results,
        "speedup_8_vs_1_threads": per_rounds[0] / per_rounds[3],
        "emulated_clock": serde_json::json!({
            "plan": "straggler_fraction 0.25, straggler_factor 8.0, jitter 0.25 (docs/ASYNC.md)",
            "sync_clock_s_per_round": clock_sync / rounds as f64,
            "semi_async_clock_s_per_round": clock_semi / rounds as f64,
            "semi_async_speedup": clock_sync / clock_semi,
        }),
        "note": "results are bit-identical across thread counts; speedup only materializes when cores >= threads",
    });
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_ROUND.json", format!("{pretty}\n")).expect("write BENCH_ROUND.json");
    println!("{pretty}");
}
