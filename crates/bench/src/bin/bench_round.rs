//! Standalone perf harness for the training hot path.
//!
//! Runs a paper_vision-shaped workload (§7.2: K=5, E=2, 12 sampled groups,
//! batch 32, vision model) for a few global rounds at each worker-thread
//! count, measuring rounds/sec and heap allocations per round via a
//! counting global allocator, then writes the results to
//! `BENCH_ROUND.json` (and stdout).
//!
//! Usage: `cargo run --release -p gfl-bench --bin bench_round [-- --rounds N]`
//!
//! Results are bit-identical across thread counts by construction (see
//! `crates/core/tests/determinism.rs`); this harness only measures time
//! and allocation pressure. The report records the machine's core count —
//! thread-scaling numbers are only meaningful when cores >= threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gfl_core::engine::{form_groups_per_edge, GroupFelConfig, Trainer};
use gfl_core::grouping::CovGrouping;
use gfl_core::local::FedAvg;
use gfl_core::prelude::{FaultPlan, FaultPolicy};
use gfl_core::sampling::SamplingStrategy;
use gfl_core::semi_async::AsyncConfig;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_sim::Topology;

/// Counts every allocation and reallocation on top of the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn build_paper_scale(rounds: usize) -> (Trainer, Vec<Vec<usize>>, Topology) {
    let data = SyntheticSpec::vision_like().generate(6_000, 1);
    let (train, test) = data.split_holdout(6);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 60,
            alpha: 0.1,
            min_size: 20,
            max_size: 160,
            seed: 1,
        },
    );
    let topology = Topology::even_split(3, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 5,
            max_cov: 0.5,
        },
        &topology,
        &partition.label_matrix,
        1,
    );
    let mut config = GroupFelConfig::paper_vision();
    config.global_rounds = rounds;
    config.cost_budget = None;
    config.eval_every = rounds; // evaluate once, not per round
    config.seed = 1;
    (
        Trainer::new(config, gfl_nn::zoo::vision_model(), train, partition, test),
        groups,
        topology,
    )
}

/// Deterministic non-zero fill for GEMM operands.
fn filled(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Single-threaded `gemm_nt` GFLOP/s on a paper-shaped layer (batch 256 ×
/// 256 outputs × 784 inputs), once per SIMD tier this machine supports.
/// Returns the per-tier rows plus the detected-best-tier-over-scalar
/// throughput ratio — the number the SIMD microkernels are accountable to.
fn gemm_gflops_per_tier() -> (Vec<serde_json::Value>, Option<f64>) {
    use gfl_tensor::simd;
    let (m, n, k) = (256usize, 256usize, 784usize);
    let a = filled(m * k, 1);
    let b = filled(n * k, 2);
    let mut out = vec![0.0f32; m * n];
    let flops = (2 * m * n * k) as f64;
    let active = simd::active_tier();
    let mut rows = Vec::new();
    let mut scalar_gflops = None;
    let mut active_gflops = None;
    for tier in simd::supported_tiers() {
        let prev = simd::set_tier(tier);
        // Calibrate the iteration count to ~150 ms per rep, then take the
        // best of three reps to shave scheduler noise.
        let t0 = Instant::now();
        simd::gemm_nt(&a, &b, &mut out, m, n, k);
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.15 / dt).ceil() as usize).clamp(1, 100_000);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            for _ in 0..iters {
                simd::gemm_nt(&a, &b, &mut out, m, n, k);
            }
            best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
        }
        std::hint::black_box(&out);
        simd::set_tier(prev);
        let gflops = flops / best / 1e9;
        eprintln!(
            "gemm_nt 256x256x784 [{:>6}]: {gflops:6.2} GFLOP/s",
            tier.name()
        );
        if tier == simd::SimdTier::Scalar {
            scalar_gflops = Some(gflops);
        }
        if tier == active {
            active_gflops = Some(gflops);
        }
        rows.push(serde_json::json!({
            "tier": tier.name(),
            "gemm_gflops": gflops,
            "seconds_per_gemm": best,
        }));
    }
    let ratio = match (scalar_gflops, active_gflops) {
        (Some(s), Some(a)) if s > 0.0 => Some(a / s),
        _ => None,
    };
    (rows, ratio)
}

/// Runs the same workload through the event-driven scheduler under a
/// straggler plan (a quarter of the fleet slowed 8×) and returns the
/// final emulated clock — wait-for-all vs quorum-or-deadline
/// (docs/ASYNC.md). Deterministic, so the clocks are exact, not sampled.
fn emulated_clock_s(rounds: usize, policy: FaultPolicy) -> f64 {
    let (trainer, groups, topology) = build_paper_scale(rounds);
    let plan = FaultPlan {
        seed: 1,
        straggler_fraction: 0.25,
        straggler_factor: 8.0,
        straggler_jitter: 0.25,
        ..FaultPlan::none()
    };
    let trainer = trainer.with_faults(plan, policy, &topology);
    let (_, _, report) = trainer.run_semi_async(
        &groups,
        &FedAvg,
        SamplingStrategy::ESRCov,
        &AsyncConfig::default(),
    );
    report.final_clock_s()
}

fn main() {
    let mut rounds = 3usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--rounds" => {
                rounds = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds needs a positive integer");
            }
            other => panic!("unknown argument '{other}' (supported: --rounds N)"),
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Expose the counting allocator to the observability layer so traced
    // runs report allocs/round from the same counter this harness uses.
    gfl_obs::alloc::register_alloc_counter(|| ALLOCS.load(Ordering::Relaxed));
    let (trainer, groups, _) = build_paper_scale(rounds);
    let param_count = trainer.model().param_len();

    // Warm-up: populate scratch pools, page in the dataset.
    gfl_parallel::set_default_parallelism(1);
    let reference = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);

    let mut results = Vec::new();
    let mut per_rounds: Vec<f64> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        gfl_parallel::set_default_parallelism(threads);
        let alloc_start = ALLOCS.load(Ordering::Relaxed);
        let pool_start = gfl_parallel::stats::snapshot();
        let t0 = Instant::now();
        let h = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        let secs = t0.elapsed().as_secs_f64();
        let allocs = ALLOCS.load(Ordering::Relaxed) - alloc_start;
        let pool = gfl_parallel::stats::snapshot().since(pool_start);
        assert_eq!(h, reference, "thread count changed the result");
        let per_round = secs / rounds as f64;
        // A timing row is only an honest scaling datum when the machine
        // actually has a core per worker thread.
        let reliable = cores >= threads;
        eprintln!(
            "threads={threads:2}  {:7.3} s/round  {:9.4} rounds/s  {:8} allocs/round  pool util {:5.1}%  steals {}{}",
            per_round,
            1.0 / per_round,
            allocs / rounds as u64,
            pool.utilization() * 100.0,
            pool.steals,
            if reliable { "" } else { "  [unreliable: threads > cores]" }
        );
        results.push(serde_json::json!({
            "threads": threads,
            "cores": cores,
            "reliable": reliable,
            "seconds_per_round": per_round,
            "rounds_per_sec": 1.0 / per_round,
            "allocs_per_round": allocs / rounds as u64,
            "pool_utilization": pool.utilization(),
            "pool_regions": pool.regions,
            "pool_claims": pool.claims,
            "pool_steals": pool.steals,
        }));
        per_rounds.push(per_round);
    }
    // Emulated wall-clock under stragglers: the same workload closed
    // wait-for-all vs quorum-or-deadline through the semi-async runtime.
    let clock_sync = emulated_clock_s(
        rounds,
        FaultPolicy {
            quorum_fraction: 1.0,
            deadline_factor: 0.0,
            ..FaultPolicy::default()
        },
    );
    let clock_semi = emulated_clock_s(
        rounds,
        FaultPolicy {
            quorum_fraction: 0.8,
            deadline_factor: 2.5,
            ..FaultPolicy::default()
        },
    );
    eprintln!(
        "emulated clock under 8x stragglers: sync {:.1} s/round, semi-async {:.1} s/round ({:.2}x)",
        clock_sync / rounds as f64,
        clock_semi / rounds as f64,
        clock_sync / clock_semi
    );
    gfl_parallel::set_default_parallelism(0);

    // SIMD microkernel throughput, per dispatch tier, single-threaded.
    let (simd_tiers, simd_speedup) = gemm_gflops_per_tier();

    // Honest scaling summary: the 8-vs-1 speedup is only reported when the
    // 8-thread row was measured with 8 real cores behind it.
    let speedup_8_vs_1 = (cores >= 8).then(|| per_rounds[0] / per_rounds[3]);
    if speedup_8_vs_1.is_none() {
        eprintln!(
            "warning: only {cores} core(s) available; rows with threads > cores are \
             oversubscribed and no 8-vs-1 thread-scaling speedup is reported"
        );
    }

    let report = serde_json::json!({
        "workload": "paper_vision-shaped: 60 clients / 3 edges, K=5, E=2, 12 sampled groups, batch 32, vision model",
        "param_count": param_count,
        "rounds_measured": rounds,
        "cores": cores,
        "results": results,
        "speedup_8_vs_1_threads": speedup_8_vs_1,
        "speedup_warning": if speedup_8_vs_1.is_none() {
            Some(format!(
                "machine has {cores} core(s); speedup_8_vs_1_threads requires >= 8 \
                 (rows with reliable=false are oversubscribed)"
            ))
        } else {
            None
        },
        "simd": serde_json::json!({
            "workload": "gemm_nt 256x256x784 f32, single thread",
            "active_tier": gfl_tensor::simd::active_tier().name(),
            "tiers": simd_tiers,
            "speedup_vs_scalar": simd_speedup,
        }),
        "emulated_clock": serde_json::json!({
            "plan": "straggler_fraction 0.25, straggler_factor 8.0, jitter 0.25 (docs/ASYNC.md)",
            "sync_clock_s_per_round": clock_sync / rounds as f64,
            "semi_async_clock_s_per_round": clock_semi / rounds as f64,
            "semi_async_speedup": clock_sync / clock_semi,
        }),
        "note": "results are bit-identical across thread counts; speedup only materializes when cores >= threads",
    });
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_ROUND.json", format!("{pretty}\n")).expect("write BENCH_ROUND.json");
    println!("{pretty}");
}
