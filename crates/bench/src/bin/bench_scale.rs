//! Million-client scale harness: measures virtual-population build, stream
//! group formation, and one churn regroup tick at 10⁶ paper_vision-shaped
//! clients, then merges a `scale` section into `BENCH_ROUND.json` so
//! `gfl-trace regress --max-formation-seconds` can *gate* the sub-second
//! formation claim instead of asserting it in prose (docs/SCALE.md).
//!
//! Unlike `bench_round` (which owns the file and overwrites it), this
//! binary read-modify-writes: every section `bench_round` produced is
//! preserved, only `scale` is replaced. Run order in CI is therefore
//! irrelevant as long as `bench_round` runs first when both run.
//!
//! `GFL_SCALE_CLIENTS` overrides the population size (default 1_000_000)
//! for quick local iteration; the emitted key names stay `*_1m` because
//! the regress gate keys on them — the actual size is recorded alongside.

use std::time::Instant;

use gfl_core::prelude::*;
use gfl_data::{VirtualPopulation, VirtualSpec};
use gfl_faults::ChurnPlan;
use gfl_sim::Topology;

fn main() {
    let clients: usize = std::env::var("GFL_SCALE_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let seed = 1u64;

    let t0 = Instant::now();
    let pop = VirtualPopulation::new(VirtualSpec::paper_vision(clients, 0.1, seed));
    let build_s = t0.elapsed().as_secs_f64();

    let sizes: Vec<usize> = (0..pop.num_clients()).map(|c| pop.client_size(c)).collect();
    let topo = Topology::even_split(8, sizes);
    let algo = StreamGrouping { group_size: 8 };

    // Formation: the paper's Fig. 5 quantity, over the full population.
    let t0 = Instant::now();
    let groups = form_groups_per_edge(&algo, &topo, pop.label_matrix(), seed);
    let formation_s = t0.elapsed().as_secs_f64();
    assert!(
        groups.len() >= clients / 16,
        "stream formation collapsed: {} groups for {clients} clients",
        groups.len()
    );

    // Regroup: one apply_churn + heal tick at moderate churn rates — at
    // 10⁶ clients a round sees ~2 000 departures and ~1 000 greedy
    // arrival placements, plus heal's full degradation sweep. A zero
    // cooldown lets heal repair immediately. This exercises the
    // incremental GroupStats path (and the per-edge candidate index)
    // end to end.
    let plan = ChurnPlan {
        seed: seed ^ 0x5CA1E,
        horizon: 50,
        departure_fraction: 0.1,
        arrival_fraction: 0.05,
        flap_prob: 0.0,
    };
    let policy = RegroupPolicy {
        cooldown: 0,
        ..RegroupPolicy::default()
    };
    let mut membership = MembershipState::form(
        &algo,
        &topo,
        pop.label_matrix(),
        Some(&plan),
        policy,
        seed,
        SamplingStrategy::ESRCov,
        0,
    )
    .expect("initial membership partition");

    let t0 = Instant::now();
    let churn_events = membership.apply_churn(&plan, 1, pop.label_matrix(), &topo);
    let heal_events = membership
        .heal(
            1,
            pop.label_matrix(),
            &algo,
            &topo,
            seed,
            SamplingStrategy::ESRCov,
        )
        .expect("heal pass");
    let regroup_s = t0.elapsed().as_secs_f64();
    assert!(
        !churn_events.is_empty(),
        "churn tick was a no-op; the regroup timing would measure nothing"
    );

    let scale = serde_json::json!({
        "workload": "paper_vision-shaped virtual population, 8 edges, stream grouping (group_size 8)",
        "clients": clients,
        "groups_formed": groups.len(),
        "population_build_seconds_1m": build_s,
        "formation_seconds_1m": formation_s,
        "regroup_seconds_1m": regroup_s,
        "regroup_events": churn_events.len() + heal_events.len(),
        "note": "formation_seconds_1m and regroup_seconds_1m are gated sub-second by `gfl-trace regress --max-formation-seconds` in CI's scale-smoke job",
    });

    let mut report: serde_json::Value = std::fs::read_to_string("BENCH_ROUND.json")
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!({}));
    match &mut report {
        serde_json::Value::Object(pairs) => {
            pairs.retain(|(k, _)| k != "scale");
            pairs.push(("scale".to_string(), scale));
        }
        _ => panic!("BENCH_ROUND.json must hold a JSON object"),
    }
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_ROUND.json", format!("{pretty}\n")).expect("write BENCH_ROUND.json");

    println!(
        "scale: {clients} clients — build {build_s:.3}s, formation {formation_s:.3}s \
         ({} groups), regroup {regroup_s:.3}s ({} events)",
        groups.len(),
        churn_events.len() + heal_events.len()
    );
}
