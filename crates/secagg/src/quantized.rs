//! Fixed-point secure aggregation — the faithful arithmetic of Bonawitz et
//! al., where masking happens in a modular integer ring so cancellation is
//! *bit-exact* rather than up to f32 rounding.
//!
//! Clients quantize their f32 updates to `i64` fixed-point with a shared
//! scale, add pairwise PRG masks modulo `2^48`, and the server's modular
//! sum recovers exactly `Σ round(x_i · scale)`. The only error left is the
//! deterministic quantization error, bounded by `n / (2·scale)` per
//! coordinate for an `n`-client group.
//!
//! The float pipeline in [`crate::SecAggSession`] is what the training
//! engine uses (simpler, error ≪ SGD noise); this module exists because a
//! deployment-grade release needs the exact path, and because tests can
//! assert *equality*, not just closeness.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Modulus `2^48`: leaves headroom for sums of thousands of 32-bit
/// fixed-point values without wrap-around ambiguity.
const MODULUS: u64 = 1 << 48;

/// Fixed-point codec shared by a session's clients.
#[derive(Debug, Clone, Copy)]
pub struct FixedPoint {
    /// Multiplicative scale; `2^16` gives ~4.7 decimal digits.
    pub scale: f64,
    /// Values are clamped to ±`clamp` before quantization.
    pub clamp: f64,
}

impl Default for FixedPoint {
    fn default() -> Self {
        Self {
            scale: 65536.0,
            clamp: 1024.0,
        }
    }
}

impl FixedPoint {
    /// Quantizes one float to the ring.
    pub fn encode(&self, x: f32) -> u64 {
        let clamped = f64::from(x).clamp(-self.clamp, self.clamp);
        let q = (clamped * self.scale).round() as i64;
        q.rem_euclid(MODULUS as i64) as u64
    }

    /// Decodes a ring element that represents a (possibly summed) value,
    /// interpreting the upper half of the ring as negative.
    pub fn decode(&self, v: u64) -> f32 {
        let v = v % MODULUS;
        let signed = if v >= MODULUS / 2 {
            v as i64 - MODULUS as i64
        } else {
            v as i64
        };
        (signed as f64 / self.scale) as f32
    }

    /// Encodes a whole vector.
    pub fn encode_vec(&self, xs: &[f32]) -> Vec<u64> {
        xs.iter().map(|&x| self.encode(x)).collect()
    }

    /// Decodes a whole vector.
    pub fn decode_vec(&self, vs: &[u64]) -> Vec<f32> {
        vs.iter().map(|&v| self.decode(v)).collect()
    }
}

/// One exact secure-aggregation session over the ring.
#[derive(Debug, Clone)]
pub struct ExactSecAgg {
    members: Vec<u32>,
    dim: usize,
    session_seed: u64,
    codec: FixedPoint,
}

impl ExactSecAgg {
    pub fn new(members: Vec<u32>, dim: usize, session_seed: u64) -> Self {
        assert!(!members.is_empty(), "empty group");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "duplicate member ids");
        Self {
            members,
            dim,
            session_seed,
            codec: FixedPoint::default(),
        }
    }

    pub fn codec(&self) -> FixedPoint {
        self.codec
    }

    fn pair_seed(&self, a: u32, b: u32) -> u64 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let mut z = self
            .session_seed
            .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(1 + lo as u64))
            .wrapping_add(0xBF58476D1CE4E5B9u64.wrapping_mul(1 + hi as u64));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn pair_mask(&self, a: u32, b: u32) -> Vec<u64> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.pair_seed(a, b));
        (0..self.dim).map(|_| rng.gen::<u64>() % MODULUS).collect()
    }

    /// Client-side: quantize + mask.
    pub fn mask(&self, client: u32, update: &[f32]) -> Vec<u64> {
        assert!(self.members.contains(&client), "client not in session");
        assert_eq!(update.len(), self.dim, "dimension mismatch");
        let mut masked = self.codec.encode_vec(update);
        for &peer in &self.members {
            if peer == client {
                continue;
            }
            let mask = self.pair_mask(client, peer);
            if client < peer {
                for (m, &mk) in masked.iter_mut().zip(mask.iter()) {
                    *m = (*m + mk) % MODULUS;
                }
            } else {
                for (m, &mk) in masked.iter_mut().zip(mask.iter()) {
                    *m = (*m + MODULUS - mk) % MODULUS;
                }
            }
        }
        masked
    }

    /// Server-side: modular sum + dropout mask recovery + decode.
    ///
    /// Returns exactly `Σ_{i ∈ survivors} dequant(quant(x_i))`.
    pub fn unmask_sum(&self, survivors: &[u32], masked: &[Vec<u64>]) -> Vec<f32> {
        assert_eq!(survivors.len(), masked.len(), "roster mismatch");
        let mut sum = vec![0u64; self.dim];
        for m in masked {
            assert_eq!(m.len(), self.dim);
            for (s, &v) in sum.iter_mut().zip(m.iter()) {
                *s = (*s + v) % MODULUS;
            }
        }
        for &d in self.members.iter().filter(|m| !survivors.contains(m)) {
            for &s in survivors {
                let mask = self.pair_mask(d, s);
                // Survivor s applied +mask if s < d, else −mask; cancel it.
                if s < d {
                    for (acc, &mk) in sum.iter_mut().zip(mask.iter()) {
                        *acc = (*acc + MODULUS - mk) % MODULUS;
                    }
                } else {
                    for (acc, &mk) in sum.iter_mut().zip(mask.iter()) {
                        *acc = (*acc + mk) % MODULUS;
                    }
                }
            }
        }
        self.codec.decode_vec(&sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip_within_quantization_error() {
        let c = FixedPoint::default();
        for x in [-3.25f32, 0.0, 0.5, 100.125, -999.9] {
            let err = (c.decode(c.encode(x)) - x).abs();
            assert!(err <= 1.0 / 65536.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn clamping_applies() {
        let c = FixedPoint::default();
        assert!((c.decode(c.encode(1e9)) - 1024.0).abs() < 1e-3);
        assert!((c.decode(c.encode(-1e9)) + 1024.0).abs() < 1e-3);
    }

    #[test]
    fn exact_sum_equals_sum_of_quantized_values() {
        let dim = 17;
        let n = 5u32;
        let session = ExactSecAgg::new((0..n).collect(), dim, 9);
        let codec = session.codec();
        let updates: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| (i as f32 - 2.0) * 0.1 + j as f32 * 0.01)
                    .collect()
            })
            .collect();
        let masked: Vec<Vec<u64>> = updates
            .iter()
            .enumerate()
            .map(|(i, u)| session.mask(i as u32, u))
            .collect();
        let sum = session.unmask_sum(&(0..n).collect::<Vec<_>>(), &masked);
        // Bit-exact against the quantized plain sum.
        for j in 0..dim {
            let want: f64 = updates
                .iter()
                .map(|u| f64::from(codec.decode(codec.encode(u[j]))))
                .sum();
            assert!(
                (f64::from(sum[j]) - want).abs() < 1e-9,
                "coord {j}: {} vs {want}",
                sum[j]
            );
        }
    }

    #[test]
    fn dropout_recovery_is_exact() {
        let dim = 9;
        let session = ExactSecAgg::new(vec![0, 1, 2, 3, 4], dim, 11);
        let codec = session.codec();
        let updates: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32 * 0.25 - 0.5; dim]).collect();
        let masked: Vec<Vec<u64>> = updates
            .iter()
            .enumerate()
            .map(|(i, u)| session.mask(i as u32, u))
            .collect();
        let survivors = vec![0u32, 2, 4];
        let masked_surv: Vec<Vec<u64>> = survivors
            .iter()
            .map(|&s| masked[s as usize].clone())
            .collect();
        let sum = session.unmask_sum(&survivors, &masked_surv);
        for j in 0..dim {
            let want: f64 = survivors
                .iter()
                .map(|&s| f64::from(codec.decode(codec.encode(updates[s as usize][j]))))
                .sum();
            assert!((f64::from(sum[j]) - want).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_values_survive_the_ring() {
        let session = ExactSecAgg::new(vec![0, 1], 3, 13);
        let a = vec![-1.5f32, -0.25, -100.0];
        let b = vec![0.5f32, 0.25, 50.0];
        let masked = vec![session.mask(0, &a), session.mask(1, &b)];
        let sum = session.unmask_sum(&[0, 1], &masked);
        assert!((sum[0] + 1.0).abs() < 1e-4);
        assert!(sum[1].abs() < 1e-4);
        assert!((sum[2] + 50.0).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn prop_exact_cancellation(
            dim in 1usize..24,
            n in 2u32..8,
            seed in 0u64..1000,
            raw in proptest::collection::vec(-50.0f32..50.0, 1..192),
        ) {
            let session = ExactSecAgg::new((0..n).collect(), dim, seed);
            let codec = session.codec();
            let updates: Vec<Vec<f32>> = (0..n as usize)
                .map(|i| (0..dim).map(|j| raw[(i * dim + j) % raw.len()]).collect())
                .collect();
            let masked: Vec<Vec<u64>> = updates
                .iter()
                .enumerate()
                .map(|(i, u)| session.mask(i as u32, u))
                .collect();
            let sum = session.unmask_sum(&(0..n).collect::<Vec<_>>(), &masked);
            for j in 0..dim {
                let want: f64 = updates
                    .iter()
                    .map(|u| f64::from(codec.decode(codec.encode(u[j]))))
                    .sum();
                // The ring arithmetic is exact; the only slack needed is the
                // final f64→f32 cast of the decoded sum.
                let tol = 1e-6 * (1.0 + want.abs());
                prop_assert!((f64::from(sum[j]) - want).abs() < tol);
            }
        }
    }
}
