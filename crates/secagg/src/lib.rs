//! Pairwise-masking secure aggregation (Bonawitz et al., CCS'17 — simplified
//! to the honest-but-curious core).
//!
//! This is the group operation whose **quadratic per-group cost** motivates
//! the whole paper: Fig. 2(a)/Fig. 8 show SecAgg time growing quadratically
//! in group size and dwarfing training time on edge devices. We implement
//! the protocol's arithmetic for real so that (a) the group aggregation in
//! the simulator can actually run privately-summed updates end to end, and
//! (b) operation counters empirically certify the O(|g|²·d) total cost that
//! `gfl-sim`'s analytic model assumes.
//!
//! ## Protocol (one round, dimension d, group g)
//!
//! 1. Every ordered pair `i < j` shares a pairwise seed `s_ij` (derived here
//!    from a session seed; a deployment would run Diffie–Hellman — the
//!    asymptotics per client, |g|−1 key agreements, are identical).
//! 2. Client `i` sends `y_i = x_i + Σ_{j>i} PRG(s_ij) − Σ_{j<i} PRG(s_ji)`.
//! 3. The server sums the `y_i`; all masks cancel pairwise, leaving `Σ x_i`.
//! 4. **Dropouts:** if a client drops after masks were applied, survivors
//!    reveal their pairwise seeds with the dropped client (stand-in for the
//!    Shamir-share recovery of the full protocol) and the server subtracts
//!    the orphaned masks.
//!
//! Masks are generated in f32 from a ChaCha8 PRG. Exact real-number
//! cancellation holds because both sides generate bit-identical mask
//! streams; summation order of the server is fixed (client id order) so the
//! unmasked sum is deterministic.

pub mod quantized;

pub use quantized::{ExactSecAgg, FixedPoint};

use gfl_tensor::Scalar;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Client identifier within a secure-aggregation session.
pub type ClientId = u32;

/// Work counters used to validate the cost model empirically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecAggCost {
    /// Pairwise PRG mask expansions performed (each costs O(d)).
    pub prg_expansions: u64,
    /// Scalar additions performed on vectors of length d.
    pub vector_adds: u64,
    /// Pairwise key agreements performed.
    pub key_agreements: u64,
}

impl SecAggCost {
    /// Total scalar operations implied, for dimension `d`.
    pub fn scalar_ops(&self, d: usize) -> u64 {
        (self.prg_expansions + self.vector_adds) * d as u64
    }

    fn merge(&mut self, other: SecAggCost) {
        self.prg_expansions += other.prg_expansions;
        self.vector_adds += other.vector_adds;
        self.key_agreements += other.key_agreements;
    }
}

/// One secure-aggregation session over a fixed group roster.
#[derive(Debug, Clone)]
pub struct SecAggSession {
    members: Vec<ClientId>,
    dim: usize,
    session_seed: u64,
    mask_scale: Scalar,
}

impl SecAggSession {
    /// Creates a session for `members` aggregating vectors of length `dim`.
    ///
    /// # Panics
    /// Panics on duplicate members or an empty roster.
    pub fn new(members: Vec<ClientId>, dim: usize, session_seed: u64) -> Self {
        assert!(!members.is_empty(), "empty secure-aggregation group");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "duplicate member ids");
        Self {
            members,
            dim,
            session_seed,
            // Masks are drawn U(-scale, scale); large enough to hide typical
            // gradient coordinates, small enough to keep f32 cancellation
            // exact (values well inside the 24-bit mantissa range).
            mask_scale: 64.0,
        }
    }

    pub fn members(&self) -> &[ClientId] {
        &self.members
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The pairwise seed for the unordered pair `{a, b}`.
    fn pair_seed(&self, a: ClientId, b: ClientId) -> u64 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // SplitMix-style mixing of (session, lo, hi).
        let mut z = self
            .session_seed
            .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(1 + lo as u64))
            .wrapping_add(0xBF58476D1CE4E5B9u64.wrapping_mul(1 + hi as u64));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Expands the pairwise mask vector for `{a, b}`.
    fn pair_mask(&self, a: ClientId, b: ClientId) -> Vec<Scalar> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.pair_seed(a, b));
        (0..self.dim)
            .map(|_| rng.gen_range(-self.mask_scale..self.mask_scale))
            .collect()
    }

    /// Client-side masking: returns `x + Σ_{j>i} m_ij − Σ_{j<i} m_ji` and
    /// the client's work counters.
    ///
    /// # Panics
    /// Panics if `client` is not a member or `update` has the wrong length.
    pub fn mask(&self, client: ClientId, update: &[Scalar]) -> (Vec<Scalar>, SecAggCost) {
        assert!(
            self.members.contains(&client),
            "client {client} not in session"
        );
        assert_eq!(update.len(), self.dim, "update dimension mismatch");
        let mut masked = update.to_vec();
        let mut cost = SecAggCost {
            // One key agreement per peer, performed at session setup in the
            // real protocol; accounted to the masking client here.
            key_agreements: (self.members.len() - 1) as u64,
            ..SecAggCost::default()
        };
        for &peer in &self.members {
            if peer == client {
                continue;
            }
            let mask = self.pair_mask(client, peer);
            cost.prg_expansions += 1;
            cost.vector_adds += 1;
            let sign = if client < peer { 1.0 } else { -1.0 };
            gfl_tensor::ops::axpy(sign, &mask, &mut masked);
        }
        (masked, cost)
    }

    /// Server-side aggregation of masked updates from `survivors`.
    ///
    /// `masked` must align with `survivors`. Members missing from
    /// `survivors` are treated as dropouts: their orphaned pairwise masks
    /// (with every survivor) are reconstructed and cancelled.
    ///
    /// Returns the exact sum `Σ_{i ∈ survivors} x_i` plus server cost.
    pub fn unmask_sum(
        &self,
        survivors: &[ClientId],
        masked: &[Vec<Scalar>],
    ) -> (Vec<Scalar>, SecAggCost) {
        assert_eq!(survivors.len(), masked.len(), "roster/update mismatch");
        for s in survivors {
            assert!(self.members.contains(s), "survivor {s} not a member");
        }
        let mut sum = vec![0.0; self.dim];
        let mut cost = SecAggCost::default();
        for m in masked {
            assert_eq!(m.len(), self.dim, "masked update dimension");
            gfl_tensor::ops::add_assign(m, &mut sum);
            cost.vector_adds += 1;
        }
        // Cancel masks involving dropped members.
        let dropped: Vec<ClientId> = self
            .members
            .iter()
            .copied()
            .filter(|m| !survivors.contains(m))
            .collect();
        for &d in &dropped {
            for &s in survivors {
                let mask = self.pair_mask(d, s);
                cost.prg_expansions += 1;
                cost.vector_adds += 1;
                // Survivor s applied sign(s, d); subtract that contribution.
                let sign_applied = if s < d { 1.0 } else { -1.0 };
                gfl_tensor::ops::axpy(-sign_applied, &mask, &mut sum);
            }
        }
        (sum, cost)
    }

    /// Runs the whole round for convenience: masks every member's update and
    /// unmasks the sum, returning `(sum, total_cost)`. `updates[k]` belongs
    /// to `self.members()[k]`.
    pub fn aggregate(&self, updates: &[Vec<Scalar>]) -> (Vec<Scalar>, SecAggCost) {
        assert_eq!(updates.len(), self.members.len(), "one update per member");
        let mut total = SecAggCost::default();
        let mut masked = Vec::with_capacity(updates.len());
        for (&client, update) in self.members.iter().zip(updates.iter()) {
            let (m, c) = self.mask(client, update);
            total.merge(c);
            masked.push(m);
        }
        let (sum, c) = self.unmask_sum(&self.members.clone(), &masked);
        total.merge(c);
        (sum, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_sum(updates: &[Vec<f32>]) -> Vec<f32> {
        let mut sum = vec![0.0; updates[0].len()];
        for u in updates {
            gfl_tensor::ops::add_assign(u, &mut sum);
        }
        sum
    }

    fn toy_updates(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn masks_cancel_exactly() {
        let n = 5;
        let d = 33;
        let updates = toy_updates(n, d, 1);
        let session = SecAggSession::new((0..n as u32).collect(), d, 99);
        let (sum, _) = session.aggregate(&updates);
        let want = plain_sum(&updates);
        for (a, b) in sum.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn masked_update_hides_plaintext() {
        let d = 16;
        let updates = toy_updates(3, d, 2);
        let session = SecAggSession::new(vec![0, 1, 2], d, 7);
        let (masked, _) = session.mask(0, &updates[0]);
        // The masked vector must differ substantially from the plaintext.
        let dist: f32 = masked
            .iter()
            .zip(updates[0].iter())
            .map(|(m, x)| (m - x).abs())
            .sum();
        assert!(dist > 1.0, "mask looks degenerate: distance {dist}");
    }

    #[test]
    fn single_member_group_is_passthrough() {
        let session = SecAggSession::new(vec![42], 4, 0);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let (masked, cost) = session.mask(42, &x);
        assert_eq!(masked, x, "no peers → no masks");
        assert_eq!(cost.prg_expansions, 0);
        let (sum, _) = session.unmask_sum(&[42], &[masked]);
        assert_eq!(sum, x);
    }

    #[test]
    fn dropout_recovery_yields_survivor_sum() {
        let n = 6;
        let d = 20;
        let updates = toy_updates(n, d, 3);
        let members: Vec<u32> = (0..n as u32).collect();
        let session = SecAggSession::new(members.clone(), d, 5);
        let mut masked = Vec::new();
        for (i, u) in updates.iter().enumerate() {
            masked.push(session.mask(i as u32, u).0);
        }
        // Clients 1 and 4 drop after masking; the server only receives the
        // other four masked updates.
        let survivors: Vec<u32> = vec![0, 2, 3, 5];
        let masked_surv: Vec<Vec<f32>> = survivors
            .iter()
            .map(|&s| masked[s as usize].clone())
            .collect();
        let (sum, _) = session.unmask_sum(&survivors, &masked_surv);
        let want = plain_sum(&[
            updates[0].clone(),
            updates[2].clone(),
            updates[3].clone(),
            updates[5].clone(),
        ]);
        for (a, b) in sum.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn per_client_cost_is_linear_in_group_size_total_quadratic() {
        let d = 8;
        let mut per_client = Vec::new();
        for &n in &[4usize, 8, 16] {
            let updates = toy_updates(n, d, 4);
            let session = SecAggSession::new((0..n as u32).collect(), d, 1);
            let (m, cost) = session.mask(0, &updates[0]);
            assert_eq!(m.len(), d);
            per_client.push(cost.prg_expansions);
            // Full round total is quadratic: n clients × (n−1) expansions.
            let (_, total) = session.aggregate(&updates);
            assert_eq!(total.prg_expansions, (n * (n - 1)) as u64);
        }
        assert_eq!(per_client, vec![3, 7, 15], "per-client = |g|−1");
    }

    #[test]
    fn deterministic_given_session_seed() {
        let updates = toy_updates(4, 10, 6);
        let s1 = SecAggSession::new(vec![0, 1, 2, 3], 10, 11);
        let s2 = SecAggSession::new(vec![0, 1, 2, 3], 10, 11);
        assert_eq!(s1.mask(2, &updates[2]).0, s2.mask(2, &updates[2]).0);
        let s3 = SecAggSession::new(vec![0, 1, 2, 3], 10, 12);
        assert_ne!(s1.mask(2, &updates[2]).0, s3.mask(2, &updates[2]).0);
    }

    #[test]
    #[should_panic(expected = "duplicate member ids")]
    fn duplicate_members_panic() {
        SecAggSession::new(vec![1, 1], 4, 0);
    }

    #[test]
    #[should_panic(expected = "not in session")]
    fn foreign_client_panics() {
        let s = SecAggSession::new(vec![0, 1], 4, 0);
        s.mask(9, &[0.0; 4]);
    }
}
