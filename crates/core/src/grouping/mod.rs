//! Group-formation algorithms (§5 and the baselines it compares against).
//!
//! All algorithms consume only a [`LabelMatrix`] — per-client label
//! histograms — never raw data, models, or gradients (§5.1's privacy
//! boundary). Each returns a partition of `0..labels.num_clients()` into
//! mutually exclusive groups (Constraint 32).
//!
//! | Algorithm | Paper | Criterion |
//! |---|---|---|
//! | [`CovGrouping`] | §5.3, Alg. 2 | greedy CoV minimization |
//! | [`RandomGrouping`] | RG baseline | none |
//! | [`CdgGrouping`] | OUEA [13] | cluster similar clients, then distribute |
//! | [`KldGrouping`] | SHARE [14] | greedy KL(group ‖ global) minimization |

mod cdg;
mod cov_grouping;
mod kldg;
pub mod optimal;
mod random;
mod variance;

pub use cdg::CdgGrouping;
pub use cov_grouping::CovGrouping;
pub use kldg::KldGrouping;
pub use optimal::optimal_grouping;
pub use random::RandomGrouping;
pub use variance::VarianceGrouping;

use gfl_data::LabelMatrix;
use gfl_tensor::init::GflRng;

use crate::Group;

/// A client-grouping policy run by each edge server.
pub trait GroupingAlgorithm: Send + Sync {
    /// Human-readable name for experiment reports.
    fn name(&self) -> &'static str;

    /// Partitions clients `0..labels.num_clients()` into groups.
    ///
    /// Implementations must return a true partition: every client in
    /// exactly one group, no empty groups (unless there are no clients).
    fn form_groups(&self, labels: &LabelMatrix, rng: &mut GflRng) -> Vec<Group>;
}

/// Asserts `groups` is a partition of `0..n` (test/debug helper, also used
/// by the engine in debug builds).
pub fn validate_partition(groups: &[Group], n: usize) {
    let mut seen = vec![false; n];
    for g in groups {
        assert!(!g.is_empty(), "empty group in partition");
        for &c in g {
            assert!(c < n, "client {c} out of range");
            assert!(!seen[c], "client {c} in two groups");
            seen[c] = true;
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "some client missing from the partition"
    );
}

#[cfg(test)]
pub(crate) mod test_support {
    use gfl_data::LabelMatrix;
    use gfl_tensor::init::{self, GflRng};
    use rand::Rng;

    /// A skewed label matrix: each client holds mostly one label.
    pub fn skewed_matrix(clients: usize, labels: usize, seed: u64) -> LabelMatrix {
        let mut rng: GflRng = init::rng(seed);
        let counts = (0..clients)
            .map(|_| {
                let hot = rng.gen_range(0..labels);
                (0..labels)
                    .map(|l| {
                        if l == hot {
                            rng.gen_range(20..60)
                        } else if rng.gen_bool(0.3) {
                            rng.gen_range(0..5)
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect();
        LabelMatrix::new(counts, labels)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gfl_tensor::init;
    use proptest::prelude::*;

    /// Arbitrary small label matrix: 1–24 clients × 2–8 labels, counts
    /// 0–40, with every client guaranteed at least one sample.
    fn arb_label_matrix() -> impl Strategy<Value = LabelMatrix> {
        (1usize..24, 2usize..8).prop_flat_map(|(clients, labels)| {
            proptest::collection::vec(proptest::collection::vec(0u32..40, labels), clients)
                .prop_map(move |mut counts| {
                    for (i, row) in counts.iter_mut().enumerate() {
                        if row.iter().all(|&c| c == 0) {
                            row[i % labels] = 1;
                        }
                    }
                    LabelMatrix::new(counts, labels)
                })
        })
    }

    fn all_algorithms() -> Vec<Box<dyn GroupingAlgorithm>> {
        vec![
            Box::new(RandomGrouping { group_size: 4 }),
            Box::new(CovGrouping {
                min_group_size: 3,
                max_cov: 0.5,
            }),
            Box::new(CovGrouping {
                min_group_size: 1,
                max_cov: f32::INFINITY,
            }),
            Box::new(CdgGrouping {
                group_size: 4,
                kmeans_iters: 4,
            }),
            Box::new(KldGrouping { group_size: 4 }),
            Box::new(VarianceGrouping {
                min_group_size: 3,
                max_variance: 20.0,
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Constraint 32: every algorithm returns a true partition of the
        /// client set, for arbitrary label matrices and seeds.
        #[test]
        fn prop_every_algorithm_partitions(
            labels in arb_label_matrix(),
            seed in 0u64..64,
        ) {
            for algo in all_algorithms() {
                let groups = algo.form_groups(&labels, &mut init::rng(seed));
                validate_partition(&groups, labels.num_clients());
            }
        }

        /// The greedy CoV grouping never produces more than one group
        /// below MinGS (only the final leftover may be undersized).
        #[test]
        fn prop_cov_grouping_min_size(
            labels in arb_label_matrix(),
            seed in 0u64..64,
        ) {
            let algo = CovGrouping { min_group_size: 3, max_cov: 0.4 };
            let groups = algo.form_groups(&labels, &mut init::rng(seed));
            let undersized = groups.iter().filter(|g| g.len() < 3).count();
            prop_assert!(undersized <= 1, "{groups:?}");
        }

        /// Grouping output is a pure function of (matrix, seed).
        #[test]
        fn prop_grouping_is_deterministic(
            labels in arb_label_matrix(),
            seed in 0u64..64,
        ) {
            for algo in all_algorithms() {
                let a = algo.form_groups(&labels, &mut init::rng(seed));
                let b = algo.form_groups(&labels, &mut init::rng(seed));
                prop_assert_eq!(a, b, "{} not deterministic", algo.name());
            }
        }

        /// The partition conserves total sample mass: the union of group
        /// histograms equals the population histogram.
        #[test]
        fn prop_partition_conserves_mass(
            labels in arb_label_matrix(),
            seed in 0u64..32,
        ) {
            let all: Vec<usize> = (0..labels.num_clients()).collect();
            let population = labels.group_histogram(&all);
            for algo in all_algorithms() {
                let groups = algo.form_groups(&labels, &mut init::rng(seed));
                let mut merged = vec![0u64; labels.num_labels()];
                for g in &groups {
                    for (m, h) in merged.iter_mut().zip(labels.group_histogram(g)) {
                        *m += h;
                    }
                }
                prop_assert_eq!(&merged, &population);
            }
        }
    }
}
