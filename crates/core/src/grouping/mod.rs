//! Group-formation algorithms (§5 and the baselines it compares against).
//!
//! All algorithms consume only a [`LabelMatrix`] — per-client label
//! histograms — never raw data, models, or gradients (§5.1's privacy
//! boundary). Each returns a partition of `0..labels.num_clients()` into
//! mutually exclusive groups (Constraint 32).
//!
//! | Algorithm | Paper | Criterion |
//! |---|---|---|
//! | [`CovGrouping`] | §5.3, Alg. 2 | greedy CoV minimization |
//! | [`RandomGrouping`] | RG baseline | none |
//! | [`CdgGrouping`] | OUEA [13] | cluster similar clients, then distribute |
//! | [`KldGrouping`] | SHARE [14] | greedy KL(group ‖ global) minimization |

mod cdg;
mod cov_grouping;
pub mod incremental;
mod kldg;
pub mod optimal;
mod random;
mod stream;
mod variance;

pub use cdg::CdgGrouping;
pub use cov_grouping::CovGrouping;
pub use incremental::GroupStats;
pub use kldg::KldGrouping;
pub use optimal::optimal_grouping;
pub use random::RandomGrouping;
pub use stream::StreamGrouping;
pub use variance::{histogram_variance, VarianceGrouping};

use gfl_data::LabelMatrix;
use gfl_tensor::init::GflRng;

use crate::Group;

/// A client-grouping policy run by each edge server.
pub trait GroupingAlgorithm: Send + Sync {
    /// Human-readable name for experiment reports.
    fn name(&self) -> &'static str;

    /// Partitions clients `0..labels.num_clients()` into groups.
    ///
    /// Implementations must return a true partition: every client in
    /// exactly one group, no empty groups (unless there are no clients).
    fn form_groups(&self, labels: &LabelMatrix, rng: &mut GflRng) -> Vec<Group>;
}

/// Why a candidate partition is not a true partition of the client set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// A group has no members.
    EmptyGroup { group: usize },
    /// A member id is `>= n`.
    OutOfRange { client: usize },
    /// A client appears in two groups.
    Duplicate { client: usize },
    /// A client appears in no group.
    Missing { client: usize },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::EmptyGroup { group } => write!(f, "group {group} is empty"),
            PartitionError::OutOfRange { client } => write!(f, "client {client} out of range"),
            PartitionError::Duplicate { client } => write!(f, "client {client} in two groups"),
            PartitionError::Missing { client } => {
                write!(f, "client {client} missing from the partition")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Checks that `groups` is a partition of `0..n`: every client in exactly
/// one group, no empty groups. Used by tests and by the self-healing
/// membership layer, which must surface a structured error instead of
/// crashing a long-running session on a bad repair.
pub fn validate_partition(groups: &[Group], n: usize) -> Result<(), PartitionError> {
    let mut seen = vec![false; n];
    for (gi, g) in groups.iter().enumerate() {
        if g.is_empty() {
            return Err(PartitionError::EmptyGroup { group: gi });
        }
        for &c in g {
            if c >= n {
                return Err(PartitionError::OutOfRange { client: c });
            }
            if seen[c] {
                return Err(PartitionError::Duplicate { client: c });
            }
            seen[c] = true;
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(PartitionError::Missing { client: missing });
    }
    Ok(())
}

/// [`validate_partition`] restricted to a subset of clients: `members`
/// lists the ids that must be covered exactly once (the self-healing
/// path validates per-edge partitions of the currently-active clients).
pub fn validate_partition_of(
    groups: &[Group],
    members: &[usize],
    n: usize,
) -> Result<(), PartitionError> {
    let mut expected = vec![false; n];
    for &c in members {
        if c >= n {
            return Err(PartitionError::OutOfRange { client: c });
        }
        expected[c] = true;
    }
    let mut seen = vec![false; n];
    for (gi, g) in groups.iter().enumerate() {
        if g.is_empty() {
            return Err(PartitionError::EmptyGroup { group: gi });
        }
        for &c in g {
            if c >= n || !expected[c] {
                return Err(PartitionError::OutOfRange { client: c });
            }
            if seen[c] {
                return Err(PartitionError::Duplicate { client: c });
            }
            seen[c] = true;
        }
    }
    for &c in members {
        if !seen[c] {
            return Err(PartitionError::Missing { client: c });
        }
    }
    Ok(())
}

#[cfg(test)]
mod partition_tests {
    use super::*;

    #[test]
    fn valid_partition_passes() {
        assert_eq!(validate_partition(&[vec![0, 2], vec![1]], 3), Ok(()));
        assert_eq!(validate_partition_of(&[vec![0, 2]], &[0, 2], 3), Ok(()));
    }

    #[test]
    fn each_defect_is_reported() {
        assert_eq!(
            validate_partition(&[vec![0], vec![]], 1),
            Err(PartitionError::EmptyGroup { group: 1 })
        );
        assert_eq!(
            validate_partition(&[vec![0, 5]], 2),
            Err(PartitionError::OutOfRange { client: 5 })
        );
        assert_eq!(
            validate_partition(&[vec![0, 1], vec![1]], 2),
            Err(PartitionError::Duplicate { client: 1 })
        );
        assert_eq!(
            validate_partition(&[vec![0]], 2),
            Err(PartitionError::Missing { client: 1 })
        );
        assert!(validate_partition(&[vec![0]], 2)
            .unwrap_err()
            .to_string()
            .contains("missing"));
    }

    #[test]
    fn subset_validation_tracks_membership() {
        // Client 1 is not a member: covering it is an error, as is
        // skipping member 2.
        assert_eq!(
            validate_partition_of(&[vec![0, 1]], &[0, 2], 3),
            Err(PartitionError::OutOfRange { client: 1 })
        );
        assert_eq!(
            validate_partition_of(&[vec![0]], &[0, 2], 3),
            Err(PartitionError::Missing { client: 2 })
        );
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use gfl_data::LabelMatrix;
    use gfl_tensor::init::{self, GflRng};
    use rand::Rng;

    /// A skewed label matrix: each client holds mostly one label.
    pub fn skewed_matrix(clients: usize, labels: usize, seed: u64) -> LabelMatrix {
        let mut rng: GflRng = init::rng(seed);
        let counts = (0..clients)
            .map(|_| {
                let hot = rng.gen_range(0..labels);
                (0..labels)
                    .map(|l| {
                        if l == hot {
                            rng.gen_range(20..60)
                        } else if rng.gen_bool(0.3) {
                            rng.gen_range(0..5)
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect();
        LabelMatrix::new(counts, labels)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gfl_tensor::init;
    use proptest::prelude::*;

    /// Arbitrary small label matrix: 1–24 clients × 2–8 labels, counts
    /// 0–40, with every client guaranteed at least one sample.
    fn arb_label_matrix() -> impl Strategy<Value = LabelMatrix> {
        (1usize..24, 2usize..8).prop_flat_map(|(clients, labels)| {
            proptest::collection::vec(proptest::collection::vec(0u32..40, labels), clients)
                .prop_map(move |mut counts| {
                    for (i, row) in counts.iter_mut().enumerate() {
                        if row.iter().all(|&c| c == 0) {
                            row[i % labels] = 1;
                        }
                    }
                    LabelMatrix::new(counts, labels)
                })
        })
    }

    fn all_algorithms() -> Vec<Box<dyn GroupingAlgorithm>> {
        vec![
            Box::new(RandomGrouping { group_size: 4 }),
            Box::new(CovGrouping {
                min_group_size: 3,
                max_cov: 0.5,
            }),
            Box::new(CovGrouping {
                min_group_size: 1,
                max_cov: f32::INFINITY,
            }),
            Box::new(CdgGrouping {
                group_size: 4,
                kmeans_iters: 4,
            }),
            Box::new(KldGrouping { group_size: 4 }),
            Box::new(VarianceGrouping {
                min_group_size: 3,
                max_variance: 20.0,
            }),
            Box::new(StreamGrouping { group_size: 4 }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Constraint 32: every algorithm returns a true partition of the
        /// client set, for arbitrary label matrices and seeds.
        #[test]
        fn prop_every_algorithm_partitions(
            labels in arb_label_matrix(),
            seed in 0u64..64,
        ) {
            for algo in all_algorithms() {
                let groups = algo.form_groups(&labels, &mut init::rng(seed));
                prop_assert!(validate_partition(&groups, labels.num_clients()).is_ok());
            }
        }

        /// The greedy CoV grouping never produces more than one group
        /// below MinGS (only the final leftover may be undersized).
        #[test]
        fn prop_cov_grouping_min_size(
            labels in arb_label_matrix(),
            seed in 0u64..64,
        ) {
            let algo = CovGrouping { min_group_size: 3, max_cov: 0.4 };
            let groups = algo.form_groups(&labels, &mut init::rng(seed));
            let undersized = groups.iter().filter(|g| g.len() < 3).count();
            prop_assert!(undersized <= 1, "{groups:?}");
        }

        /// Grouping output is a pure function of (matrix, seed).
        #[test]
        fn prop_grouping_is_deterministic(
            labels in arb_label_matrix(),
            seed in 0u64..64,
        ) {
            for algo in all_algorithms() {
                let a = algo.form_groups(&labels, &mut init::rng(seed));
                let b = algo.form_groups(&labels, &mut init::rng(seed));
                prop_assert_eq!(a, b, "{} not deterministic", algo.name());
            }
        }

        /// The partition conserves total sample mass: the union of group
        /// histograms equals the population histogram.
        #[test]
        fn prop_partition_conserves_mass(
            labels in arb_label_matrix(),
            seed in 0u64..32,
        ) {
            let all: Vec<usize> = (0..labels.num_clients()).collect();
            let population = labels.group_histogram(&all);
            for algo in all_algorithms() {
                let groups = algo.form_groups(&labels, &mut init::rng(seed));
                let mut merged = vec![0u64; labels.num_labels()];
                for g in &groups {
                    for (m, h) in merged.iter_mut().zip(labels.group_histogram(g)) {
                        *m += h;
                    }
                }
                prop_assert_eq!(&merged, &population);
            }
        }
    }
}
