//! Incremental group-statistic maintenance for formation at 10⁶ clients.
//!
//! The formation algorithms and the self-healing membership layer both need
//! a group's CoV/variance/KL after tentative moves, merges, and departures.
//! Recomputing from the member list is O(|g|·m) per query — fine at 300
//! clients, ruinous at 10⁶. [`GroupStats`] instead carries the group's
//! running label-count histogram and updates it in O(m) per membership
//! event.
//!
//! **Zero-ULP invariant:** every metric is evaluated by calling the *same*
//! reference functions the eager paths use — [`histogram_cov`],
//! [`histogram_variance`], and the KLDG distribution + KL pipeline — on the
//! running histogram. Since `u64` count addition is exact, the running
//! histogram is identical (not merely close) to a from-scratch
//! [`LabelMatrix::group_histogram`], so the derived floats are bit-for-bit
//! equal to a full recompute. The property suite in
//! `crates/core/tests/incremental.rs` pins this with `to_bits()` equality
//! over arbitrary move/merge/departure traces.

use gfl_data::LabelMatrix;
use gfl_tensor::Scalar;

use super::kldg::to_distribution;
use super::variance::histogram_variance;
use crate::cov::{self, histogram_cov};

/// Running label-count statistics for one group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupStats {
    hist: Vec<u64>,
    members: usize,
}

impl GroupStats {
    /// An empty group over `num_labels` labels.
    pub fn new(num_labels: usize) -> Self {
        Self {
            hist: vec![0; num_labels],
            members: 0,
        }
    }

    /// Stats for an existing member list — the "full recompute" the
    /// incremental updates must stay equal to.
    pub fn from_members(labels: &LabelMatrix, members: &[usize]) -> Self {
        Self {
            hist: labels.group_histogram(members),
            members: members.len(),
        }
    }

    /// Adds client `c`: O(m).
    pub fn add(&mut self, labels: &LabelMatrix, c: usize) {
        labels.add_client_into(c, &mut self.hist);
        self.members += 1;
    }

    /// Removes client `c` (must currently be counted): O(m).
    pub fn remove(&mut self, labels: &LabelMatrix, c: usize) {
        debug_assert!(self.members > 0, "remove from empty group");
        labels.remove_client_from(c, &mut self.hist);
        self.members -= 1;
    }

    /// Merges `other` into `self`: O(m).
    pub fn merge(&mut self, other: &GroupStats) {
        debug_assert_eq!(self.hist.len(), other.hist.len());
        for (h, o) in self.hist.iter_mut().zip(other.hist.iter()) {
            *h += o;
        }
        self.members += other.members;
    }

    /// Number of member clients.
    pub fn len(&self) -> usize {
        self.members
    }

    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// The running combined label histogram.
    pub fn hist(&self) -> &[u64] {
        &self.hist
    }

    /// Total sample count across the group.
    pub fn total(&self) -> u64 {
        self.hist.iter().sum()
    }

    /// CoV of the group — same bits as `histogram_cov(group_histogram(..))`.
    pub fn cov(&self) -> Scalar {
        histogram_cov(&self.hist)
    }

    /// Raw variance — same bits as the `variance.rs` oracle.
    pub fn variance(&self) -> Scalar {
        histogram_variance(&self.hist)
    }

    /// `KL(group ‖ global)` through the exact KLDG pipeline.
    pub fn kl_vs(&self, global: &[Scalar]) -> Scalar {
        let p = to_distribution(&self.hist);
        gfl_tensor::stats::kl_divergence(&p, global, 1e-9)
    }

    /// CoV after hypothetically adding `candidate`, without mutating.
    pub fn cov_with_candidate(&self, labels: &LabelMatrix, candidate: usize) -> Scalar {
        cov::cov_with_candidate(labels, &self.hist, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::test_support::skewed_matrix;

    #[test]
    fn incremental_add_matches_full_recompute_bitwise() {
        let labels = skewed_matrix(20, 5, 3);
        let mut stats = GroupStats::new(5);
        let mut members = Vec::new();
        for c in [3usize, 7, 11, 0, 19] {
            stats.add(&labels, c);
            members.push(c);
            let full = GroupStats::from_members(&labels, &members);
            assert_eq!(stats, full);
            assert_eq!(stats.cov().to_bits(), full.cov().to_bits());
            assert_eq!(stats.variance().to_bits(), full.variance().to_bits());
        }
    }

    #[test]
    fn remove_reverses_add_exactly() {
        let labels = skewed_matrix(12, 4, 5);
        let mut stats = GroupStats::from_members(&labels, &[1, 4, 6, 9]);
        let before = stats.clone();
        stats.add(&labels, 2);
        stats.remove(&labels, 2);
        assert_eq!(stats, before);
    }

    #[test]
    fn merge_equals_union() {
        let labels = skewed_matrix(16, 4, 7);
        let mut a = GroupStats::from_members(&labels, &[0, 1, 2]);
        let b = GroupStats::from_members(&labels, &[5, 9]);
        a.merge(&b);
        let union = GroupStats::from_members(&labels, &[0, 1, 2, 5, 9]);
        assert_eq!(a, union);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn candidate_preview_matches_commit() {
        let labels = skewed_matrix(10, 3, 9);
        let mut stats = GroupStats::from_members(&labels, &[0, 4]);
        let preview = stats.cov_with_candidate(&labels, 7);
        stats.add(&labels, 7);
        assert_eq!(preview.to_bits(), stats.cov().to_bits());
    }

    #[test]
    fn kl_matches_kldg_pipeline() {
        let labels = skewed_matrix(14, 4, 11);
        let global = labels.global_distribution();
        let members = [2usize, 5, 8];
        let stats = GroupStats::from_members(&labels, &members);
        let hist = labels.group_histogram(&members);
        let p = to_distribution(&hist);
        let want = gfl_tensor::stats::kl_divergence(&p, &global, 1e-9);
        assert_eq!(stats.kl_vs(&global).to_bits(), want.to_bits());
    }
}
