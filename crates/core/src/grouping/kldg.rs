//! KLD Grouping (KLDG) — SHARE's [14] Kullback–Leibler objective ported to
//! group formation.
//!
//! SHARE shapes the data distribution at each edge aggregator by minimizing
//! the KL divergence between the aggregator's combined label distribution
//! and the global one. The port builds groups greedily: each group starts
//! from a random client and repeatedly absorbs the candidate that minimizes
//! `KL(group distribution ‖ global distribution)` until the target size is
//! reached.
//!
//! §5.4 points out why this is the slow baseline of Fig. 5: the candidate
//! scan is the same O(|K|²) shape as CoV-Grouping per group, but every
//! trial must recompute a full KL sum with `ln()` calls over all labels —
//! and because KL against the *global* distribution keeps improving as
//! groups grow, SHARE re-evaluates against all remaining clients each step
//! without CoV's cheap incremental shortcut (its effective complexity is
//! O(|K|⁴·|Y|) in the paper's accounting).

use gfl_data::LabelMatrix;
use gfl_tensor::init::GflRng;
use gfl_tensor::{stats, Scalar};
use rand::Rng;

use crate::Group;

use super::GroupingAlgorithm;

/// SHARE-style grouping.
#[derive(Debug, Clone, Copy)]
pub struct KldGrouping {
    /// Target group size (for fair comparison with the other algorithms).
    pub group_size: usize,
}

impl GroupingAlgorithm for KldGrouping {
    fn name(&self) -> &'static str {
        "KLDG"
    }

    fn form_groups(&self, labels: &LabelMatrix, rng: &mut GflRng) -> Vec<Group> {
        assert!(self.group_size >= 1);
        let n = labels.num_clients();
        if n == 0 {
            return Vec::new();
        }
        let global = labels.global_distribution();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut groups: Vec<Group> = Vec::new();

        while !remaining.is_empty() {
            let seed_pos = rng.gen_range(0..remaining.len());
            let seed = remaining.swap_remove(seed_pos);
            let mut group = vec![seed];
            let mut hist = labels.group_histogram(&group);

            while group.len() < self.group_size && !remaining.is_empty() {
                // Deliberately materializes each candidate distribution and
                // recomputes the full KL (the expensive `ln()`-heavy path
                // §5.4 describes).
                let (best_pos, _) = remaining
                    .iter()
                    .enumerate()
                    .map(|(pos, &c)| {
                        let mut candidate_hist = hist.clone();
                        labels.add_client_into(c, &mut candidate_hist);
                        let p = to_distribution(&candidate_hist);
                        (pos, stats::kl_divergence(&p, &global, 1e-9))
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .expect("remaining non-empty");
                let c = remaining.swap_remove(best_pos);
                labels.add_client_into(c, &mut hist);
                group.push(c);
            }
            groups.push(group);
        }
        // Fold an undersized tail group into its predecessor, mirroring the
        // random baseline's behaviour.
        if groups.len() >= 2 && groups.last().map_or(0, Group::len) < self.group_size {
            let tail = groups.pop().unwrap();
            groups.last_mut().unwrap().extend(tail);
        }
        groups
    }
}

pub(crate) fn to_distribution(hist: &[u64]) -> Vec<Scalar> {
    let floats: Vec<Scalar> = hist.iter().map(|&h| h as Scalar).collect();
    stats::normalize(&floats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cov::mean_group_cov;
    use crate::grouping::{test_support::skewed_matrix, validate_partition, RandomGrouping};
    use gfl_tensor::init;

    #[test]
    fn partitions_everyone() {
        let labels = skewed_matrix(29, 4, 1);
        let groups = KldGrouping { group_size: 5 }.form_groups(&labels, &mut init::rng(2));
        validate_partition(&groups, 29).unwrap();
    }

    #[test]
    fn groups_approach_global_distribution() {
        let counts: Vec<Vec<u32>> = (0..40)
            .map(|i| (0..4).map(|l| if l == i % 4 { 12 } else { 0 }).collect())
            .collect();
        let labels = gfl_data::LabelMatrix::new(counts, 4);
        let groups = KldGrouping { group_size: 4 }.form_groups(&labels, &mut init::rng(3));
        validate_partition(&groups, 40).unwrap();
        let global = labels.global_distribution();
        for g in &groups {
            let hist = labels.group_histogram(g);
            let p = to_distribution(&hist);
            let kl = gfl_tensor::stats::kl_divergence(&p, &global, 1e-9);
            assert!(kl < 0.05, "group {g:?} kl {kl}");
        }
    }

    #[test]
    fn beats_random_on_mean_cov() {
        let labels = skewed_matrix(48, 6, 4);
        let kld = KldGrouping { group_size: 6 }.form_groups(&labels, &mut init::rng(5));
        let rand_groups = RandomGrouping { group_size: 6 }.form_groups(&labels, &mut init::rng(5));
        let kld_cov = mean_group_cov(&labels, &kld);
        let rand_cov = mean_group_cov(&labels, &rand_groups);
        assert!(
            kld_cov < rand_cov,
            "KLDG {kld_cov} should beat RG {rand_cov}"
        );
    }

    #[test]
    fn group_sizes_match_target() {
        let labels = skewed_matrix(30, 4, 6);
        let groups = KldGrouping { group_size: 6 }.form_groups(&labels, &mut init::rng(7));
        assert_eq!(groups.len(), 5);
        assert!(groups.iter().all(|g| g.len() == 6));
    }

    #[test]
    fn undersized_tail_is_folded() {
        let labels = skewed_matrix(32, 4, 8);
        let groups = KldGrouping { group_size: 6 }.form_groups(&labels, &mut init::rng(9));
        // 32 = 6×5 + 2 → tail folded: 5 groups, one of size 8.
        assert_eq!(groups.len(), 5);
        let mut sizes: Vec<usize> = groups.iter().map(Group::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![6, 6, 6, 6, 8]);
    }
}
