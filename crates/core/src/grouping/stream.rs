//! Streaming group formation — O(n·m), the only shape that survives 10⁶
//! clients.
//!
//! CoVG/KLDG/CDG all rescan the remaining-client pool per admission, which
//! is O(n²·m) per edge and minutes of wall clock at a million clients. The
//! streaming algorithm gets the same qualitative objective — groups whose
//! combined label histograms approximate the global mix (low CoV) — with a
//! single pass:
//!
//! 1. bucket clients by *dominant label* (argmax of their histogram),
//! 2. shuffle each bucket once (seeded, for unbiased tie-breaking),
//! 3. build each group by repeatedly admitting a client from the bucket of
//!    the group's currently most-deficient label (the label with the
//!    smallest running count that still has candidates), using
//!    [`GroupStats`] for O(m) bookkeeping per admission,
//! 4. fold an undersized tail group into its predecessor.
//!
//! Step 3 is the CoV-greedy intuition — the candidate that fills the
//! emptiest histogram bin lowers CoV most — restricted to one O(m) argmin
//! instead of an O(n) candidate scan. Formation cost is O(n·m + n log n)
//! total, independent of group count, which is what the `scale-smoke` CI
//! job's sub-second `formation_seconds_1m` gate measures.

use gfl_data::LabelMatrix;
use gfl_tensor::init::GflRng;
use rand::Rng;

use crate::Group;

use super::incremental::GroupStats;
use super::GroupingAlgorithm;

/// Single-pass bucket-and-fill grouping.
#[derive(Debug, Clone, Copy)]
pub struct StreamGrouping {
    /// Target group size.
    pub group_size: usize,
}

impl GroupingAlgorithm for StreamGrouping {
    fn name(&self) -> &'static str {
        "StreamG"
    }

    fn form_groups(&self, labels: &LabelMatrix, rng: &mut GflRng) -> Vec<Group> {
        assert!(self.group_size >= 1);
        let n = labels.num_clients();
        let m = labels.num_labels();
        if n == 0 {
            return Vec::new();
        }

        // 1. Bucket by dominant label (ties -> lowest label id).
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); m];
        for c in 0..n {
            let hist = labels.client(c);
            let mut dominant = 0usize;
            for (l, &count) in hist.iter().enumerate() {
                if count > hist[dominant] {
                    dominant = l;
                }
            }
            buckets[dominant].push(c);
        }

        // 2. One seeded shuffle per bucket. Clients are popped from the
        // back, so shuffling makes admission order uniform within a bucket.
        for bucket in buckets.iter_mut() {
            for i in (1..bucket.len()).rev() {
                let j = rng.gen_range(0..=i);
                bucket.swap(i, j);
            }
        }

        // 3. Fill groups from the most-deficient label's bucket.
        let mut groups: Vec<Group> = Vec::new();
        let mut placed = 0usize;
        while placed < n {
            let mut group = Vec::with_capacity(self.group_size);
            let mut stats = GroupStats::new(m);
            while group.len() < self.group_size && placed < n {
                let hist = stats.hist();
                let mut pick: Option<usize> = None;
                for l in 0..m {
                    if buckets[l].is_empty() {
                        continue;
                    }
                    match pick {
                        None => pick = Some(l),
                        Some(best) if hist[l] < hist[best] => pick = Some(l),
                        Some(_) => {}
                    }
                }
                let bucket = pick.expect("placed < n implies a non-empty bucket");
                let c = buckets[bucket].pop().expect("bucket checked non-empty");
                stats.add(labels, c);
                group.push(c);
                placed += 1;
            }
            groups.push(group);
        }

        // 4. Fold an undersized tail, mirroring RG/KLDG.
        if groups.len() >= 2 && groups.last().map_or(0, Group::len) < self.group_size {
            let tail = groups.pop().unwrap();
            groups.last_mut().unwrap().extend(tail);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cov::mean_group_cov;
    use crate::grouping::{test_support::skewed_matrix, validate_partition, RandomGrouping};
    use gfl_tensor::init;

    #[test]
    fn partitions_everyone() {
        let labels = skewed_matrix(37, 5, 1);
        let groups = StreamGrouping { group_size: 5 }.form_groups(&labels, &mut init::rng(2));
        validate_partition(&groups, 37).unwrap();
    }

    #[test]
    fn is_deterministic() {
        let labels = skewed_matrix(50, 6, 3);
        let a = StreamGrouping { group_size: 6 }.form_groups(&labels, &mut init::rng(4));
        let b = StreamGrouping { group_size: 6 }.form_groups(&labels, &mut init::rng(4));
        assert_eq!(a, b);
    }

    #[test]
    fn beats_random_on_mean_cov() {
        let labels = skewed_matrix(60, 6, 5);
        let stream = StreamGrouping { group_size: 6 }.form_groups(&labels, &mut init::rng(6));
        let random = RandomGrouping { group_size: 6 }.form_groups(&labels, &mut init::rng(6));
        let s = mean_group_cov(&labels, &stream);
        let r = mean_group_cov(&labels, &random);
        assert!(s < r, "StreamG {s} should beat RG {r}");
    }

    #[test]
    fn complementary_clients_are_mixed() {
        // 4 pure-label cliques of 8; every size-4 group should contain all
        // four labels.
        let counts: Vec<Vec<u32>> = (0..32)
            .map(|i| (0..4).map(|l| if l == i % 4 { 10 } else { 0 }).collect())
            .collect();
        let labels = gfl_data::LabelMatrix::new(counts, 4);
        let groups = StreamGrouping { group_size: 4 }.form_groups(&labels, &mut init::rng(7));
        validate_partition(&groups, 32).unwrap();
        for g in &groups {
            let hist = labels.group_histogram(g);
            assert!(hist.iter().all(|&h| h > 0), "group {g:?} hist {hist:?}");
        }
    }

    #[test]
    fn undersized_tail_is_folded() {
        let labels = skewed_matrix(23, 4, 8);
        let groups = StreamGrouping { group_size: 5 }.form_groups(&labels, &mut init::rng(9));
        assert!(groups.iter().all(|g| g.len() >= 5), "{groups:?}");
    }
}
