//! Random grouping (RG) — the null baseline used by FedAvg, FedProx,
//! SCAFFOLD, and (initially) FedCLAR in §7.3.1.

use gfl_data::LabelMatrix;
use gfl_tensor::init::GflRng;
use rand::Rng;

use crate::Group;

use super::GroupingAlgorithm;

/// Shuffles clients and cuts them into consecutive groups of `group_size`;
/// the remainder is folded into the last group (never an undersized
/// straggler group, matching how the paper fixes GS in Fig. 2(b)).
#[derive(Debug, Clone, Copy)]
pub struct RandomGrouping {
    /// Target group size.
    pub group_size: usize,
}

impl GroupingAlgorithm for RandomGrouping {
    fn name(&self) -> &'static str {
        "RG"
    }

    fn form_groups(&self, labels: &LabelMatrix, rng: &mut GflRng) -> Vec<Group> {
        assert!(self.group_size >= 1, "group size must be at least 1");
        let n = labels.num_clients();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut groups: Vec<Group> = order
            .chunks(self.group_size)
            .map(<[usize]>::to_vec)
            .collect();
        // Fold an undersized tail into its predecessor.
        if groups.len() >= 2 && groups.last().map_or(0, Group::len) < self.group_size {
            let tail = groups.pop().unwrap();
            groups.last_mut().unwrap().extend(tail);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{test_support::skewed_matrix, validate_partition};
    use gfl_tensor::init;

    #[test]
    fn partitions_everyone() {
        let labels = skewed_matrix(23, 4, 1);
        let groups = RandomGrouping { group_size: 5 }.form_groups(&labels, &mut init::rng(2));
        validate_partition(&groups, 23).unwrap();
    }

    #[test]
    fn group_sizes_are_target_or_merged_tail() {
        let labels = skewed_matrix(23, 4, 3);
        let groups = RandomGrouping { group_size: 5 }.form_groups(&labels, &mut init::rng(4));
        // 23 = 5+5+5+8
        assert_eq!(groups.len(), 4);
        let mut sizes: Vec<usize> = groups.iter().map(Group::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5, 5, 5, 8]);
    }

    #[test]
    fn exact_division_has_uniform_sizes() {
        let labels = skewed_matrix(20, 4, 5);
        let groups = RandomGrouping { group_size: 5 }.form_groups(&labels, &mut init::rng(6));
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|g| g.len() == 5));
    }

    #[test]
    fn fewer_clients_than_group_size() {
        let labels = skewed_matrix(3, 4, 7);
        let groups = RandomGrouping { group_size: 10 }.form_groups(&labels, &mut init::rng(8));
        assert_eq!(groups.len(), 1);
        validate_partition(&groups, 3).unwrap();
    }

    #[test]
    fn shuffling_depends_on_seed() {
        let labels = skewed_matrix(30, 4, 9);
        let a = RandomGrouping { group_size: 5 }.form_groups(&labels, &mut init::rng(1));
        let b = RandomGrouping { group_size: 5 }.form_groups(&labels, &mut init::rng(2));
        assert_ne!(a, b);
    }
}
