//! Variance-criterion grouping — the alternative §5.1 argues *against*.
//!
//! Identical greedy skeleton to CoV-Grouping, but minimizing the label
//! histogram's raw variance σ²(g) instead of its CoV. The paper's §5.1:
//! "the variance is not suitable as the criterion [because] it is
//! susceptible to the scale of data number ... a group with a smaller
//! total data number but larger data distribution skew may have a smaller
//! variance than a group with more data but smaller distribution skew."
//!
//! This implementation exists to make that argument measurable (see the
//! `ablation_criterion` experiment binary and the unit tests here, which
//! exhibit the exact pathology the paper describes).

use gfl_data::LabelMatrix;
use gfl_tensor::init::GflRng;
use gfl_tensor::Scalar;
use rand::Rng;

use crate::Group;

use super::GroupingAlgorithm;

/// Population variance of a label histogram.
pub fn histogram_variance(hist: &[u64]) -> Scalar {
    let m = hist.len();
    if m == 0 {
        return Scalar::INFINITY;
    }
    let mean = hist.iter().sum::<u64>() as f64 / m as f64;
    let ss: f64 = hist
        .iter()
        .map(|&h| {
            let d = h as f64 - mean;
            d * d
        })
        .sum();
    (ss / m as f64) as Scalar
}

fn variance_with_candidate(labels: &LabelMatrix, hist: &[u64], candidate: usize) -> Scalar {
    let cand = labels.client(candidate);
    let m = hist.len();
    if m == 0 {
        return Scalar::INFINITY;
    }
    let mut total = 0u64;
    for (&h, &c) in hist.iter().zip(cand.iter()) {
        total += h + c as u64;
    }
    let mean = total as f64 / m as f64;
    let mut ss = 0.0f64;
    for (&h, &c) in hist.iter().zip(cand.iter()) {
        let d = (h + c as u64) as f64 - mean;
        ss += d * d;
    }
    (ss / m as f64) as Scalar
}

/// Greedy grouping minimizing raw label variance (Algorithm 2 with the
/// criterion swapped).
#[derive(Debug, Clone, Copy)]
pub struct VarianceGrouping {
    /// Minimum group size.
    pub min_group_size: usize,
    /// Target maximum variance (soft, like `MaxCoV`).
    pub max_variance: Scalar,
}

impl GroupingAlgorithm for VarianceGrouping {
    fn name(&self) -> &'static str {
        "VarG"
    }

    fn form_groups(&self, labels: &LabelMatrix, rng: &mut GflRng) -> Vec<Group> {
        assert!(self.min_group_size >= 1);
        let n = labels.num_clients();
        let m = labels.num_labels();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut groups: Vec<Group> = Vec::new();
        while !remaining.is_empty() {
            let seed_pos = rng.gen_range(0..remaining.len());
            let seed = remaining.swap_remove(seed_pos);
            let mut group = vec![seed];
            let mut hist = vec![0u64; m];
            labels.add_client_into(seed, &mut hist);
            let mut var = histogram_variance(&hist);
            while (var > self.max_variance || group.len() < self.min_group_size)
                && !remaining.is_empty()
            {
                let (best_pos, best_var) = remaining
                    .iter()
                    .enumerate()
                    .map(|(pos, &c)| (pos, variance_with_candidate(labels, &hist, c)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .expect("remaining non-empty");
                if best_var < var || group.len() < self.min_group_size {
                    let c = remaining.swap_remove(best_pos);
                    labels.add_client_into(c, &mut hist);
                    group.push(c);
                    var = best_var;
                } else {
                    break;
                }
            }
            groups.push(group);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cov::histogram_cov;
    use crate::grouping::validate_partition;
    use gfl_tensor::init;

    #[test]
    fn produces_a_partition() {
        let labels = crate::grouping::test_support::skewed_matrix(30, 5, 1);
        let algo = VarianceGrouping {
            min_group_size: 3,
            max_variance: 10.0,
        };
        let groups = algo.form_groups(&labels, &mut init::rng(2));
        validate_partition(&groups, 30).unwrap();
    }

    #[test]
    fn paper_pathology_variance_prefers_small_skewed_group() {
        // §5.1's exact argument: a small fully-skewed histogram has LOWER
        // variance than a large balanced-ish one, while CoV correctly
        // ranks them the other way.
        let small_skewed = [4u64, 0, 0]; // 4 samples, one label only
        let large_mild = [40u64, 36, 44]; // 120 samples, mild imbalance
        assert!(
            histogram_variance(&small_skewed) < histogram_variance(&large_mild),
            "variance must exhibit the scale pathology"
        );
        assert!(
            histogram_cov(&small_skewed) > histogram_cov(&large_mild),
            "CoV must rank by skew, not scale"
        );
    }

    #[test]
    fn variance_grouping_is_biased_toward_small_data_groups() {
        // Clients with tiny skewed datasets vs large mildly-imbalanced
        // ones: the variance greedy finalizes tiny-data groups early even
        // though their label mix is terrible.
        let mut counts: Vec<Vec<u32>> = Vec::new();
        for i in 0..10 {
            counts.push(vec![
                if i % 2 == 0 { 3 } else { 0 },
                if i % 2 == 1 { 3 } else { 0 },
                0,
            ]); // tiny, skewed
        }
        for i in 0..10 {
            counts.push(vec![
                30 + (i % 3) as u32,
                30 + ((i + 1) % 3) as u32,
                30 + ((i + 2) % 3) as u32,
            ]); // large, near balanced
        }
        let labels = gfl_data::LabelMatrix::new(counts, 3);
        let varg = VarianceGrouping {
            min_group_size: 2,
            max_variance: 5.0,
        };
        let groups = varg.form_groups(&labels, &mut init::rng(3));
        validate_partition(&groups, 20).unwrap();
        // Some finalized group must consist purely of tiny-data clients
        // with high CoV — the pathology in action.
        let pathological = groups
            .iter()
            .any(|g| g.iter().all(|&c| c < 10) && histogram_cov(&labels.group_histogram(g)) > 0.5);
        assert!(
            pathological,
            "expected a small-data high-skew group to slip through: {groups:?}"
        );
    }
}
