//! Exact optimal grouping by exhaustive set-partition search.
//!
//! §5.2 formulates group formation as an NP-hard integer program
//! (Eq. 29–33); CoV-Grouping is a greedy approximation. For *tiny*
//! instances the optimum is computable by enumerating all partitions of
//! the client set (Bell-number growth — practical to ~10 clients), which
//! gives tests and the `ablation_criterion` experiment a ground truth to
//! measure the greedy's approximation quality against.

use gfl_data::LabelMatrix;
use gfl_tensor::Scalar;

use crate::cov::group_cov;
use crate::Group;

/// Hard cap on clients (12 ⇒ ≤ 4.2M partitions before pruning).
pub const MAX_EXHAUSTIVE_CLIENTS: usize = 12;

/// Finds the partition minimizing `Σ_g CoV(g)` subject to every group
/// having at least `min_group_size` members (Constraint 31; allowing one
/// undersized group only when `n < min_group_size` makes anything else
/// infeasible). Note that without an upper size bound the Σ-CoV objective
/// favors merging groups — use [`optimal_grouping_bounded`] to compare
/// against size-limited heuristics on equal footing.
///
/// Returns `(best_partition, best_objective)`.
///
/// # Panics
/// Panics if there are more than [`MAX_EXHAUSTIVE_CLIENTS`] clients.
pub fn optimal_grouping(labels: &LabelMatrix, min_group_size: usize) -> (Vec<Group>, Scalar) {
    optimal_grouping_bounded(labels, min_group_size, usize::MAX)
}

/// [`optimal_grouping`] with an additional maximum group size — the exact
/// solution of the paper's formulation when the cost trade-off caps group
/// size (the whole point of §3.2: big groups pay quadratic overheads).
pub fn optimal_grouping_bounded(
    labels: &LabelMatrix,
    min_group_size: usize,
    max_group_size: usize,
) -> (Vec<Group>, Scalar) {
    let n = labels.num_clients();
    assert!(
        n <= MAX_EXHAUSTIVE_CLIENTS,
        "exhaustive search limited to {MAX_EXHAUSTIVE_CLIENTS} clients, got {n}"
    );
    assert!(n > 0, "no clients");
    assert!(min_group_size <= max_group_size, "size bounds inverted");
    let mut best: Option<(Vec<Group>, Scalar)> = None;
    let mut current: Vec<Group> = Vec::new();
    search(
        labels,
        min_group_size,
        max_group_size,
        0,
        n,
        &mut current,
        &mut best,
    );
    best.expect("at least one partition is feasible")
}

/// Recursive partition enumeration in restricted-growth form: client `i`
/// joins an existing group or opens a new one. (No cost pruning: adding a
/// client can *lower* a group's CoV, so no admissible partial bound exists
/// without per-group relaxations; the client cap keeps enumeration cheap.)
fn search(
    labels: &LabelMatrix,
    min_gs: usize,
    max_gs: usize,
    i: usize,
    n: usize,
    current: &mut Vec<Group>,
    best: &mut Option<(Vec<Group>, Scalar)>,
) {
    if i == n {
        // Feasibility: all groups meet MinGS, or the whole population is
        // one undersized group (unavoidable when n < min_gs).
        let feasible =
            current.iter().all(|g| g.len() >= min_gs) || (current.len() == 1 && n < min_gs);
        if !feasible {
            return;
        }
        let cost: Scalar = current.iter().map(|g| group_cov(labels, g)).sum();
        if best.as_ref().is_none_or(|(_, b)| cost < *b) {
            *best = Some((current.clone(), cost));
        }
        return;
    }
    // Join each existing group (respecting the size cap).
    for gi in 0..current.len() {
        if current[gi].len() >= max_gs {
            continue;
        }
        current[gi].push(i);
        search(labels, min_gs, max_gs, i + 1, n, current, best);
        current[gi].pop();
    }
    // Open a new group.
    current.push(vec![i]);
    search(labels, min_gs, max_gs, i + 1, n, current, best);
    current.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cov::mean_group_cov;
    use crate::grouping::{CovGrouping, GroupingAlgorithm};
    use gfl_tensor::init;

    /// Four pure-label clients over two labels: the optimum is the two
    /// complementary pairs (Fig. 4's toy example), total CoV 0.
    #[test]
    fn finds_fig4_optimum() {
        let labels =
            gfl_data::LabelMatrix::new(vec![vec![10, 0], vec![0, 10], vec![10, 0], vec![0, 10]], 2);
        let (partition, cost) = optimal_grouping(&labels, 2);
        assert_eq!(cost, 0.0, "complementary pairing reaches CoV 0");
        for g in &partition {
            let hist = labels.group_histogram(g);
            assert_eq!(hist[0], hist[1], "each group must be balanced: {g:?}");
        }
    }

    #[test]
    fn single_client_population() {
        let labels = gfl_data::LabelMatrix::new(vec![vec![5, 0]], 2);
        let (partition, _) = optimal_grouping(&labels, 3);
        assert_eq!(partition, vec![vec![0]]);
    }

    #[test]
    fn respects_min_group_size() {
        let labels = crate::grouping::test_support::skewed_matrix(6, 3, 1);
        let (partition, _) = optimal_grouping(&labels, 3);
        assert!(partition.iter().all(|g| g.len() >= 3), "{partition:?}");
    }

    #[test]
    fn greedy_is_near_optimal_on_small_instances() {
        // The quantitative backing for using the greedy: compare each
        // greedy partition against the exhaustive optimum *under the same
        // size envelope* (without a cap the Sigma-CoV objective trivially
        // merges everything into one group).
        let mut total_ratio = 0.0;
        let mut cases = 0;
        for seed in 0..6u64 {
            let labels = crate::grouping::test_support::skewed_matrix(8, 4, seed);
            let greedy = CovGrouping {
                min_group_size: 2,
                max_cov: 0.0, // force best-effort minimization
            };
            // Best of a few greedy restarts (the §6.1 regrouping argument:
            // random seed clients explore the space).
            let (greedy_cost, max_size) = (0..5)
                .map(|s| {
                    let groups = greedy.form_groups(&labels, &mut init::rng(s));
                    let cost: f32 = groups.iter().map(|g| group_cov(&labels, g)).sum();
                    let max_size = groups.iter().map(Vec::len).max().unwrap();
                    (cost, max_size)
                })
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
                .unwrap();
            let (_, opt_cost) = optimal_grouping_bounded(&labels, 2, max_size);
            assert!(
                greedy_cost + 1e-5 >= opt_cost,
                "greedy {greedy_cost} cannot beat the optimum {opt_cost}"
            );
            if opt_cost > 1e-6 {
                total_ratio += f64::from(greedy_cost / opt_cost);
                cases += 1;
            } else {
                assert!(greedy_cost < 0.35, "optimum ~0 but greedy {greedy_cost}");
            }
        }
        if cases > 0 {
            let avg_ratio = total_ratio / f64::from(cases);
            assert!(
                avg_ratio < 2.5,
                "greedy/optimal average ratio {avg_ratio} too large"
            );
        }
    }

    #[test]
    fn mean_cov_of_optimum_bounds_everything() {
        let labels = crate::grouping::test_support::skewed_matrix(7, 3, 9);
        let (opt, opt_cost) = optimal_grouping(&labels, 2);
        // Any other feasible partition (e.g. one big group) costs at least
        // as much in total CoV.
        let whole: Vec<Group> = vec![(0..7).collect()];
        let whole_cost: f32 = whole.iter().map(|g| group_cov(&labels, g)).sum();
        assert!(opt_cost <= whole_cost + 1e-6);
        let _ = mean_group_cov(&labels, &opt);
    }

    #[test]
    #[should_panic(expected = "exhaustive search limited")]
    fn too_many_clients_panics() {
        let labels = crate::grouping::test_support::skewed_matrix(13, 3, 1);
        optimal_grouping(&labels, 2);
    }
}
