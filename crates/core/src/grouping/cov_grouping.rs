//! CoV-Grouping — Algorithm 2 of the paper.
//!
//! Greedy construction: seed a group with a random remaining client, then
//! repeatedly add the client that minimizes the group's CoV, until the CoV
//! target `MaxCoV` is met with at least `MinGS` members (or no candidate
//! improves the CoV anymore). `MaxCoV` is soft: when no candidate can reach
//! it, the group is finalized anyway (footnote 4). `MinGS` is hard during
//! growth; the last group may fall below it only when the client pool runs
//! dry (the paper's groups always absorb every client, Constraint 32).
//!
//! The random seed client is deliberate (§6.1): re-running the grouping
//! after some rounds explores different partitions, enabling the paper's
//! regrouping extension.
//!
//! Complexity: O(|K|³·|Y|) — Line 5 tries every remaining client, each
//! trial is an O(|Y|) incremental CoV evaluation ([`cov_with_candidate`]),
//! and O(|K|) clients are added in total across O(|K|) outer steps.

use gfl_data::LabelMatrix;
use gfl_tensor::init::GflRng;
use gfl_tensor::Scalar;
use rand::Rng;

use crate::cov::{cov_with_candidate, histogram_cov};
use crate::Group;

use super::GroupingAlgorithm;

/// Configuration of Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct CovGrouping {
    /// Minimum group size `MinGS` (anonymity constraint 31; paper uses 5
    /// for CIFAR-10 and 15 for Speech Commands).
    pub min_group_size: usize,
    /// Target maximum CoV (paper sweeps {0.1, 0.5, 1.0}; use
    /// `Scalar::INFINITY` for "no MaxCoV constraint" as in §7.3.2).
    pub max_cov: Scalar,
}

impl GroupingAlgorithm for CovGrouping {
    fn name(&self) -> &'static str {
        "CoVG"
    }

    fn form_groups(&self, labels: &LabelMatrix, rng: &mut GflRng) -> Vec<Group> {
        assert!(self.min_group_size >= 1, "MinGS must be at least 1");
        let n = labels.num_clients();
        let m = labels.num_labels();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut groups: Vec<Group> = Vec::new();

        while !remaining.is_empty() {
            // Line 3: seed with a random remaining client.
            let seed_pos = rng.gen_range(0..remaining.len());
            let seed = remaining.swap_remove(seed_pos);
            let mut group = vec![seed];
            let mut hist = vec![0u64; m];
            labels.add_client_into(seed, &mut hist);
            let mut cov = histogram_cov(&hist);

            // Line 4: grow while the group misses either requirement.
            while (cov > self.max_cov || group.len() < self.min_group_size) && !remaining.is_empty()
            {
                // Line 5: the candidate minimizing CoV(g ∪ c).
                let (best_pos, best_cov) = remaining
                    .iter()
                    .enumerate()
                    .map(|(pos, &c)| (pos, cov_with_candidate(labels, &hist, c)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .expect("remaining is non-empty");

                // Line 6: accept if it improves CoV or the group is still
                // too small to finalize.
                if best_cov < cov || group.len() < self.min_group_size {
                    let c = remaining.swap_remove(best_pos);
                    labels.add_client_into(c, &mut hist);
                    group.push(c);
                    cov = best_cov;
                } else {
                    // Line 9: no improving candidate and size satisfied.
                    break;
                }
            }
            groups.push(group);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cov::{group_cov, mean_group_cov};
    use crate::grouping::{test_support::skewed_matrix, validate_partition, RandomGrouping};
    use gfl_tensor::init;

    #[test]
    fn produces_a_partition() {
        let labels = skewed_matrix(40, 5, 1);
        let algo = CovGrouping {
            min_group_size: 4,
            max_cov: 0.5,
        };
        let groups = algo.form_groups(&labels, &mut init::rng(2));
        validate_partition(&groups, 40).unwrap();
    }

    #[test]
    fn respects_min_group_size_except_last() {
        let labels = skewed_matrix(43, 5, 3);
        let algo = CovGrouping {
            min_group_size: 5,
            max_cov: 0.2,
        };
        let groups = algo.form_groups(&labels, &mut init::rng(4));
        let undersized: Vec<&Group> = groups
            .iter()
            .filter(|g| g.len() < algo.min_group_size)
            .collect();
        assert!(
            undersized.len() <= 1,
            "at most the final leftover group may be undersized"
        );
    }

    #[test]
    fn beats_random_grouping_on_mean_cov() {
        let labels = skewed_matrix(60, 10, 5);
        let covg = CovGrouping {
            min_group_size: 5,
            max_cov: 0.3,
        };
        let rg = RandomGrouping { group_size: 6 };
        let cov_groups = covg.form_groups(&labels, &mut init::rng(6));
        let rand_groups =
            crate::grouping::GroupingAlgorithm::form_groups(&rg, &labels, &mut init::rng(6));
        let cov_mean = mean_group_cov(&labels, &cov_groups);
        let rand_mean = mean_group_cov(&labels, &rand_groups);
        assert!(
            cov_mean < rand_mean * 0.8,
            "CoVG {cov_mean} should clearly beat RG {rand_mean}"
        );
    }

    #[test]
    fn larger_max_cov_gives_smaller_groups() {
        // Table 1's structural finding: relaxing MaxCoV lets groups finalize
        // earlier, so they are smaller and more skewed.
        let labels = skewed_matrix(100, 10, 7);
        let avg_size = |max_cov: f32| {
            let algo = CovGrouping {
                min_group_size: 5,
                max_cov,
            };
            let groups = algo.form_groups(&labels, &mut init::rng(8));
            groups.iter().map(Group::len).sum::<usize>() as f32 / groups.len() as f32
        };
        let tight = avg_size(0.1);
        let loose = avg_size(1.0);
        assert!(
            tight >= loose,
            "MaxCoV=0.1 avg size {tight} should be ≥ MaxCoV=1.0 avg size {loose}"
        );
    }

    #[test]
    fn infinite_max_cov_yields_min_sized_groups() {
        let labels = skewed_matrix(40, 5, 9);
        let algo = CovGrouping {
            min_group_size: 4,
            max_cov: f32::INFINITY,
        };
        let groups = algo.form_groups(&labels, &mut init::rng(10));
        validate_partition(&groups, 40).unwrap();
        // With no CoV pressure, growth stops the moment MinGS is reached
        // unless a candidate still strictly improves CoV.
        for g in &groups {
            assert!(g.len() <= 40);
        }
        let avg = groups.iter().map(Group::len).sum::<usize>() as f32 / groups.len() as f32;
        assert!(avg < 10.0, "avg size {avg} should stay near MinGS");
    }

    #[test]
    fn single_client_population() {
        let labels = skewed_matrix(1, 3, 11);
        let algo = CovGrouping {
            min_group_size: 5,
            max_cov: 0.1,
        };
        let groups = algo.form_groups(&labels, &mut init::rng(12));
        assert_eq!(groups, vec![vec![0]]);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let labels = skewed_matrix(30, 5, 13);
        let algo = CovGrouping {
            min_group_size: 3,
            max_cov: 0.4,
        };
        let a = algo.form_groups(&labels, &mut init::rng(14));
        let b = algo.form_groups(&labels, &mut init::rng(14));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_explore_different_partitions() {
        let labels = skewed_matrix(30, 5, 15);
        let algo = CovGrouping {
            min_group_size: 3,
            max_cov: 0.4,
        };
        let a = algo.form_groups(&labels, &mut init::rng(1));
        let b = algo.form_groups(&labels, &mut init::rng(2));
        assert_ne!(a, b, "random seed client should vary the partition");
    }

    #[test]
    fn groups_meet_max_cov_when_feasible() {
        // Complementary pure-label clients: each group of 5 (one per label)
        // can reach CoV 0.
        let counts: Vec<Vec<u32>> = (0..25)
            .map(|i| (0..5).map(|l| if l == i % 5 { 10 } else { 0 }).collect())
            .collect();
        let labels = gfl_data::LabelMatrix::new(counts, 5);
        let algo = CovGrouping {
            min_group_size: 5,
            max_cov: 0.05,
        };
        let groups = algo.form_groups(&labels, &mut init::rng(16));
        validate_partition(&groups, 25).unwrap();
        for g in &groups {
            assert!(
                group_cov(&labels, g) <= 0.05 + 1e-6,
                "group {:?} cov {}",
                g,
                group_cov(&labels, g)
            );
        }
    }
}
