//! Clustering-then-Distribution Grouping (CDG) — the assignment policy of
//! OUEA [13], ported from client→edge assignment to group formation (§7.1:
//! "we adopt their basic ideas and port them to group formation
//! algorithms").
//!
//! Stage 1 clusters clients with *similar* label distributions (k-means on
//! normalized histograms, k = number of labels). Stage 2 deals the members
//! of each cluster round-robin across the groups, so every group receives a
//! spread of cluster types and its combined distribution "tends to be IID".

use gfl_data::LabelMatrix;
use gfl_tensor::init::GflRng;
use gfl_tensor::Scalar;
use rand::Rng;

use crate::Group;

use super::GroupingAlgorithm;

/// OUEA-style grouping.
#[derive(Debug, Clone, Copy)]
pub struct CdgGrouping {
    /// Target group size (OUEA does not bound group size; the port derives
    /// the group count as `ceil(n / group_size)` for fair comparison, as
    /// the paper does when tuning "all grouping algorithms so that they
    /// tend to generate similar group sizes").
    pub group_size: usize,
    /// Lloyd iterations for the clustering stage.
    pub kmeans_iters: usize,
}

impl Default for CdgGrouping {
    fn default() -> Self {
        Self {
            group_size: 6,
            kmeans_iters: 10,
        }
    }
}

impl GroupingAlgorithm for CdgGrouping {
    fn name(&self) -> &'static str {
        "CDG"
    }

    fn form_groups(&self, labels: &LabelMatrix, rng: &mut GflRng) -> Vec<Group> {
        assert!(self.group_size >= 1);
        let n = labels.num_clients();
        if n == 0 {
            return Vec::new();
        }
        let num_groups = n.div_ceil(self.group_size).max(1);
        let k = labels.num_labels().clamp(1, n);

        // Stage 1: k-means over normalized label distributions.
        let points: Vec<Vec<Scalar>> = (0..n).map(|i| labels.client_distribution(i)).collect();
        let assignment = kmeans(&points, k, self.kmeans_iters, rng);

        // Stage 2: deal each cluster's members across groups round-robin.
        let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (client, &c) in assignment.iter().enumerate() {
            clusters[c].push(client);
        }
        let mut groups: Vec<Group> = vec![Vec::new(); num_groups];
        let mut cursor = 0usize;
        for cluster in clusters {
            for client in cluster {
                groups[cursor % num_groups].push(client);
                cursor += 1;
            }
        }
        groups.retain(|g| !g.is_empty());
        groups
    }
}

/// Lloyd's k-means with random-point initialization. Returns per-point
/// cluster indices in `0..k`.
fn kmeans(points: &[Vec<Scalar>], k: usize, iters: usize, rng: &mut GflRng) -> Vec<usize> {
    let n = points.len();
    let dim = points[0].len();
    let k = k.min(n);
    // Initialize centroids from distinct random points.
    let mut chosen: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        chosen.swap(i, j);
    }
    let mut centroids: Vec<Vec<Scalar>> = chosen[..k].iter().map(|&i| points[i].clone()).collect();
    let mut assignment = vec![0usize; n];

    for _ in 0..iters.max(1) {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = Scalar::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update.
        let mut sums = vec![vec![0.0 as Scalar; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignment[i];
            gfl_tensor::ops::add_assign(p, &mut sums[c]);
            counts[c] += 1;
        }
        for (c, sum) in sums.into_iter().enumerate() {
            if counts[c] > 0 {
                centroids[c] = sum;
                gfl_tensor::ops::scale(1.0 / counts[c] as Scalar, &mut centroids[c]);
            }
        }
    }
    assignment
}

fn sq_dist(a: &[Scalar], b: &[Scalar]) -> Scalar {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cov::mean_group_cov;
    use crate::grouping::{test_support::skewed_matrix, validate_partition, RandomGrouping};
    use gfl_tensor::init;

    #[test]
    fn partitions_everyone() {
        let labels = skewed_matrix(37, 5, 1);
        let groups = CdgGrouping {
            group_size: 6,
            kmeans_iters: 5,
        }
        .form_groups(&labels, &mut init::rng(2));
        validate_partition(&groups, 37).unwrap();
    }

    #[test]
    fn group_sizes_are_near_target() {
        let labels = skewed_matrix(36, 5, 3);
        let groups = CdgGrouping {
            group_size: 6,
            kmeans_iters: 5,
        }
        .form_groups(&labels, &mut init::rng(4));
        for g in &groups {
            assert!((5..=8).contains(&g.len()), "size {}", g.len());
        }
    }

    #[test]
    fn improves_on_random_for_clusterable_population() {
        // Pure-label clients cluster perfectly, so CDG's round-robin should
        // mix labels well; compare mean CoV against random grouping.
        let counts: Vec<Vec<u32>> = (0..50)
            .map(|i| (0..5).map(|l| if l == i % 5 { 10 } else { 0 }).collect())
            .collect();
        let labels = gfl_data::LabelMatrix::new(counts, 5);
        let cdg = CdgGrouping {
            group_size: 5,
            kmeans_iters: 20,
        }
        .form_groups(&labels, &mut init::rng(5));
        let mut best_rand = f32::INFINITY;
        for seed in 0..5 {
            let rand_groups =
                RandomGrouping { group_size: 5 }.form_groups(&labels, &mut init::rng(seed));
            best_rand = best_rand.min(mean_group_cov(&labels, &rand_groups));
        }
        let cdg_cov = mean_group_cov(&labels, &cdg);
        assert!(
            cdg_cov <= best_rand,
            "CDG {cdg_cov} should beat best random {best_rand}"
        );
    }

    #[test]
    fn single_client() {
        let labels = skewed_matrix(1, 3, 6);
        let groups = CdgGrouping::default().form_groups(&labels, &mut init::rng(7));
        assert_eq!(groups, vec![vec![0]]);
    }

    #[test]
    fn empty_population() {
        let labels = gfl_data::LabelMatrix::new(vec![], 3);
        let groups = CdgGrouping::default().form_groups(&labels, &mut init::rng(8));
        assert!(groups.is_empty());
    }
}
