//! Training-run telemetry: the accuracy-vs-round and accuracy-vs-cost
//! trajectories that every figure in §7 plots, plus the structured fault
//! log a degraded run leaves behind (who was cut, which groups were
//! skipped, what was retried or rejected).

use gfl_faults::{
    summarize, summarize_attacks, AttackEvent, AttackSummary, FaultEvent, FaultSummary,
};
use gfl_tensor::Scalar;
use serde::{Deserialize, Serialize};

use crate::membership::{summarize_regroups, RegroupEvent, RegroupSummary};

/// One attack-success-rate measurement, taken at the same cadence as the
/// accuracy evaluations of an adversarial run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsrRecord {
    /// Global round index `t` (0-based, recorded after the round).
    pub round: usize,
    /// Fraction of the held-out *trigger set* (non-target test samples
    /// stamped with the backdoor trigger) the global model classifies as
    /// the attacker's target label. `None` when no backdoor campaign runs.
    pub trigger_asr: Option<Scalar>,
    /// Fraction of the held-out *flip set* (test samples whose true label
    /// is the flip source) the model classifies as the flip target.
    /// `None` when no label-flip campaign runs.
    pub flip_asr: Option<Scalar>,
}

/// One emulated-clock incident of a semi-async run. Only *incidents* are
/// logged — quorum closes that cut nobody, on-time arrivals, and idle
/// edges leave no record — so a semi-async run in the degenerate lockstep
/// limit (full quorum, no deadline, clean plan) produces a history
/// bit-identical to the synchronous engine's.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimedEvent {
    /// A group round closed (quorum filled or deadline fired) with at
    /// least one member's report still outstanding; the stragglers were
    /// cut as [`FaultEvent::StragglerCut`]s.
    GroupRoundClosed {
        round: usize,
        group: usize,
        group_round: usize,
        /// Absolute emulated close time, seconds.
        close_s: f64,
        /// Reports that made the close.
        reported: usize,
        /// Members cut at the close.
        cut: usize,
    },
    /// An edge upload reached the cloud after its dispatch round had
    /// already closed. `admitted` is `true` when the staleness policy
    /// weighted it into a later round (recorded at that round), `false`
    /// when drop-stale discarded it (recorded at the dispatch round).
    StaleArrival {
        round: usize,
        group: usize,
        dispatch_round: usize,
        /// Absolute emulated arrival time, seconds.
        arrival_s: f64,
        admitted: bool,
    },
    /// A sampled group sat the round out because its edge was still
    /// working on (or uploading) an earlier round's result.
    GroupBusySkipped {
        round: usize,
        group: usize,
        /// Absolute emulated time the edge frees up, seconds.
        busy_until_s: f64,
    },
    /// The cloud's own deadline closed the round before every dispatched
    /// group had reported back; `late` results became stale arrivals.
    CloudRoundClosed {
        round: usize,
        /// Absolute emulated close time, seconds.
        close_s: f64,
        /// Results admitted at the close.
        admitted: usize,
        /// Dispatched results still in flight at the close.
        late: usize,
    },
}

impl TimedEvent {
    /// The global round the event was recorded at.
    pub fn round(&self) -> usize {
        match *self {
            TimedEvent::GroupRoundClosed { round, .. }
            | TimedEvent::StaleArrival { round, .. }
            | TimedEvent::GroupBusySkipped { round, .. }
            | TimedEvent::CloudRoundClosed { round, .. } => round,
        }
    }
}

/// One evaluated point of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Global round index `t` (0-based, recorded after the round).
    pub round: usize,
    /// Cumulative emulated cost (Eq. 5) at this point.
    pub cost: f64,
    /// Global-model test accuracy.
    pub accuracy: Scalar,
    /// Global-model test loss.
    pub loss: Scalar,
    /// Mean local training loss over this round's participants.
    pub train_loss: Scalar,
}

/// The full trajectory of one run: evaluation records plus the per-round
/// fault log (empty for clean runs). Both are serialized through
/// checkpoints, so a resumed session carries its complete audit trail.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunHistory {
    records: Vec<RoundRecord>,
    faults: Vec<FaultEvent>,
    /// Membership transitions of a self-healing run. `Option` (rather
    /// than a bare `Vec`) so pre-churn serialized histories, which lack
    /// the field entirely, still deserialize; static runs leave it `None`.
    regroups: Option<Vec<RegroupEvent>>,
    /// Attack log of an adversarial run (injections and defense filters).
    /// `Option` for the same legacy-tolerance reason as `regroups`; clean
    /// runs leave it `None`.
    attacks: Option<Vec<AttackEvent>>,
    /// Attack-success-rate trajectory, one entry per evaluation round of
    /// an adversarial run. `None` for clean runs.
    asr: Option<Vec<AsrRecord>>,
    /// Emulated-clock incident log of a semi-async run. `Option` for the
    /// same legacy-tolerance reason as `regroups`; synchronous runs — and
    /// semi-async runs in the degenerate lockstep limit — leave it `None`.
    timed: Option<Vec<TimedEvent>>,
}

impl RunHistory {
    pub fn push(&mut self, r: RoundRecord) {
        self.records.push(r);
    }

    /// Pre-reserves capacity for `n` upcoming round records so a run's
    /// steady-state rounds never pay an amortized regrow inside
    /// `round_once` (the alloc-budget gate counts those).
    pub fn reserve_rounds(&mut self, n: usize) {
        self.records.reserve(n);
    }

    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Appends one fault event to the log.
    pub fn record_fault(&mut self, e: FaultEvent) {
        self.faults.push(e);
    }

    /// Appends a batch of fault events (one round's worth, in order).
    pub fn record_faults(&mut self, events: impl IntoIterator<Item = FaultEvent>) {
        self.faults.extend(events);
    }

    /// The full fault log, in injection order.
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.faults
    }

    /// Event counts by kind.
    pub fn fault_summary(&self) -> FaultSummary {
        summarize(&self.faults)
    }

    /// Fault events of one global round.
    pub fn faults_in_round(&self, round: usize) -> impl Iterator<Item = &FaultEvent> {
        self.faults.iter().filter(move |e| e.round() == round)
    }

    /// Appends a batch of membership/regroup events (one round's worth).
    /// An empty batch is a no-op, so clean self-healing runs stay equal
    /// (`PartialEq`) to static runs of the same trajectory.
    pub fn record_regroups(&mut self, events: impl IntoIterator<Item = RegroupEvent>) {
        let mut it = events.into_iter().peekable();
        if it.peek().is_some() {
            self.regroups.get_or_insert_with(Vec::new).extend(it);
        }
    }

    /// The full membership-transition log, in order.
    pub fn regroup_events(&self) -> &[RegroupEvent] {
        self.regroups.as_deref().unwrap_or(&[])
    }

    /// Membership-event counts by kind.
    pub fn regroup_summary(&self) -> RegroupSummary {
        summarize_regroups(self.regroup_events())
    }

    /// Membership events of one global round.
    pub fn regroups_in_round(&self, round: usize) -> impl Iterator<Item = &RegroupEvent> {
        self.regroup_events()
            .iter()
            .filter(move |e| e.round() == round)
    }

    /// Appends a batch of attack events (one round's worth, in order).
    /// An empty batch is a no-op, so clean runs stay equal (`PartialEq`)
    /// to runs with no adversary plan at all.
    pub fn record_attacks(&mut self, events: impl IntoIterator<Item = AttackEvent>) {
        let mut it = events.into_iter().peekable();
        if it.peek().is_some() {
            self.attacks.get_or_insert_with(Vec::new).extend(it);
        }
    }

    /// The full attack log, in injection order.
    pub fn attack_events(&self) -> &[AttackEvent] {
        self.attacks.as_deref().unwrap_or(&[])
    }

    /// Attack-event counts by kind.
    pub fn attack_summary(&self) -> AttackSummary {
        summarize_attacks(self.attack_events())
    }

    /// Attack events of one global round.
    pub fn attacks_in_round(&self, round: usize) -> impl Iterator<Item = &AttackEvent> {
        self.attack_events()
            .iter()
            .filter(move |e| e.round() == round)
    }

    /// Appends a batch of emulated-clock events (one round's worth, in
    /// order). An empty batch is a no-op, so a semi-async run that never
    /// cut, skipped, or dropped anything stays equal (`PartialEq`) to a
    /// synchronous run of the same trajectory.
    pub fn record_timed(&mut self, events: impl IntoIterator<Item = TimedEvent>) {
        let mut it = events.into_iter().peekable();
        if it.peek().is_some() {
            self.timed.get_or_insert_with(Vec::new).extend(it);
        }
    }

    /// The full emulated-clock incident log, in recording order.
    pub fn timed_events(&self) -> &[TimedEvent] {
        self.timed.as_deref().unwrap_or(&[])
    }

    /// Emulated-clock events of one global round.
    pub fn timed_in_round(&self, round: usize) -> impl Iterator<Item = &TimedEvent> {
        self.timed_events()
            .iter()
            .filter(move |e| e.round() == round)
    }

    /// Appends one attack-success-rate measurement. A record with neither
    /// rate present is dropped, so runs without an adversary stay equal
    /// (`PartialEq`) to clean runs.
    pub fn record_asr(&mut self, r: AsrRecord) {
        if r.trigger_asr.is_some() || r.flip_asr.is_some() {
            self.asr.get_or_insert_with(Vec::new).push(r);
        }
    }

    /// The attack-success-rate trajectory, in evaluation order.
    pub fn asr_records(&self) -> &[AsrRecord] {
        self.asr.as_deref().unwrap_or(&[])
    }

    /// The latest attack-success-rate measurement, if any.
    pub fn last_asr(&self) -> Option<&AsrRecord> {
        self.asr_records().last()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The earliest evaluation record, if any round was evaluated. Prefer
    /// this over `records().first().unwrap()` — a zero-round or fully-held
    /// run produces an empty trajectory.
    pub fn first_record(&self) -> Option<&RoundRecord> {
        self.records.first()
    }

    /// The latest evaluation record, if any round was evaluated.
    pub fn last_record(&self) -> Option<&RoundRecord> {
        self.records.last()
    }

    /// Final accuracy (0.0 for an empty history).
    pub fn final_accuracy(&self) -> Scalar {
        self.records.last().map_or(0.0, |r| r.accuracy)
    }

    /// Best accuracy seen.
    pub fn best_accuracy(&self) -> Scalar {
        self.records
            .iter()
            .map(|r| r.accuracy)
            .fold(0.0, Scalar::max)
    }

    /// Highest accuracy achieved within a cost budget (Fig. 10/11's
    /// "accuracy by certain learning costs" metric).
    pub fn accuracy_within_cost(&self, budget: f64) -> Scalar {
        self.records
            .iter()
            .filter(|r| r.cost <= budget)
            .map(|r| r.accuracy)
            .fold(0.0, Scalar::max)
    }

    /// Cost needed to first reach `target` accuracy; `None` if never
    /// reached.
    pub fn cost_to_accuracy(&self, target: Scalar) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.accuracy >= target)
            .map(|r| r.cost)
    }

    /// Rounds needed to first reach `target` accuracy.
    pub fn rounds_to_accuracy(&self, target: Scalar) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.accuracy >= target)
            .map(|r| r.round)
    }

    /// CSV rows (`round,cost,accuracy,loss,train_loss`) with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,cost,accuracy,loss,train_loss\n");
        for r in &self.records {
            out.push_str(&format!(
                "{},{:.4},{:.6},{:.6},{:.6}\n",
                r.round, r.cost, r.accuracy, r.loss, r.train_loss
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> RunHistory {
        let mut h = RunHistory::default();
        for (i, (cost, acc)) in [(10.0, 0.2), (20.0, 0.5), (30.0, 0.45), (40.0, 0.6)]
            .iter()
            .enumerate()
        {
            h.push(RoundRecord {
                round: i,
                cost: *cost,
                accuracy: *acc,
                loss: 1.0 - acc,
                train_loss: 1.0,
            });
        }
        h
    }

    #[test]
    fn accessors() {
        let h = hist();
        assert_eq!(h.final_accuracy(), 0.6);
        assert_eq!(h.best_accuracy(), 0.6);
        assert_eq!(h.accuracy_within_cost(25.0), 0.5);
        assert_eq!(h.accuracy_within_cost(5.0), 0.0);
        assert_eq!(h.cost_to_accuracy(0.5), Some(20.0));
        assert_eq!(h.cost_to_accuracy(0.99), None);
        assert_eq!(h.rounds_to_accuracy(0.45), Some(1));
    }

    #[test]
    fn empty_history_is_safe() {
        let h = RunHistory::default();
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.best_accuracy(), 0.0);
        assert!(h.cost_to_accuracy(0.1).is_none());
        assert!(h.first_record().is_none());
        assert!(h.last_record().is_none());
    }

    #[test]
    fn first_and_last_record_bracket_the_trajectory() {
        let h = hist();
        assert_eq!(h.first_record().unwrap().round, 0);
        assert_eq!(h.last_record().unwrap().round, 3);
    }

    #[test]
    fn fault_log_accumulates_and_summarizes() {
        let mut h = hist();
        assert!(h.fault_events().is_empty());
        assert_eq!(h.fault_summary().total(), 0);
        h.record_fault(FaultEvent::RoundHeld { round: 1 });
        h.record_faults(vec![
            FaultEvent::ClientCrash {
                round: 2,
                group_round: 0,
                group: 1,
                client: 4,
            },
            FaultEvent::ClientCrash {
                round: 2,
                group_round: 1,
                group: 1,
                client: 5,
            },
        ]);
        assert_eq!(h.fault_events().len(), 3);
        let s = h.fault_summary();
        assert_eq!(s.rounds_held, 1);
        assert_eq!(s.crashes, 2);
        assert_eq!(h.faults_in_round(2).count(), 2);
        assert_eq!(h.faults_in_round(0).count(), 0);
    }

    #[test]
    fn regroup_log_accumulates_and_summarizes() {
        let mut h = hist();
        assert!(h.regroup_events().is_empty());
        assert_eq!(h.regroup_summary().total(), 0);
        h.record_regroups(vec![
            RegroupEvent::ClientDeparted {
                round: 1,
                client: 3,
                group: 0,
            },
            RegroupEvent::ClientMigrated {
                round: 2,
                client: 3,
                to_group: 1,
            },
        ]);
        assert_eq!(h.regroup_events().len(), 2);
        assert_eq!(h.regroup_summary().departures, 1);
        assert_eq!(h.regroups_in_round(2).count(), 1);
        // A pre-churn serialized history (no `regroups` field) still loads.
        let legacy = r#"{"records":[],"faults":[]}"#;
        let back: RunHistory = serde_json::from_str(legacy).unwrap();
        assert!(back.regroup_events().is_empty());
    }

    #[test]
    fn attack_log_and_asr_accumulate_and_summarize() {
        let mut h = hist();
        assert!(h.attack_events().is_empty());
        assert_eq!(h.attack_summary().injected(), 0);
        assert!(h.asr_records().is_empty());
        h.record_attacks(vec![
            AttackEvent::BackdoorInjected {
                round: 1,
                group_round: 0,
                group: 0,
                client: 2,
                rows: 7,
            },
            AttackEvent::UpdatePoisoned {
                round: 2,
                group_round: 1,
                group: 1,
                client: 9,
            },
        ]);
        // Empty batches and all-`None` ASR records must not materialize
        // the optional fields.
        h.record_attacks(Vec::new());
        h.record_asr(AsrRecord {
            round: 0,
            trigger_asr: None,
            flip_asr: None,
        });
        h.record_asr(AsrRecord {
            round: 2,
            trigger_asr: Some(0.8),
            flip_asr: None,
        });
        assert_eq!(h.attack_events().len(), 2);
        assert_eq!(h.attack_summary().backdoor, 1);
        assert_eq!(h.attack_summary().model_poison, 1);
        assert_eq!(h.attacks_in_round(2).count(), 1);
        assert_eq!(h.asr_records().len(), 1);
        assert_eq!(h.last_asr().unwrap().trigger_asr, Some(0.8));
        // A pre-adversary serialized history still loads.
        let legacy = r#"{"records":[],"faults":[]}"#;
        let back: RunHistory = serde_json::from_str(legacy).unwrap();
        assert!(back.attack_events().is_empty());
        assert!(back.asr_records().is_empty());
    }

    #[test]
    fn timed_log_accumulates_and_tolerates_legacy_json() {
        let mut h = hist();
        assert!(h.timed_events().is_empty());
        // An empty batch must not materialize the field: semi-async runs
        // in the lockstep limit stay equal to synchronous histories.
        h.record_timed(Vec::new());
        assert_eq!(h, hist());
        h.record_timed(vec![
            TimedEvent::GroupRoundClosed {
                round: 1,
                group: 0,
                group_round: 2,
                close_s: 14.5,
                reported: 3,
                cut: 1,
            },
            TimedEvent::StaleArrival {
                round: 2,
                group: 1,
                dispatch_round: 1,
                arrival_s: 30.0,
                admitted: true,
            },
        ]);
        assert_eq!(h.timed_events().len(), 2);
        assert_eq!(h.timed_in_round(2).count(), 1);
        assert_eq!(h.timed_events()[0].round(), 1);
        // A pre-semi-async serialized history still loads.
        let legacy = r#"{"records":[],"faults":[]}"#;
        let back: RunHistory = serde_json::from_str(legacy).unwrap();
        assert!(back.timed_events().is_empty());
    }

    #[test]
    fn clean_history_with_no_attacks_stays_equal_to_default_shape() {
        let mut h = RunHistory::default();
        h.record_attacks(Vec::new());
        h.record_asr(AsrRecord {
            round: 0,
            trigger_asr: None,
            flip_asr: None,
        });
        assert_eq!(h, RunHistory::default());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = hist().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("round,cost"));
        assert!(lines[1].starts_with("0,10.0000,0.2"));
    }
}
