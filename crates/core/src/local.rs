//! Client-side local training (Line 13 of Algorithm 1) as a pluggable
//! strategy.
//!
//! The engine is strategy-agnostic: FedAvg, FedProx, SCAFFOLD, and
//! FedCLAR's pre-clustering phase all share the same outer hierarchy and
//! differ only in how a client turns `E` epochs of minibatches into a
//! parameter update. [`LocalUpdate`] captures exactly that surface, plus
//! the cost-model hooks the paper needs ("we use them to estimate different
//! quadratic cost functions for each method", §7.1): a strategy declares
//! which group operations it performs per group round and how much extra
//! per-sample compute its local step costs.

use gfl_data::{Batch, Dataset};
use gfl_nn::{Network, NetworkWorkspace, Params};
use gfl_sim::GroupOpKind;
use gfl_tensor::init::GflRng;
use gfl_tensor::{ops, Scalar};
use rand::Rng;

/// Everything a client sees during one stint of local training
/// (`x^i_{t,k,·}` updates within group round `k` of global round `t`).
pub struct LocalTask<'a> {
    /// Global client id.
    pub client: usize,
    /// The model architecture.
    pub model: &'a Network,
    /// Parameters the client starts from (`x^g_{t,k}`).
    pub group_start: &'a [Scalar],
    /// The global model of this round (`x_t`) — FedProx anchors here.
    pub global_start: &'a [Scalar],
    /// The client's local dataset.
    pub data: &'a Dataset,
    /// Rows of `data` owned by this client.
    pub indices: &'a [usize],
    /// Local epochs `E`.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate η for this round.
    pub lr: Scalar,
    /// Global round index `t`.
    pub round: usize,
}

/// Per-thread reusable buffers for local training.
///
/// One instance serves many clients in sequence: the engine keeps a pool of
/// these (one per worker thread) so the workspace, gradient, shuffle, and
/// minibatch buffers are allocated once per run instead of once per client.
pub struct LocalScratch {
    pub workspace: NetworkWorkspace,
    pub grad: Vec<Scalar>,
    shuffled: Vec<usize>,
    batch: Batch,
}

impl LocalScratch {
    pub fn new(model: &Network) -> Self {
        Self {
            workspace: model.workspace(),
            grad: vec![0.0; model.param_len()],
            shuffled: Vec::new(),
            batch: Batch::empty(),
        }
    }
}

/// A shared pool of [`LocalScratch`] buffers.
///
/// Worker threads check a scratch out at the start of a parallel region and
/// return it on drop, so a long run allocates at most one scratch per worker
/// thread — not one per group per round. The pool lives on the `Trainer` and
/// is warm across rounds.
pub(crate) struct ScratchPool {
    pool: std::sync::Mutex<Vec<LocalScratch>>,
}

impl ScratchPool {
    pub(crate) fn new() -> Self {
        Self {
            pool: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Checks out a scratch (allocating one only when the pool is dry).
    pub(crate) fn acquire(&self, model: &Network) -> ScratchGuard<'_> {
        let scratch = self
            .pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_else(|| LocalScratch::new(model));
        ScratchGuard {
            pool: self,
            scratch: Some(scratch),
        }
    }
}

/// RAII check-out of one [`LocalScratch`]; returns it to the pool on drop.
pub(crate) struct ScratchGuard<'a> {
    pool: &'a ScratchPool,
    scratch: Option<LocalScratch>,
}

impl ScratchGuard<'_> {
    pub(crate) fn get_mut(&mut self) -> &mut LocalScratch {
        self.scratch.as_mut().expect("scratch taken")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let (Some(s), Ok(mut pool)) = (self.scratch.take(), self.pool.pool.lock()) {
            pool.push(s);
        }
    }
}

/// A pool of reusable `Vec<T>` buffers.
///
/// The steady-state companion to [`ScratchPool`]: per-round buffers whose
/// sizes repeat across rounds (group parameter vectors, member lists, slot
/// shells) are checked out with [`BufPool::take`] and handed back with
/// [`BufPool::put`] once the round is done, so after warm-up the engine
/// reuses capacity instead of reallocating it.
pub(crate) struct BufPool<T> {
    pool: std::sync::Mutex<Vec<Vec<T>>>,
}

impl<T> BufPool<T> {
    pub(crate) fn new() -> Self {
        Self {
            pool: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Checks out an empty buffer, retaining the capacity it grew in
    /// earlier rounds. Allocates a fresh (zero-capacity) `Vec` only when
    /// the pool is dry.
    pub(crate) fn take(&self) -> Vec<T> {
        let mut buf = self
            .pool
            .lock()
            .expect("buffer pool poisoned")
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a buffer to the pool. Contents are discarded on the next
    /// [`BufPool::take`]; capacity is what the pool preserves.
    pub(crate) fn put(&self, buf: Vec<T>) {
        // A poisoned lock means a worker panicked mid-round; dropping the
        // buffer is strictly better than double-panicking here.
        if let Ok(mut pool) = self.pool.lock() {
            pool.push(buf);
        }
    }
}

/// A local-update strategy (FedAvg/FedProx/SCAFFOLD/...).
pub trait LocalUpdate: Send + Sync {
    /// Name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Runs `task.epochs` of minibatch SGD starting from `params ==
    /// task.group_start`, mutating `params` into the trained local model.
    /// Returns the mean training loss observed.
    fn train(
        &self,
        task: &LocalTask<'_>,
        params: &mut Params,
        scratch: &mut LocalScratch,
        rng: &mut GflRng,
    ) -> Scalar;

    /// Called once after every global round with the ids of clients that
    /// participated (SCAFFOLD updates its server control variate here).
    fn end_global_round(&self, _participants: &[usize]) {}

    /// Group operations this strategy performs per group round; drives the
    /// cost model. Default: plain secure aggregation + backdoor detection,
    /// the paper's standard group pipeline.
    fn group_ops(&self) -> Vec<GroupOpKind> {
        vec![
            GroupOpKind::SecureAggregation,
            GroupOpKind::BackdoorDetection,
        ]
    }

    /// Multiplier on per-sample training cost relative to plain SGD
    /// (FedProx pays for the proximal term; SCAFFOLD for the variate
    /// correction).
    fn training_cost_factor(&self) -> f64 {
        1.0
    }

    /// Multiplier on client upload size relative to a bare model update
    /// (SCAFFOLD ships its control variate alongside, doubling the
    /// payload). Drives the `comm.bytes.client_edge` accounting.
    fn upload_payload_factor(&self) -> f64 {
        1.0
    }
}

/// Runs the shared minibatch loop, applying `adjust_grad` to each raw
/// gradient before the SGD step. Returns mean minibatch loss.
pub fn minibatch_sgd(
    task: &LocalTask<'_>,
    params: &mut Params,
    scratch: &mut LocalScratch,
    rng: &mut GflRng,
    mut adjust_grad: impl FnMut(&mut [Scalar], &[Scalar]),
) -> Scalar {
    let n = task.indices.len();
    if n == 0 {
        return 0.0;
    }
    let batch = task.batch_size.clamp(1, n);
    scratch.shuffled.clear();
    scratch.shuffled.extend_from_slice(task.indices);
    let mut loss_sum = 0.0;
    let mut batches = 0u32;
    for _ in 0..task.epochs {
        // Fresh shuffle per epoch (ξ in Line 13).
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            scratch.shuffled.swap(i, j);
        }
        for chunk in scratch.shuffled.chunks(batch) {
            // Buffer-reusing gather: allocation-free after the first batch.
            task.data.batch_into(chunk, &mut scratch.batch);
            let loss = task.model.loss_and_grad(
                params,
                &scratch.batch.features,
                &scratch.batch.labels,
                &mut scratch.grad,
                &mut scratch.workspace,
            );
            adjust_grad(&mut scratch.grad, params);
            gfl_nn::sgd::sgd_step(params, &scratch.grad, task.lr);
            loss_sum += loss;
            batches += 1;
        }
    }
    loss_sum / batches.max(1) as Scalar
}

/// Plain FedAvg local update: unmodified minibatch SGD.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg;

impl LocalUpdate for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn train(
        &self,
        task: &LocalTask<'_>,
        params: &mut Params,
        scratch: &mut LocalScratch,
        rng: &mut GflRng,
    ) -> Scalar {
        minibatch_sgd(task, params, scratch, rng, |_, _| {})
    }
}

/// Computes a model delta `trained − start` into `out`.
pub fn delta_into(trained: &[Scalar], start: &[Scalar], out: &mut [Scalar]) {
    ops::sub_into(trained, start, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfl_data::SyntheticSpec;
    use gfl_tensor::init;

    fn setup() -> (Dataset, gfl_nn::Network, Params) {
        let data = SyntheticSpec::tiny().generate(120, 3);
        let model = gfl_nn::zoo::tiny(4, 3);
        let params = model.init_params(&mut init::rng(1));
        (data, model, params)
    }

    #[test]
    fn fedavg_reduces_local_loss() {
        let (data, model, start) = setup();
        let indices: Vec<usize> = (0..60).collect();
        let mut params = start.clone();
        let mut scratch = LocalScratch::new(&model);
        let mut rng = init::rng(2);
        let task = LocalTask {
            client: 0,
            model: &model,
            group_start: &start,
            global_start: &start,
            data: &data,
            indices: &indices,
            epochs: 8,
            batch_size: 16,
            lr: 0.3,
            round: 0,
        };
        let sub = data.subset(&indices);
        let before = model.evaluate(&start, sub.features(), sub.labels()).loss;
        let _ = FedAvg.train(&task, &mut params, &mut scratch, &mut rng);
        let after = model.evaluate(&params, sub.features(), sub.labels()).loss;
        assert!(after < before, "{before} -> {after}");
        assert_ne!(params, start);
    }

    #[test]
    fn empty_client_is_a_noop() {
        let (data, model, start) = setup();
        let mut params = start.clone();
        let mut scratch = LocalScratch::new(&model);
        let mut rng = init::rng(3);
        let task = LocalTask {
            client: 0,
            model: &model,
            group_start: &start,
            global_start: &start,
            data: &data,
            indices: &[],
            epochs: 2,
            batch_size: 8,
            lr: 0.1,
            round: 0,
        };
        let loss = FedAvg.train(&task, &mut params, &mut scratch, &mut rng);
        assert_eq!(loss, 0.0);
        assert_eq!(params, start);
    }

    #[test]
    fn training_is_deterministic_in_rng() {
        let (data, model, start) = setup();
        let indices: Vec<usize> = (0..40).collect();
        let run = |seed| {
            let mut params = start.clone();
            let mut scratch = LocalScratch::new(&model);
            let mut rng = init::rng(seed);
            let task = LocalTask {
                client: 0,
                model: &model,
                group_start: &start,
                global_start: &start,
                data: &data,
                indices: &indices,
                epochs: 2,
                batch_size: 10,
                lr: 0.1,
                round: 0,
            };
            FedAvg.train(&task, &mut params, &mut scratch, &mut rng);
            params
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn default_group_ops_include_secagg_and_backdoor() {
        let ops = FedAvg.group_ops();
        assert!(ops.contains(&GroupOpKind::SecureAggregation));
        assert!(ops.contains(&GroupOpKind::BackdoorDetection));
        assert_eq!(FedAvg.training_cost_factor(), 1.0);
    }

    #[test]
    fn delta_computes_difference() {
        let mut out = vec![0.0; 2];
        delta_into(&[3.0, 5.0], &[1.0, 10.0], &mut out);
        assert_eq!(out, vec![2.0, -5.0]);
    }
}
