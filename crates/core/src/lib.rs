//! # Group-FEL — Group-based Hierarchical Federated Edge Learning
//!
//! Rust reproduction of *"Group-based Hierarchical Federated Learning:
//! Convergence, Group Formation, and Sampling"* (Liu, Wei, Liu, Gao, Wang —
//! ICPP 2023). The paper's pipeline, end to end:
//!
//! 1. Each **edge server** partitions its clients into groups using only
//!    their label histograms — [`grouping`] implements the paper's
//!    CoV-Grouping (Algorithm 2) plus the three comparison algorithms
//!    (random, OUEA's clustering-then-distribution, SHARE's KLD grouping).
//! 2. The **cloud** computes a sampling probability per group from its
//!    coefficient of variation — [`sampling`] implements Eq. 34 with the
//!    three weighting functions w(x) ∈ {x, x², e^{x²}} and the
//!    unbiased/stabilized aggregation corrections (Eq. 4, Eq. 35).
//! 3. Every global round, sampled groups run `K` group rounds of `E` local
//!    SGD epochs and aggregate hierarchically — [`engine`] implements
//!    Algorithm 1, charging emulated cost per Eq. 5 through `gfl-sim`.
//!
//! [`cov`] is the shared grouping criterion (Eq. 27), [`theory`] evaluates
//! the constants of the convergence theorem (Theorem 1), and [`history`]
//! records the accuracy-vs-cost trajectories every figure plots.
//!
//! ## Quick example
//!
//! ```
//! use gfl_core::prelude::*;
//! use gfl_data::{PartitionSpec, SyntheticSpec, ClientPartition};
//!
//! // Tiny synthetic federation: 12 clients on 2 edge servers.
//! let data = SyntheticSpec::tiny().generate(400, 7);
//! let (train, test) = data.split_holdout(5);
//! let part = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, 7));
//! let topo = gfl_sim::Topology::even_split(2, part.sizes());
//!
//! let grouping = CovGrouping { min_group_size: 2, max_cov: 1.0 };
//! let groups = form_groups_per_edge(&grouping, &topo, &part.label_matrix, 7);
//!
//! let config = GroupFelConfig::tiny();
//! let model = gfl_nn::zoo::tiny(4, 3);
//! let trainer = Trainer::new(config, model, train, part, test);
//! let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
//! assert!(history.records().len() > 0);
//! ```

pub mod checkpoint;
pub mod cov;
pub mod engine;
pub mod grouping;
pub mod history;
pub mod local;
pub mod membership;
pub mod sampling;
pub mod semi_async;
pub mod theory;

/// One group: the global client ids of its members.
pub type Group = Vec<usize>;

/// Convenient re-exports of the full pipeline.
pub mod prelude {
    pub use crate::cov::group_cov;
    pub use crate::engine::{
        form_groups_per_edge, ConfigError, GroupFelConfig, RobustAggRule, Trainer,
    };
    pub use crate::grouping::{
        CdgGrouping, CovGrouping, GroupStats, GroupingAlgorithm, KldGrouping, RandomGrouping,
        StreamGrouping,
    };
    pub use crate::history::{AsrRecord, RoundRecord, RunHistory, TimedEvent};
    pub use crate::local::{FedAvg, LocalTask, LocalUpdate};
    pub use crate::membership::{
        summarize_regroups, MembershipState, RegroupEvent, RegroupPolicy, RegroupSummary,
    };
    pub use crate::sampling::{AggregationWeighting, SamplingStrategy};
    pub use crate::semi_async::{
        AsyncConfig, AsyncReport, AsyncRoundRecord, SchedulerState, StalenessPolicy,
    };
    pub use crate::Group;
    pub use gfl_faults::{
        summarize_attacks, AdversaryPlan, AttackEvent, AttackKind, AttackSummary, DefenseStage,
        FaultConfigError, FaultPlan, FaultPolicy,
    };
}
