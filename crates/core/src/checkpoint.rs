//! Checkpointing: persist and resume a training session.
//!
//! Pairs with [`crate::engine::Trainer::run_resumable`]: a long federated
//! run (or a §6.1 regrouping schedule) can snapshot the model, the
//! trajectory, and the configuration after any global round and pick up
//! where it left off — including across process restarts, since everything
//! in the engine is deterministic given `(seed, round)`.

use std::path::Path;

use gfl_nn::Params;
use serde::{Deserialize, Serialize};

use crate::engine::GroupFelConfig;
use crate::history::RunHistory;
use crate::membership::MembershipState;
use crate::semi_async::SchedulerState;

/// A resumable training snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The global model `x_t`.
    pub params: Params,
    /// Next global round to run (rounds `0..round` are complete).
    pub round: usize,
    /// Evaluation trajectory so far.
    pub history: RunHistory,
    /// The configuration the run was started with.
    pub config: GroupFelConfig,
    /// Cumulative emulated cost so far (Eq. 5).
    pub cost_so_far: f64,
    /// Live membership of a self-healing run (current partition, activity
    /// mask, group health, sampling probabilities) — `None` for static
    /// runs. `Option` keeps pre-churn checkpoints (which lack the field)
    /// loadable without a version bump.
    pub membership: Option<MembershipState>,
    /// Scheduler state of a semi-async run (emulated clock, busy edges,
    /// parked stale uploads) — `None` for lockstep runs. `Option` keeps
    /// pre-semi-async checkpoints loadable without a version bump.
    pub scheduler: Option<SchedulerState>,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Errors from checkpoint IO.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    Format(serde_json::Error),
    /// Found version, supported version.
    Version(u32, u32),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::Format(e) => write!(f, "format error: {e}"),
            CheckpointError::Version(found, want) => {
                write!(f, "checkpoint version {found}, supported {want}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Builds a snapshot for the state after `completed_rounds` rounds.
    pub fn new(
        params: Params,
        completed_rounds: usize,
        history: RunHistory,
        config: GroupFelConfig,
        cost_so_far: f64,
    ) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            params,
            round: completed_rounds,
            history,
            config,
            cost_so_far,
            membership: None,
            scheduler: None,
        }
    }

    /// Attaches the membership state of a self-healing run, so a resumed
    /// session continues from the healed partition rather than re-forming.
    pub fn with_membership(mut self, membership: MembershipState) -> Self {
        self.membership = Some(membership);
        self
    }

    /// Attaches the scheduler state of a semi-async run, so a resumed
    /// session continues from the same emulated clock, busy-edge map, and
    /// parked stale uploads — the resume is bit-identical, not merely
    /// approximate.
    pub fn with_scheduler(mut self, scheduler: SchedulerState) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serialization cannot fail")
    }

    /// Parses from JSON, validating the version.
    pub fn from_json(json: &str) -> Result<Self, CheckpointError> {
        let cp: Checkpoint = serde_json::from_str(json).map_err(CheckpointError::Format)?;
        if cp.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version(cp.version, CHECKPOINT_VERSION));
        }
        Ok(cp)
    }

    /// Writes the checkpoint to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_json()).map_err(CheckpointError::Io)
    }

    /// Reads a checkpoint from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let json = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RoundRecord;

    fn sample() -> Checkpoint {
        let mut history = RunHistory::default();
        history.push(RoundRecord {
            round: 0,
            cost: 12.5,
            accuracy: 0.4,
            loss: 1.2,
            train_loss: 1.5,
        });
        Checkpoint::new(
            vec![0.25, -1.5, 3.0],
            1,
            history,
            GroupFelConfig::tiny(),
            12.5,
        )
    }

    #[test]
    fn json_roundtrip() {
        let cp = sample();
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back.params, cp.params);
        assert_eq!(back.round, 1);
        assert_eq!(back.history.records().len(), 1);
        assert_eq!(back.cost_so_far, 12.5);
        assert_eq!(back.config.global_rounds, cp.config.global_rounds);
    }

    #[test]
    fn file_roundtrip() {
        let cp = sample();
        // Unique per-process path: `cargo test` runs suites in parallel,
        // and a shared fixed name races between them.
        let path = std::env::temp_dir().join(format!(
            "gfl_checkpoint_test_{}_{:p}.json",
            std::process::id(),
            &cp
        ));
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.params, cp.params);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn legacy_checkpoint_without_membership_field_loads() {
        // A checkpoint serialized before the self-healing work has no
        // `membership` key; it must still parse at the same version.
        let json = sample().to_json();
        assert!(json.contains("\"membership\""));
        let legacy = json.replace(",\n  \"membership\": null", "");
        assert!(!legacy.contains("membership"), "{legacy}");
        let back = Checkpoint::from_json(&legacy).unwrap();
        assert!(back.membership.is_none());
    }

    #[test]
    fn legacy_checkpoint_without_scheduler_field_loads() {
        // A checkpoint serialized before the semi-async runtime has no
        // `scheduler` key; it must still parse at the same version.
        let json = sample().to_json();
        assert!(json.contains("\"scheduler\""));
        let legacy = json.replace(",\n  \"scheduler\": null", "");
        assert!(!legacy.contains("scheduler"), "{legacy}");
        let back = Checkpoint::from_json(&legacy).unwrap();
        assert!(back.scheduler.is_none());
    }

    #[test]
    fn scheduler_state_roundtrips_exactly() {
        use crate::semi_async::PendingUpload;
        let sched = SchedulerState {
            clock_s: 1_234.562_500_001,
            busy: vec![(3, 1300.25), (0, 1250.125)],
            pending: vec![PendingUpload {
                group: 3,
                dispatch_round: 7,
                arrival_s: 1300.25,
                samples: 42,
                prob: 0.125,
                uploads: 9,
                members: vec![1, 4, 6],
                params: vec![0.5, -1.25, 3.75],
            }],
        };
        let cp = sample().with_scheduler(sched.clone());
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        // Exact equality, including every f64: resume bit-identity hangs
        // on the JSON float round-trip being lossless.
        assert_eq!(back.scheduler, Some(sched));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut cp = sample();
        cp.version = 999;
        let json = serde_json::to_string(&cp).unwrap();
        assert!(matches!(
            Checkpoint::from_json(&json).unwrap_err(),
            CheckpointError::Version(999, CHECKPOINT_VERSION)
        ));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(
            Checkpoint::from_json("not json").unwrap_err(),
            CheckpointError::Format(_)
        ));
    }

    #[test]
    fn checkpointed_session_resumes_equivalently() {
        // Run 6 rounds straight vs 3 rounds → checkpoint → restore → 3
        // more: the resumable engine must produce the same final model.
        use crate::engine::{form_groups_per_edge, Trainer};
        use crate::grouping::CovGrouping;
        use crate::local::FedAvg;
        use crate::sampling::SamplingStrategy;
        use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
        use gfl_sim::Topology;

        let data = SyntheticSpec::tiny().generate(500, 77);
        let (train, test) = data.split_holdout(5);
        let partition = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, 77));
        let topology = Topology::even_split(2, partition.sizes());
        let groups = form_groups_per_edge(
            &CovGrouping {
                min_group_size: 2,
                max_cov: 1.0,
            },
            &topology,
            &partition.label_matrix,
            77,
        );
        let mut cfg = GroupFelConfig::tiny();
        cfg.global_rounds = 6;
        cfg.seed = 77;
        let trainer = Trainer::new(cfg.clone(), gfl_nn::zoo::tiny(4, 3), train, partition, test);
        let covs: Vec<f32> = groups
            .iter()
            .map(|g| crate::cov::group_cov(&trainer.partition().label_matrix, g))
            .collect();
        let probs = SamplingStrategy::Random.probabilities(&covs);

        // Straight 6 rounds.
        let mut p_straight = trainer.model().init_params(&mut gfl_tensor::init::rng(77));
        let mut ledger = trainer.ledger_for(&FedAvg);
        let mut hist = RunHistory::default();
        trainer.run_resumable(
            &groups,
            &FedAvg,
            &probs,
            &mut p_straight,
            &mut ledger,
            &mut hist,
            0,
            6,
        );

        // 3 rounds, checkpoint to JSON, restore, 3 more.
        let mut p_half = trainer.model().init_params(&mut gfl_tensor::init::rng(77));
        let mut ledger2 = trainer.ledger_for(&FedAvg);
        let mut hist2 = RunHistory::default();
        trainer.run_resumable(
            &groups,
            &FedAvg,
            &probs,
            &mut p_half,
            &mut ledger2,
            &mut hist2,
            0,
            3,
        );
        let cp = Checkpoint::new(p_half, 3, hist2, cfg, ledger2.total());
        let restored = Checkpoint::from_json(&cp.to_json()).unwrap();
        let mut p_resumed = restored.params.clone();
        let mut hist3 = restored.history.clone();
        trainer.run_resumable(
            &groups,
            &FedAvg,
            &probs,
            &mut p_resumed,
            &mut ledger2,
            &mut hist3,
            restored.round,
            3,
        );
        for (a, b) in p_straight.iter().zip(p_resumed.iter()) {
            assert!((a - b).abs() < 1e-6, "resume diverged: {a} vs {b}");
        }
    }
}
