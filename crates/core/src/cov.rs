//! The grouping criterion of §5.1: the coefficient of variation (CoV) of a
//! group's label histogram.
//!
//! For a group `g` with combined label counts `h_j` over `m` labels and
//! total `n_g = Σ h_j`:
//!
//! * mean label mass `μ(g) = n_g / m`
//! * deviation `σ(g) = sqrt( Σ_j (μ − h_j)² / m )`   (Eq. 28)
//! * `CoV(g) = σ(g) / μ(g)`                          (Eq. 27)
//!
//! (The paper's displayed Eq. 27 and Eq. 28 disagree on the normalizer —
//! Eq. 27 divides the sum by `n_g` while Eq. 28 divides by `m`. We follow
//! the standard definition CoV = σ/μ with the population σ of Eq. 28; this
//! matches the paper's stated intent "coefficient of variation", its §4.3
//! identity γ − 1 = CoV², and its scale-invariance argument against plain
//! variance.)
//!
//! CoV = 0 ⟺ the group's labels are perfectly balanced; larger CoV means
//! more skew. Crucially it is *scale-invariant*: doubling every count
//! leaves it unchanged, which is exactly why §5.1 prefers it to variance.

use gfl_data::LabelMatrix;
use gfl_tensor::Scalar;

/// CoV of an explicit label histogram.
///
/// Returns `Scalar::INFINITY` for an empty histogram or one with zero total
/// mass — an empty "group" is maximally useless to sample, and the greedy
/// grouping loop relies on `CoV(∅ ∪ {c}) < CoV(∅)` always holding.
pub fn histogram_cov(hist: &[u64]) -> Scalar {
    let m = hist.len();
    if m == 0 {
        return Scalar::INFINITY;
    }
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return Scalar::INFINITY;
    }
    let mu = total as f64 / m as f64;
    let ss: f64 = hist
        .iter()
        .map(|&h| {
            let d = h as f64 - mu;
            d * d
        })
        .sum();
    let sigma = (ss / m as f64).sqrt();
    (sigma / mu) as Scalar
}

/// CoV of the combined histogram of `members` under `labels`.
pub fn group_cov(labels: &LabelMatrix, members: &[usize]) -> Scalar {
    histogram_cov(&labels.group_histogram(members))
}

/// CoV the histogram would have after adding `count` per-label counts of
/// client `candidate` — evaluated without mutating `hist`. This is the
/// inner-loop primitive of CoV-Grouping (Algorithm 2, Line 5): trying every
/// remaining client per step must not clone histograms.
pub fn cov_with_candidate(labels: &LabelMatrix, hist: &[u64], candidate: usize) -> Scalar {
    let cand = labels.client(candidate);
    debug_assert_eq!(hist.len(), cand.len());
    let m = hist.len();
    if m == 0 {
        return Scalar::INFINITY;
    }
    let mut total = 0u64;
    for (&h, &c) in hist.iter().zip(cand.iter()) {
        total += h + c as u64;
    }
    if total == 0 {
        return Scalar::INFINITY;
    }
    let mu = total as f64 / m as f64;
    let mut ss = 0.0f64;
    for (&h, &c) in hist.iter().zip(cand.iter()) {
        let d = (h + c as u64) as f64 - mu;
        ss += d * d;
    }
    let sigma = (ss / m as f64).sqrt();
    (sigma / mu) as Scalar
}

/// Mean CoV across a set of groups (reported in Table 1).
pub fn mean_group_cov(labels: &LabelMatrix, groups: &[Vec<usize>]) -> Scalar {
    if groups.is_empty() {
        return 0.0;
    }
    groups.iter().map(|g| group_cov(labels, g)).sum::<Scalar>() / groups.len() as Scalar
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> LabelMatrix {
        LabelMatrix::new(
            vec![
                vec![10, 0, 0], // pure label 0
                vec![0, 10, 0], // pure label 1
                vec![0, 0, 10], // pure label 2
                vec![4, 3, 3],  // nearly balanced
                vec![20, 0, 0], // pure label 0, more data
            ],
            3,
        )
    }

    #[test]
    fn balanced_group_has_zero_cov() {
        let m = matrix();
        assert_eq!(group_cov(&m, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn single_label_group_has_high_cov() {
        let m = matrix();
        let pure = group_cov(&m, &[0]);
        let mixed = group_cov(&m, &[3]);
        assert!(pure > 1.0, "pure {pure}");
        assert!(mixed < 0.2, "mixed {mixed}");
        assert!(pure > mixed);
    }

    #[test]
    fn cov_is_scale_invariant_unlike_variance() {
        let m = matrix();
        // Clients 0 and 4 are both pure label-0 but different sizes:
        // identical CoV.
        let small = group_cov(&m, &[0]);
        let large = group_cov(&m, &[4]);
        assert!((small - large).abs() < 1e-6);
    }

    #[test]
    fn paper_toy_example_fig4_preference() {
        // Fig. 4: pairing complementary clients beats pairing similar ones.
        let m = LabelMatrix::new(vec![vec![10, 0], vec![0, 10], vec![10, 0], vec![0, 10]], 2);
        let bad = group_cov(&m, &[0, 2]) + group_cov(&m, &[1, 3]);
        let good = group_cov(&m, &[0, 1]) + group_cov(&m, &[2, 3]);
        assert!(good < bad, "complementary grouping {good} vs similar {bad}");
        assert_eq!(good, 0.0);
    }

    #[test]
    fn empty_group_is_infinite() {
        let m = matrix();
        assert!(group_cov(&m, &[]).is_infinite());
        assert!(histogram_cov(&[]).is_infinite());
        assert!(histogram_cov(&[0, 0]).is_infinite());
    }

    #[test]
    fn candidate_evaluation_matches_materialized() {
        let m = matrix();
        let members = vec![0usize, 3];
        let hist = m.group_histogram(&members);
        for cand in [1usize, 2, 4] {
            let fast = cov_with_candidate(&m, &hist, cand);
            let mut with = members.clone();
            with.push(cand);
            let slow = group_cov(&m, &with);
            assert!((fast - slow).abs() < 1e-6, "candidate {cand}");
        }
    }

    #[test]
    fn adding_complementary_client_reduces_cov() {
        let m = matrix();
        let hist = m.group_histogram(&[0]); // all label 0
        let before = histogram_cov(&hist);
        let after = cov_with_candidate(&m, &hist, 1); // add pure label 1
        assert!(after < before);
    }

    #[test]
    fn mean_group_cov_averages() {
        let m = matrix();
        let groups = vec![vec![0, 1, 2], vec![3]];
        let avg = mean_group_cov(&m, &groups);
        let want = (group_cov(&m, &[0, 1, 2]) + group_cov(&m, &[3])) / 2.0;
        assert!((avg - want).abs() < 1e-6);
        assert_eq!(mean_group_cov(&m, &[]), 0.0);
    }
}
