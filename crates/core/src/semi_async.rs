//! Deterministic semi-async runtime: quorum-or-deadline rounds over an
//! event-driven cost ledger.
//!
//! The lockstep engine ([`Trainer::run_resumable`]) closes every round at
//! a global barrier: the slowest sampled client paces the whole fleet.
//! This module replaces the barrier with events on an **emulated clock**
//! (never the wall clock, never an RNG):
//!
//! * every client report, group-round close, and edge→cloud arrival is a
//!   timed event, priced by the same [`gfl_sim::cost`] / [`gfl_sim::comm`]
//!   models the ledger charges (Eq. 5);
//! * each **edge** closes group round `k` at the *first* of: a quorum of
//!   member reports (`quorum_fraction`), every deliverable report in, or
//!   `deadline_factor ×` the slowest *nominal* member's elapsed time.
//!   Late reports are cut as timed [`gfl_faults::FaultEvent::StragglerCut`]s;
//! * the **cloud** admits edge results as they arrive. Results landing
//!   after the cloud's own close are *stale*: dropped
//!   ([`StalenessPolicy::DropStale`]) or parked and folded into a later
//!   round with a staleness-decayed weight ([`StalenessPolicy::Weighted`]),
//!   after HierFAVG-style semi-async aggregation.
//!
//! # Determinism
//!
//! The runtime is two passes per round. The *timing pass* is pure
//! arithmetic over the cost/comm models and the fault oracle — it decides,
//! in emulated time, which reports miss which close, using
//! [`gfl_sim::EventQueue`] (ties broken by the stable `(round, group,
//! client)` id). The *compute pass* is the lockstep engine's own
//! client-granular parallel trainer, fed the precomputed cut sets. Neural
//! results therefore stay bit-identical across thread counts and across
//! checkpoint resume, and the degenerate limit — full quorum, disabled
//! deadlines, clean fault plan — reproduces the lockstep [`RunHistory`]
//! bit for bit (asserted by `tests/semi_async.rs`).
//!
//! Two knowing simplifications, both documented in `docs/ASYNC.md`: client
//! dropout (`dropout_prob`) drops the *payload*, not the timing — a
//! dropped client still counts toward the quorum clock; and a membership
//! transition under [`Trainer::run_semi_async_self_healing`] resets
//! in-flight edge state (busy map + parked stale uploads), since both are
//! keyed by group indices the transition invalidates.

use gfl_faults::{FaultEvent, FaultInjector, FaultPlan, FaultPolicy};
use gfl_nn::Params;
use gfl_obs::{RoundMetrics, SpanAttrs, SpanKind};
use gfl_sim::{CommModel, CostLedger, CostModel, EventId, EventQueue, RetryOutcome, Topology};
use gfl_tensor::init;
use gfl_tensor::{ops, Scalar};
use serde::{Deserialize, Serialize};

use crate::cov::group_cov;
use crate::engine::{GroupCuts, GroupOutcome, Trainer};
use crate::grouping::{GroupingAlgorithm, PartitionError};
use crate::history::{AsrRecord, RoundRecord, RunHistory, TimedEvent};
use crate::local::LocalUpdate;
use crate::membership::{MembershipState, RegroupPolicy};
use crate::sampling::{aggregation_weights, sample_without_replacement, SamplingStrategy};
use crate::Group;

/// What the cloud does with an edge result that arrives after its round
/// already closed.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum StalenessPolicy {
    /// Discard it. Simple, biased toward fast edges.
    #[default]
    DropStale,
    /// Park it and fold it into the first round whose close covers the
    /// arrival, damping its aggregation weight by `(1 + s)^{-decay}`
    /// where `s` is the staleness in global rounds (HierFAVG-style).
    Weighted { decay: f64 },
}

/// Knobs of the semi-async runtime that have no lockstep counterpart.
/// Edge-level quorum and deadlines come from the attached
/// [`FaultPolicy`] (`quorum_fraction`, `deadline_factor`,
/// `backoff_base_s`, `max_backoff_s`); without [`Trainer::with_faults`]
/// the runtime defaults to the degenerate lockstep limit (full quorum,
/// no deadline) so plain runs stay bit-identical to the sync engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsyncConfig {
    /// Stale-arrival handling at the cloud.
    pub staleness: StalenessPolicy,
    /// The cloud closes its round at `cloud_deadline_factor ×` the slowest
    /// dispatched group's *nominal* duration after dispatch. `0.0` (or any
    /// non-positive / non-finite value) disables the deadline: the cloud
    /// waits for every dispatched result, and nothing ever goes stale.
    pub cloud_deadline_factor: f64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        Self {
            staleness: StalenessPolicy::DropStale,
            cloud_deadline_factor: 0.0,
        }
    }
}

impl AsyncConfig {
    fn cloud_deadline_enabled(&self) -> bool {
        self.cloud_deadline_factor > 0.0 && self.cloud_deadline_factor.is_finite()
    }
}

/// An edge result that arrived after its dispatch round closed, parked by
/// [`StalenessPolicy::Weighted`] until a later round's close covers it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingUpload {
    /// Global group index at dispatch time.
    pub group: usize,
    /// The round that dispatched (and already charged) this work.
    pub dispatch_round: usize,
    /// Absolute emulated arrival time at the cloud, seconds.
    pub arrival_s: f64,
    /// Group data volume `n_g` at dispatch time.
    pub samples: usize,
    /// Sampling probability of the group at dispatch time.
    pub prob: Scalar,
    /// Surviving uploads across the group's `K` rounds (0 ⇒ the result
    /// carries no update and cannot lift a held round).
    pub uploads: usize,
    /// Member client ids at dispatch time (for `end_global_round`).
    pub members: Vec<usize>,
    /// The trained group model.
    pub params: Params,
}

/// Persistent scheduler state of a semi-async run: everything the event
/// loop needs beyond `(params, ledger, history)` to resume bit-identically
/// from a checkpoint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerState {
    /// The emulated clock, seconds: the close time of the last round.
    pub clock_s: f64,
    /// Sparse `group → busy-until` map: an edge is busy from dispatch
    /// until its upload lands (or its loss is known).
    pub busy: Vec<(usize, f64)>,
    /// Stale results awaiting admission under [`StalenessPolicy::Weighted`].
    pub pending: Vec<PendingUpload>,
}

impl SchedulerState {
    pub fn new() -> Self {
        Self::default()
    }

    fn busy_until(&self, group: usize) -> f64 {
        self.busy
            .iter()
            .find(|&&(g, _)| g == group)
            .map_or(0.0, |&(_, until)| until)
    }

    fn set_busy(&mut self, group: usize, until_s: f64) {
        match self.busy.iter_mut().find(|(g, _)| *g == group) {
            Some(entry) => entry.1 = until_s,
            None => self.busy.push((group, until_s)),
        }
    }
}

/// Per-round emulated-clock accounting of a semi-async run. This is the
/// runtime's own report — deliberately *not* part of [`RunHistory`], so
/// the degenerate-limit bit-identity of histories is never at stake.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsyncRoundRecord {
    /// Global round index `t`.
    pub round: usize,
    /// Absolute emulated close time of the round, seconds.
    pub clock_s: f64,
    /// Groups dispatched and trained this round.
    pub trained: usize,
    /// Fresh (on-time) results admitted at the close.
    pub admitted: usize,
    /// Parked stale results folded in this round (weighted policy).
    pub stale_admitted: usize,
    /// Stale results discarded this round (drop policy).
    pub stale_dropped: usize,
    /// Sampled groups skipped because their edge was still busy.
    pub busy_skipped: usize,
    /// Member reports cut at group-round closes this round.
    pub cut_reports: usize,
}

/// The emulated-time trajectory of a semi-async run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AsyncReport {
    pub rounds: Vec<AsyncRoundRecord>,
}

impl AsyncReport {
    /// The emulated clock at the end of the run, seconds.
    pub fn final_clock_s(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.clock_s)
    }

    /// Total member reports cut across the run.
    pub fn total_cut_reports(&self) -> usize {
        self.rounds.iter().map(|r| r.cut_reports).sum()
    }

    /// CSV rows (`round,clock_s,trained,admitted,stale_admitted,
    /// stale_dropped,busy_skipped,cut_reports`) with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,clock_s,trained,admitted,stale_admitted,stale_dropped,busy_skipped,cut_reports\n",
        );
        for r in &self.rounds {
            out.push_str(&format!(
                "{},{:.4},{},{},{},{},{},{}\n",
                r.round,
                r.clock_s,
                r.trained,
                r.admitted,
                r.stale_admitted,
                r.stale_dropped,
                r.busy_skipped,
                r.cut_reports
            ));
        }
        out
    }
}

/// The timing models of the run: the fault oracle plus the cost/comm
/// tables, either borrowed from the trainer's [`Trainer::with_faults`]
/// state or defaulted to the degenerate lockstep limit.
struct TimingCtx {
    injector: FaultInjector,
    policy: FaultPolicy,
    comm: CommModel,
    cost: CostModel,
}

/// One group's fully-resolved round in the time domain: when each of its
/// `K` group rounds closed, who got cut, and when (or whether) the final
/// upload reached the cloud.
struct GroupTimeline {
    /// Per-`k` straggler cuts, ready for the compute pass.
    cuts: GroupCuts,
    /// Per-`k` `(close_s_rel, reported, cut)` — close time relative to
    /// the group's dispatch.
    closes: Vec<(f64, usize, usize)>,
    /// Edge→cloud retry accounting of the final upload.
    upload: RetryOutcome,
    /// Seconds from dispatch until the upload lands at the cloud — or,
    /// for a lost upload, until the loss is known.
    arrival_rel_s: f64,
    /// Nominal (fault-free) duration estimate, for the cloud deadline.
    nominal_rel_s: f64,
}

impl Trainer {
    fn timing_ctx(&self) -> TimingCtx {
        match &self.faults {
            Some(fs) => TimingCtx {
                injector: fs.injector.clone(),
                policy: fs.policy,
                comm: fs.comm,
                cost: fs.cost,
            },
            // No fault state attached: run in the degenerate lockstep
            // limit (wait for every report, never cut) so a plain
            // semi-async run stays bit-identical to the sync engine.
            None => TimingCtx {
                injector: FaultInjector::new(FaultPlan::none()),
                policy: FaultPolicy {
                    quorum_fraction: 1.0,
                    deadline_factor: 0.0,
                    ..FaultPolicy::default()
                },
                comm: CommModel::edge_default(),
                cost: CostModel::for_task(self.config.task),
            },
        }
    }

    /// Resolves one dispatched group in the time domain. Pure arithmetic:
    /// nothing here consumes an RNG stream or touches model state.
    fn group_timeline(
        &self,
        tc: &TimingCtx,
        t: usize,
        gi: usize,
        members: &[usize],
        param_len: usize,
    ) -> GroupTimeline {
        let cfg = &self.config;
        let m = members.len();
        let e = cfg.local_rounds as f64;
        let transfer = 2.0
            * tc.comm
                .client_edge
                .transfer_time(CommModel::model_bytes(param_len));
        let nominal_slowest = members
            .iter()
            .map(|&c| tc.cost.training(self.data.client_size(c)) * e + transfer)
            .fold(0.0f64, f64::max);
        let deadline_rel =
            if tc.policy.deadline_factor > 0.0 && tc.policy.deadline_factor.is_finite() {
                tc.policy.deadline_factor * nominal_slowest
            } else {
                f64::INFINITY
            };
        let required = ((tc.policy.quorum_fraction * m as f64).ceil() as usize).clamp(1, m);

        let mut cuts = GroupCuts {
            by_round: Vec::with_capacity(cfg.group_rounds),
        };
        let mut closes = Vec::with_capacity(cfg.group_rounds);
        let mut start = 0.0f64;
        for k in 0..cfg.group_rounds {
            // Every member's report (or crash-detection) time this `k`.
            let reports: Vec<(f64, f64, bool)> = members
                .iter()
                .map(|&c| {
                    let slowdown = tc.injector.slowdown(t, k, c);
                    let elapsed =
                        tc.cost.training(self.data.client_size(c)) * e * slowdown + transfer;
                    (start + elapsed, slowdown, tc.injector.crashes(t, k, c))
                })
                .collect();
            let deadline_abs = start + deadline_rel;
            let mut q = EventQueue::new();
            for (mi, (&c, &(time, _, _))) in members.iter().zip(reports.iter()).enumerate() {
                q.push(time, EventId::new(t, gi, c), mi);
            }
            // Walk the queue to the close: the first of quorum filled,
            // every report accounted for, or the deadline.
            let mut close = deadline_abs;
            let mut delivered = 0usize;
            let mut seen = 0usize;
            while let Some(ev) = q.pop() {
                if ev.time > deadline_abs {
                    break; // deadline fires before this report lands
                }
                seen += 1;
                if !reports[ev.payload].2 {
                    delivered += 1;
                }
                if delivered >= required {
                    // Reports landing at the exact close instant still
                    // make it: the cut rule below is strictly `> close`.
                    close = ev.time;
                    break;
                }
                if seen == m {
                    close = ev.time; // all deliverable reports accounted
                    break;
                }
            }
            let cut_k: Vec<(usize, f64)> = reports
                .iter()
                .enumerate()
                .filter(|(_, &(time, _, crashed))| !crashed && time > close)
                .map(|(mi, &(_, slowdown, _))| (mi, slowdown))
                .collect();
            let reported = reports
                .iter()
                .filter(|&&(time, _, crashed)| !crashed && time <= close)
                .count();
            closes.push((close, reported, cut_k.len()));
            cuts.by_round.push(cut_k);
            start = close;
        }

        let failures = tc.injector.upload_failures(t, gi, tc.policy.max_retries);
        let payload = tc.comm.group_cloud_bytes(param_len);
        let upload = tc.comm.upload_with_retries(
            payload,
            failures,
            tc.policy.max_retries,
            tc.policy.backoff_base_s,
            tc.policy.max_backoff_s,
        );
        let arrival_rel_s = start + upload.seconds;
        let nominal_rel_s =
            cfg.group_rounds as f64 * nominal_slowest + tc.comm.edge_cloud.transfer_time(payload);
        GroupTimeline {
            cuts,
            closes,
            upload,
            arrival_rel_s,
            nominal_rel_s,
        }
    }

    /// Runs Algorithm 1 under the semi-async runtime. Mirrors
    /// [`Trainer::run_returning_params`], additionally returning the
    /// emulated-time trajectory.
    pub fn run_semi_async<S: LocalUpdate>(
        &self,
        groups: &[Group],
        strategy: &S,
        sampling: SamplingStrategy,
        acfg: &AsyncConfig,
    ) -> (RunHistory, Params, AsyncReport) {
        let (history, params, report, _) =
            self.run_semi_async_with_scheduler(groups, strategy, sampling, acfg);
        (history, params, report)
    }

    /// Like [`Trainer::run_semi_async`], additionally returning the final
    /// [`SchedulerState`] so callers can carry it through a checkpoint
    /// ([`crate::checkpoint::Checkpoint::with_scheduler`]).
    pub fn run_semi_async_with_scheduler<S: LocalUpdate>(
        &self,
        groups: &[Group],
        strategy: &S,
        sampling: SamplingStrategy,
        acfg: &AsyncConfig,
    ) -> (RunHistory, Params, AsyncReport, SchedulerState) {
        let covs: Vec<Scalar> = groups
            .iter()
            .map(|g| group_cov(self.data.label_matrix(), g))
            .collect();
        let probs = sampling.probabilities(&covs);
        let mut rng = init::rng(self.config.seed);
        let mut params = self.model.init_params(&mut rng);
        let mut ledger = self.ledger_for(strategy);
        let mut history = RunHistory::default();
        let mut sched = SchedulerState::new();
        let mut report = AsyncReport::default();
        self.run_semi_async_resumable(
            groups,
            strategy,
            &probs,
            acfg,
            &mut params,
            &mut ledger,
            &mut history,
            &mut sched,
            &mut report,
            0,
            self.config.global_rounds,
        );
        (history, params, report, sched)
    }

    /// Runs the semi-async runtime under **online membership**: forms the
    /// initial partition over the clients present at round 0, then every
    /// round applies the churn plan (departures, arrivals, flaps), lets
    /// the group-health monitor heal the partition per the configured
    /// [`RegroupPolicy`], and dispatches whoever is available to the
    /// quorum-or-deadline scheduler. This closes the gap the module doc
    /// used to flag: churned runs now have a semi-async entry point.
    ///
    /// Two semantics are specific to the semi-async flavor, both
    /// documented in `docs/ASYNC.md`:
    ///
    /// * any membership transition **resets in-flight edge state**. The
    ///   busy map and parked stale uploads are keyed by group index, which
    ///   a heal renumbers and a departure invalidates, so results in
    ///   flight at a transition are dropped rather than misattributed to
    ///   whatever group inherits the index.
    /// * group health sees **no quorum-miss signal**. The runtime's
    ///   straggler cuts live on the emulated clock, not the lockstep
    ///   quorum path that feeds [`MembershipState::observe_round`], so
    ///   `RegroupPolicy::quorum_misses` never fires here — healing reacts
    ///   to size floors, CoV drift, and emptiness only.
    ///
    /// Without [`Trainer::with_churn`] no membership event ever fires, so
    /// the run is bit-identical to [`Trainer::run_semi_async`] on the
    /// formation-time groups (asserted by `tests/semi_async.rs`).
    pub fn run_semi_async_self_healing<S: LocalUpdate>(
        &self,
        algo: &dyn GroupingAlgorithm,
        topology: &Topology,
        strategy: &S,
        sampling: SamplingStrategy,
        acfg: &AsyncConfig,
    ) -> Result<(RunHistory, Params, AsyncReport, MembershipState), PartitionError> {
        let policy = self
            .churn
            .as_ref()
            .map_or_else(RegroupPolicy::default, |c| c.policy.clone());
        let plan = self.churn.as_ref().map(|c| &c.plan);
        let labels = self.data.label_matrix();
        let mut membership = MembershipState::form(
            algo,
            topology,
            labels,
            plan,
            policy,
            self.config.seed,
            sampling,
            0,
        )?;
        let mut rng = init::rng(self.config.seed);
        let mut params = self.model.init_params(&mut rng);
        let mut ledger = self.ledger_for(strategy);
        let mut history = RunHistory::default();
        let mut sched = SchedulerState::new();
        let mut report = AsyncReport::default();
        let tc = self.timing_ctx();
        for t in 0..self.config.global_rounds {
            let mut events = Vec::new();
            if let Some(p) = plan {
                events.extend(membership.apply_churn(p, t, labels, topology));
            }
            events.extend(membership.heal(
                t,
                labels,
                algo,
                topology,
                self.config.seed,
                sampling,
            )?);
            if !events.is_empty() {
                // The partition changed under the scheduler: busy-until
                // entries and parked stale uploads reference group indices
                // that may now mean a different member set. Start clean.
                sched.busy.clear();
                sched.pending.clear();
            }
            history.record_regroups(events);
            if membership.policy.enabled {
                membership.refresh_probs(labels, sampling);
            }
            // Flapping clients sit out the round without leaving their
            // group; empty effective groups are dispatched to nobody and
            // the round-held path inside `semi_async_round` covers the
            // all-dark case.
            let effective: Vec<Group> = membership
                .groups
                .iter()
                .map(|g| {
                    g.iter()
                        .copied()
                        .filter(|&c| plan.is_none_or(|p| p.available(c, t)))
                        .collect()
                })
                .collect();
            let probs = membership.probs.clone();
            let last = t + 1 == self.config.global_rounds;
            let over_budget = self.semi_async_round(
                t,
                &effective,
                strategy,
                &probs,
                acfg,
                &tc,
                &mut params,
                &mut ledger,
                &mut history,
                &mut sched,
                &mut report,
                last,
            );
            if over_budget {
                break;
            }
        }
        Ok((history, params, report, membership))
    }

    /// Resumable core of the semi-async runtime: runs `rounds` global
    /// rounds from `start_round`, mutating every piece of state in place.
    /// Checkpointing `(params, history, ledger-total, sched)` after any
    /// round and resuming reproduces the uninterrupted run bit for bit —
    /// the scheduler's clock, busy map, and pending stale uploads are the
    /// *only* cross-round state beyond the lockstep engine's.
    #[allow(clippy::too_many_arguments)]
    pub fn run_semi_async_resumable<S: LocalUpdate>(
        &self,
        groups: &[Group],
        strategy: &S,
        probs: &[Scalar],
        acfg: &AsyncConfig,
        params: &mut Params,
        ledger: &mut CostLedger,
        history: &mut RunHistory,
        sched: &mut SchedulerState,
        report: &mut AsyncReport,
        start_round: usize,
        rounds: usize,
    ) {
        assert_eq!(groups.len(), probs.len(), "one probability per group");
        assert!(!groups.is_empty(), "need at least one group");
        let tc = self.timing_ctx();
        for t in start_round..start_round + rounds {
            let last = t + 1 == start_round + rounds;
            let over_budget = self.semi_async_round(
                t, groups, strategy, probs, acfg, &tc, params, ledger, history, sched, report, last,
            );
            if over_budget {
                break;
            }
        }
    }

    /// One semi-async global round: sample, resolve timings, train with
    /// the precomputed cuts, charge Eq. 5, admit arrivals at the cloud
    /// close, aggregate (fresh + matured stale), and evaluate on the
    /// lockstep cadence. Returns `true` when the cost budget is exhausted.
    #[allow(clippy::too_many_arguments)]
    fn semi_async_round<S: LocalUpdate>(
        &self,
        t: usize,
        groups: &[Group],
        strategy: &S,
        probs: &[Scalar],
        acfg: &AsyncConfig,
        tc: &TimingCtx,
        params: &mut Params,
        ledger: &mut CostLedger,
        history: &mut RunHistory,
        sched: &mut SchedulerState,
        report: &mut AsyncReport,
        last: bool,
    ) -> bool {
        let cfg = &self.config;
        let total_samples = self.data.total_samples();
        let s = cfg.sampled_groups.clamp(1, groups.len());
        let obs = self.obs.as_deref();
        let round_start = obs.map(|o| o.now_ns());
        let bytes_before = (ledger.client_edge_bytes(), ledger.edge_cloud_bytes());
        let dispatch = sched.clock_s;
        let lr = cfg.lr.at(t);
        // Identical sampling stream to the lockstep engine: a pure
        // function of (seed, t), so the degenerate limit draws the same
        // groups and a resumed session replays the same schedule.
        let mut rng = init::rng(cfg.seed ^ (t as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let sampled = sample_without_replacement(&mut rng, probs, s);

        let mut round_events: Vec<FaultEvent> = Vec::new();
        let mut timed: Vec<TimedEvent> = Vec::new();
        let mut busy_skipped = 0usize;
        let active: Vec<usize> = sampled
            .iter()
            .copied()
            .filter(|&gi| !groups[gi].is_empty())
            .filter(|&gi| match &self.faults {
                Some(fs) => {
                    let edge = fs.edge_of_client[groups[gi][0]];
                    let down = fs.injector.edge_down(edge, t);
                    if down {
                        round_events.push(FaultEvent::EdgeOutage {
                            round: t,
                            edge,
                            group: gi,
                        });
                    }
                    !down
                }
                None => true,
            })
            .filter(|&gi| {
                let busy_until = sched.busy_until(gi);
                if busy_until > dispatch {
                    timed.push(TimedEvent::GroupBusySkipped {
                        round: t,
                        group: gi,
                        busy_until_s: busy_until,
                    });
                    busy_skipped += 1;
                    false
                } else {
                    true
                }
            })
            .collect();

        // Timing pass: resolve every dispatched group in emulated time.
        let timelines: Vec<GroupTimeline> = active
            .iter()
            .map(|&gi| self.group_timeline(tc, t, gi, &groups[gi], params.len()))
            .collect();
        let mut cut_reports = 0usize;
        for (tl, &gi) in timelines.iter().zip(active.iter()) {
            for (k, &(close_rel, reported, cut)) in tl.closes.iter().enumerate() {
                if cut > 0 {
                    cut_reports += cut;
                    timed.push(TimedEvent::GroupRoundClosed {
                        round: t,
                        group: gi,
                        group_round: k,
                        close_s: dispatch + close_rel,
                        reported,
                        cut,
                    });
                }
            }
        }

        // Compute pass: the lockstep parallel trainer, fed the cut sets.
        let cuts: Vec<GroupCuts> = timelines.iter().map(|tl| tl.cuts.clone()).collect();
        let group_refs: Vec<(usize, &[usize])> = active
            .iter()
            .map(|&gi| (gi, groups[gi].as_slice()))
            .collect();
        let outcomes =
            self.train_groups_with_cuts(params, &group_refs, strategy, t, lr, Some(&cuts));
        let train_end = obs.map(|o| {
            let end = o.now_ns();
            o.record_span_at(
                SpanKind::Train,
                round_start.unwrap(),
                end,
                SpanAttrs::round(t),
            );
            end
        });

        // Charge Eq. 5 for every group that attempted the round — stale
        // or not, the work was done and the ledger is effort, not luck.
        // Same rule for client↔edge bytes: every member moved its
        // downloads and uploads whether or not the result beats the close.
        let client_bytes = self.comm_model().client_bytes_per_round(
            params.len(),
            cfg.group_rounds,
            strategy.upload_payload_factor(),
        );
        for o in &outcomes {
            let sizes: Vec<usize> = o
                .members
                .iter()
                .map(|&c| self.data.client_size(c))
                .collect();
            ledger.charge_group(&sizes, cfg.group_rounds, cfg.local_rounds);
            ledger.charge_client_edge_bytes(o.members.len() as u64 * client_bytes);
        }
        let (defense_sims, defense_norms) = outcomes.iter().fold((0u64, 0u64), |acc, o| {
            (
                acc.0 + o.defense.similarity_evals,
                acc.1 + o.defense.norm_passes,
            )
        });
        if defense_sims > 0 || defense_norms > 0 {
            ledger.charge_defense(defense_sims, defense_norms);
        }
        ledger.end_round();

        // Arrival resolution: corrupt results are rejected, lost uploads
        // never land, everything else gets an arrival time. The edge stays
        // busy until its upload resolves either way.
        let mut arrival_of: Vec<Option<f64>> = vec![None; outcomes.len()];
        let mut round_attacks = Vec::new();
        let mut expected_end = dispatch;
        for (i, (o, tl)) in outcomes.iter().zip(timelines.iter()).enumerate() {
            round_events.extend(o.events.iter().cloned());
            round_attacks.extend(o.attacks.iter().cloned());
            // The upload put bytes on the edge↔cloud wire no matter how it
            // resolves — rejected and lost results still transmitted.
            ledger.charge_edge_cloud_bytes(tl.upload.bytes);
            let resolved = dispatch + tl.arrival_rel_s;
            sched.set_busy(o.group, resolved);
            expected_end = expected_end.max(resolved);
            if self.faults.as_ref().is_some_and(|fs| {
                fs.policy.reject_non_finite && !gfl_defense::is_update_finite(&o.params)
            }) {
                round_events.push(FaultEvent::CorruptGroupRejected {
                    round: t,
                    group: o.group,
                });
                continue;
            }
            if tl.upload.attempts > 1 {
                round_events.push(FaultEvent::UploadRetry {
                    round: t,
                    group: o.group,
                    attempts: tl.upload.attempts,
                    extra_seconds: tl.upload.seconds,
                    extra_bytes: tl.upload.bytes,
                });
            }
            if !tl.upload.delivered {
                round_events.push(FaultEvent::UploadLost {
                    round: t,
                    group: o.group,
                });
                continue;
            }
            arrival_of[i] = Some(resolved);
        }

        // The cloud close: wait for every dispatched result, unless its
        // own deadline (scaled off the slowest *nominal* group) fires
        // first and strands the rest as stale.
        let close = if acfg.cloud_deadline_enabled() {
            let nominal = timelines
                .iter()
                .map(|tl| tl.nominal_rel_s)
                .fold(0.0f64, f64::max);
            expected_end.min(dispatch + acfg.cloud_deadline_factor * nominal)
        } else {
            expected_end
        };
        // If every sampled group sat the round out (busy, dark, or empty),
        // nothing was dispatched and `close == dispatch` — the cloud
        // sleeps to the next upload resolution instead of freezing the
        // emulated clock, so parked stale results can still mature.
        let close = if active.is_empty() {
            let next = sched
                .busy
                .iter()
                .map(|&(_, until)| until)
                .filter(|&until| until > dispatch)
                .fold(f64::INFINITY, f64::min);
            if next.is_finite() {
                next
            } else {
                close
            }
        } else {
            close
        };

        // Admission: fresh results in sampled order, then matured stale
        // results in parking order — both deterministic.
        let mut fresh: Vec<&GroupOutcome> = Vec::new();
        let mut stale_dropped = 0usize;
        let mut late = 0usize;
        for (i, o) in outcomes.iter().enumerate() {
            let Some(arrival) = arrival_of[i] else {
                continue;
            };
            if arrival <= close {
                fresh.push(o);
            } else {
                late += 1;
                match acfg.staleness {
                    StalenessPolicy::DropStale => {
                        stale_dropped += 1;
                        timed.push(TimedEvent::StaleArrival {
                            round: t,
                            group: o.group,
                            dispatch_round: t,
                            arrival_s: arrival,
                            admitted: false,
                        });
                    }
                    StalenessPolicy::Weighted { .. } => {
                        sched.pending.push(PendingUpload {
                            group: o.group,
                            dispatch_round: t,
                            arrival_s: arrival,
                            samples: o.samples,
                            prob: probs[o.group],
                            uploads: o.uploads,
                            members: o.members.clone(),
                            params: o.params.clone(),
                        });
                    }
                }
            }
        }
        if late > 0 {
            timed.push(TimedEvent::CloudRoundClosed {
                round: t,
                close_s: close,
                admitted: fresh.len(),
                late,
            });
        }
        let mut matured: Vec<PendingUpload> = Vec::new();
        sched.pending.retain(|p| {
            if p.arrival_s <= close && p.dispatch_round < t {
                matured.push(p.clone());
                false
            } else {
                true
            }
        });
        for p in &matured {
            timed.push(TimedEvent::StaleArrival {
                round: t,
                group: p.group,
                dispatch_round: p.dispatch_round,
                arrival_s: p.arrival_s,
                admitted: true,
            });
        }

        // Line 15, semi-async flavor: aggregate fresh + matured results,
        // damping matured weights by staleness, holding the round when no
        // surviving update reached the cloud at all.
        let no_update =
            fresh.iter().all(|o| o.uploads == 0) && matured.iter().all(|p| p.uploads == 0);
        if no_update {
            round_events.push(FaultEvent::RoundHeld { round: t });
        } else {
            let mut sizes: Vec<usize> = fresh.iter().map(|o| o.samples).collect();
            sizes.extend(matured.iter().map(|p| p.samples));
            let mut sampled_probs: Vec<Scalar> = fresh.iter().map(|o| probs[o.group]).collect();
            sampled_probs.extend(matured.iter().map(|p| p.prob));
            let mut weights =
                aggregation_weights(cfg.weighting, &sizes, &sampled_probs, total_samples);
            if !matured.is_empty() {
                if let StalenessPolicy::Weighted { decay } = acfg.staleness {
                    // Damp matured weights by (1+s)^-decay, then rescale so
                    // the total mass aggregation_weights assigned is
                    // preserved — the update never shrinks toward zero.
                    let before: Scalar = weights.iter().sum();
                    for (j, p) in matured.iter().enumerate() {
                        let staleness = (t - p.dispatch_round) as f64;
                        weights[fresh.len() + j] *= (1.0 + staleness).powf(-decay) as Scalar;
                    }
                    let after: Scalar = weights.iter().sum();
                    if after > 0.0 {
                        let scale = before / after;
                        for w in weights.iter_mut() {
                            *w *= scale;
                        }
                    }
                }
            }
            let mut views: Vec<&[Scalar]> = fresh.iter().map(|o| o.params.as_slice()).collect();
            views.extend(matured.iter().map(|p| p.params.as_slice()));
            ops::weighted_sum_into(&views, &weights, params);
        }

        let mut participants: Vec<usize> = fresh
            .iter()
            .flat_map(|o| o.members.iter().copied())
            .collect();
        participants.extend(matured.iter().flat_map(|p| p.members.iter().copied()));
        strategy.end_global_round(&participants);

        let agg_end = obs.map(|ob| {
            let end = ob.now_ns();
            ob.record_span_at(
                SpanKind::Aggregate,
                train_end.unwrap(),
                end,
                SpanAttrs::round(t),
            );
            end
        });

        let train_loss =
            outcomes.iter().map(|o| o.train_loss).sum::<Scalar>() / outcomes.len().max(1) as Scalar;

        let fault_events = round_events.len() as u64;
        history.record_faults(round_events);
        history.record_attacks(round_attacks);
        let stale_admitted = matured.len();
        let admitted = fresh.len();
        let trained = outcomes.len();
        history.record_timed(timed);

        let over_budget = cfg.cost_budget.is_some_and(|b| ledger.total() >= b);
        let mut eval_ns = 0u64;
        if t.is_multiple_of(cfg.eval_every) || last || over_budget {
            let eval_start = obs.map(|ob| ob.now_ns());
            let eval = self.evaluate(params);
            if let Some(adv) = &self.adversary {
                let rate = |d: &gfl_data::Dataset| {
                    self.model
                        .evaluate(params, d.features(), d.labels())
                        .accuracy
                };
                history.record_asr(AsrRecord {
                    round: t,
                    trigger_asr: adv.trigger_eval.as_ref().map(&rate),
                    flip_asr: adv.flip_eval.as_ref().map(&rate),
                });
            }
            if let Some(ob) = obs {
                let start = eval_start.unwrap();
                let end = ob.now_ns();
                eval_ns = end.saturating_sub(start);
                ob.record_span_at(SpanKind::Eval, start, end, SpanAttrs::round(t));
            }
            history.push(RoundRecord {
                round: t,
                cost: ledger.total(),
                accuracy: eval.accuracy,
                loss: eval.loss,
                train_loss,
            });
        }

        // Advance the emulated clock to the close; the next round
        // dispatches from here.
        sched.clock_s = close;
        report.rounds.push(AsyncRoundRecord {
            round: t,
            clock_s: close,
            trained,
            admitted,
            stale_admitted,
            stale_dropped,
            busy_skipped,
            cut_reports,
        });

        if let Some(ob) = obs {
            let start = round_start.unwrap();
            let end = ob.now_ns();
            ob.record_span_at(SpanKind::Round, start, end, SpanAttrs::round(t));
            let train_ns = train_end.unwrap().saturating_sub(start);
            let agg_ns = agg_end.unwrap().saturating_sub(train_end.unwrap());
            let clients_trained: u64 = (0..trained)
                .map(|i| (group_refs[i].1.len() * cfg.group_rounds) as u64)
                .sum();
            let ce_bytes = ledger.client_edge_bytes() - bytes_before.0;
            let ec_bytes = ledger.edge_cloud_bytes() - bytes_before.1;
            ob.record_round(RoundMetrics {
                round: t as u64,
                wall_ns: end.saturating_sub(start),
                train_ns,
                aggregate_ns: agg_ns,
                comm_ns: 0,
                eval_ns,
                groups_trained: trained as u64,
                clients_trained,
                fault_events,
                cost_total: ledger.total(),
                pool_regions: 0,
                pool_claims: 0,
                pool_steals: 0,
                pool_utilization: 0.0,
                allocs: 0,
                client_edge_bytes: Some(ce_bytes),
                edge_cloud_bytes: Some(ec_bytes),
            });
            let m = ob.metrics();
            m.counter("rounds.total").inc();
            m.counter("events.faults").add(fault_events);
            m.counter("clients.trained").add(clients_trained);
            m.counter("comm.bytes.client_edge").add(ce_bytes);
            m.counter("comm.bytes.edge_cloud").add(ec_bytes);
            m.gauge("cost.total").set(ledger.total());
            // Semi-async telemetry only exists on semi-async runs, so
            // lockstep traces stay byte-identical to pre-async ones.
            m.gauge("async.clock_s").set(close);
            m.counter("async.cut_reports").add(cut_reports as u64);
            m.counter("async.busy_skips").add(busy_skipped as u64);
            m.counter("async.stale.admitted").add(stale_admitted as u64);
            m.counter("async.stale.dropped").add(stale_dropped as u64);
        }

        over_budget
    }
}
